//! Quickstart: the LTNC pipeline on a three-node chain.
//!
//! A source holds a small content, a relay recodes from *encoded* packets only
//! (it never decodes first — that is the point of LT network codes), and a
//! sink decodes with belief propagation. Run with:
//!
//! ```text
//! cargo run -p ltnc-examples --bin quickstart
//! ```

use ltnc_core::{LtncConfig, LtncNode};
use ltnc_examples::{human_bytes, random_content};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let k = 64; // native packets
    let m = 1024; // bytes per packet
    let content = random_content(k, m, 7);
    println!("content: {} in {k} native packets of {}", human_bytes(k * m), human_bytes(m));

    let mut rng = SmallRng::seed_from_u64(42);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut relay = LtncNode::new(k, m);
    let mut sink = LtncNode::new(k, m);

    let mut source_packets = 0u64;
    let mut relay_packets = 0u64;
    while !sink.is_complete() {
        // The source pushes a fresh LT-structured packet to the relay.
        if let Some(packet) = source.recode(&mut rng) {
            relay.receive(&packet);
            source_packets += 1;
        }
        // The relay recodes from whatever encoded packets it holds and pushes
        // to the sink — no decoding needed in the middle of the chain.
        if relay.can_recode() {
            if let Some(packet) = relay.recode(&mut rng) {
                sink.receive(&packet);
                relay_packets += 1;
            }
        }
    }

    let decoded = sink.decode().expect("sink is complete");
    assert_eq!(decoded, content, "decoded content must match the original");

    println!("source sent  : {source_packets} packets");
    println!("relay sent   : {relay_packets} packets");
    println!(
        "relay decoded: {}/{k} natives (recoding does not require decoding)",
        relay.decoded_count()
    );
    println!(
        "sink decode  : {} payload XORs, {} Tanner-edge updates (belief propagation)",
        sink.decoding_counters().data_ops(),
        sink.decoding_counters().control_ops()
    );
    println!(
        "sink degree-draw acceptance at relay: {:.1} % (paper reports ≈ 99.9 %)",
        relay.stats().first_pick_accept_rate() * 100.0
    );
    println!("OK: content recovered bit-for-bit through an encoded-only relay");
}
