//! File dissemination: an Avalanche-style swarm distributing a file from one
//! source to a network of peers, comparing the three schemes of the paper's
//! evaluation (WC, LTNC, RLNC) on convergence time, communication overhead and
//! decoding cost. This is a scaled-down version of Figure 7; the `ltnc-bench`
//! binaries produce the full figures.
//!
//! ```text
//! cargo run --release -p ltnc-examples --bin file_dissemination
//! ```

use ltnc_metrics::CostModel;
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn main() {
    let nodes = 100;
    let k = 64;
    let m = 64; // simulated payload bytes; costs are also modelled at 256 KB
    println!("file dissemination: {nodes} peers, k = {k} blocks\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>16} {:>16}",
        "scheme", "periods", "overhead %", "aborted", "decode ctrl cyc", "decode data cyc"
    );

    for scheme in SchemeKind::ALL {
        let mut config = SimConfig::quick(scheme);
        config.nodes = nodes;
        config.code_length = k;
        config.payload_size = m;
        config.max_periods = 30_000;
        let report = Engine::new(config).run();
        assert!(report.content_verified, "every complete node must hold the original file");

        // Model the data-plane cost as if blocks were the paper's 256 KB.
        let model = CostModel::new(k, 256 * 1024);
        let cost = report.cost_report(&model);
        println!(
            "{:<6} {:>10.0} {:>12.1} {:>12} {:>16.3e} {:>16.3e}",
            report.scheme.label(),
            report.avg_time_to_complete,
            report.overhead_percent(),
            report.transfers_aborted,
            cost.decode_control_per_node,
            cost.decode_data_per_byte * (k * 256 * 1024) as f64,
        );
    }

    println!(
        "\nexpected shape (paper): RLNC fastest, LTNC close behind with some overhead,\n\
         WC slowest; LTNC's decoding cost is orders of magnitude below RLNC's."
    );
}
