//! Sensor broadcast: the motivating scenario of the paper — nodes with low
//! processing capabilities (sensors) receiving a firmware image or
//! configuration blob. What matters here is the *decoding* cost at the
//! resource-constrained receivers: LTNC trades a little communication overhead
//! for a ~99 % reduction of the decoding work compared to RLNC.
//!
//! ```text
//! cargo run --release -p ltnc-examples --bin sensor_broadcast
//! ```

use ltnc_core::{LtncConfig, LtncNode};
use ltnc_examples::random_content;
use ltnc_gf2::EncodedPacket;
use ltnc_metrics::{CostModel, OpCounters};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Simulated sensor budget: how many elementary operations per received byte a
/// low-power MCU can reasonably afford for decoding.
const K: usize = 256;
const M: usize = 128; // bytes per block in this example (e.g. one flash page)

fn ltnc_receiver_cost(seed: u64) -> (OpCounters, u64) {
    let content = random_content(K, M, seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut gateway = LtncNode::with_all_natives(K, M, &content, LtncConfig::default());
    let mut sensor = LtncNode::new(K, M);
    let mut received = 0;
    while !sensor.is_complete() {
        let p = gateway.recode(&mut rng).expect("gateway can recode");
        // A sensor cannot afford to waste radio receptions: the binary
        // feedback check (run on the header) drops detectable duplicates.
        if !sensor.is_redundant(p.vector()) {
            sensor.receive(&p);
            received += 1;
        }
    }
    assert_eq!(sensor.decode().unwrap(), content);
    (*sensor.decoding_counters(), received)
}

fn rlnc_receiver_cost(seed: u64) -> (OpCounters, u64) {
    let content = random_content(K, M, seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut gateway = RlncNode::new(K, M);
    for (i, p) in content.iter().enumerate() {
        gateway.receive(&EncodedPacket::native(K, i, p.clone()));
    }
    let mut sensor = RlncNode::new(K, M);
    let mut received = 0;
    while !sensor.is_complete() {
        let p = gateway.recode(&mut rng).expect("gateway can recode");
        if sensor.is_innovative(&p) {
            sensor.receive(&p);
            received += 1;
        }
    }
    assert_eq!(sensor.decode().unwrap(), content);
    (*sensor.decoding_counters(), received)
}

fn main() {
    println!("sensor broadcast: k = {K} blocks of {M} B pushed from a gateway to a sensor\n");
    let (ltnc, ltnc_rx) = ltnc_receiver_cost(11);
    let (rlnc, rlnc_rx) = rlnc_receiver_cost(11);

    let model = CostModel::new(K, M);
    let ltnc_cost = model.evaluate(&ltnc);
    let rlnc_cost = model.evaluate(&rlnc);

    println!("{:<28} {:>14} {:>14}", "metric", "LTNC", "RLNC");
    println!("{:<28} {:>14} {:>14}", "packets received", ltnc_rx, rlnc_rx);
    println!("{:<28} {:>14} {:>14}", "payload XOR operations", ltnc.data_ops(), rlnc.data_ops());
    println!("{:<28} {:>14} {:>14}", "control operations", ltnc.control_ops(), rlnc.control_ops());
    println!(
        "{:<28} {:>14.3e} {:>14.3e}",
        "est. decode cycles (total)",
        ltnc_cost.total_cycles(),
        rlnc_cost.total_cycles()
    );
    let reduction = (1.0 - ltnc_cost.total_cycles() / rlnc_cost.total_cycles()) * 100.0;
    println!(
        "\nLTNC reduces the sensor's decoding cost by {reduction:.1}% \
         (paper reports up to 99% at k = 2048),"
    );
    println!(
        "at the price of {:.1}% more radio receptions.",
        (ltnc_rx as f64 / rlnc_rx as f64 - 1.0) * 100.0
    );
}
