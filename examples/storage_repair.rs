//! Self-healing distributed storage — the outlook sketched in the paper's
//! introduction and conclusion: "LTNC can be applied to self-healing
//! distributed storage as the recoding method can be used to build new
//! LT-encoded backups in a decentralized fashion".
//!
//! The scenario: an object is stored as LT-encoded blocks spread over storage
//! nodes. When a node fails, the surviving nodes *recode* replacement blocks
//! from the encoded blocks they hold — nobody reconstructs the whole object —
//! and the new blocks still follow the LT structure so a future reader keeps
//! the cheap belief-propagation decode.
//!
//! ```text
//! cargo run --release -p ltnc-examples --bin storage_repair
//! ```

use ltnc_core::LtncNode;
use ltnc_examples::{human_bytes, random_content};
use ltnc_lt::{LtEncoder, RobustSoliton};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const K: usize = 128; // native blocks of the stored object
const M: usize = 512; // bytes per block
const STORAGE_NODES: usize = 12;
const BLOCKS_PER_NODE: usize = 40;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let object = random_content(K, M, 9);
    println!(
        "object: {} as {K} blocks of {} across {STORAGE_NODES} storage nodes ({BLOCKS_PER_NODE} encoded blocks each)\n",
        human_bytes(K * M),
        human_bytes(M)
    );

    // 1. Initial placement: the writer LT-encodes the object and spreads
    //    encoded blocks over the storage nodes.
    let dist = RobustSoliton::for_code_length(K).expect("valid distribution");
    let mut encoder = LtEncoder::new(object.clone(), dist).expect("consistent content");
    let mut nodes: Vec<LtncNode> = (0..STORAGE_NODES).map(|_| LtncNode::new(K, M)).collect();
    for node in &mut nodes {
        for _ in 0..BLOCKS_PER_NODE {
            node.receive(&encoder.encode(&mut rng));
        }
    }

    // 2. A storage node dies. Its blocks are gone.
    let failed = 3;
    println!("node {failed} fails and loses its {BLOCKS_PER_NODE} encoded blocks");
    nodes[failed] = LtncNode::new(K, M);

    // 3. Self-healing: surviving nodes recode fresh LT-structured blocks from
    //    what they hold (no node decodes the object) and send them to the
    //    replacement node.
    let survivors: Vec<usize> = (0..STORAGE_NODES).filter(|&i| i != failed).collect();
    let mut repair_traffic = 0usize;
    while nodes[failed].stats().accepted < BLOCKS_PER_NODE as u64 {
        let &donor = survivors.choose(&mut rng).expect("survivors exist");
        let Some(block) = ({
            let donor_node = &mut nodes[donor];
            donor_node.recode(&mut rng)
        }) else {
            continue;
        };
        // The replacement node checks the block header first and skips blocks
        // it could already generate, saving repair bandwidth.
        if nodes[failed].is_redundant(block.vector()) {
            continue;
        }
        repair_traffic += block.wire_size_bytes();
        nodes[failed].receive(&block);
    }
    println!(
        "repair complete: {} of repair traffic, no survivor decoded the object",
        human_bytes(repair_traffic)
    );
    for (i, node) in nodes.iter().enumerate() {
        assert!(
            node.decoded_count() < K,
            "storage node {i} should not have reconstructed the whole object"
        );
    }

    // 4. A reader collects blocks from a few nodes and decodes the object with
    //    belief propagation, proving the repaired placement is still readable.
    let mut reader = LtncNode::new(K, M);
    let mut blocks_read = 0;
    'outer: for round in 0.. {
        for node in &mut nodes {
            if let Some(block) = node.recode(&mut rng) {
                reader.receive(&block);
                blocks_read += 1;
                if reader.is_complete() {
                    break 'outer;
                }
            }
        }
        assert!(round < 100 * K, "reader could not reconstruct the object");
    }
    let recovered = reader.decode().expect("reader is complete");
    assert_eq!(recovered, object, "the repaired object must be intact");
    println!(
        "reader reconstructed the object from {blocks_read} blocks using belief propagation \
         ({} payload XORs)",
        reader.decoding_counters().data_ops()
    );
    println!("OK: storage self-healed without any full-object reconstruction");
}
