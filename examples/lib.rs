//! Shared helpers for the runnable examples.
//!
//! The examples are ordinary binaries (`cargo run -p ltnc-examples --bin
//! quickstart`) that exercise the public API of the workspace crates on small,
//! self-contained scenarios:
//!
//! * `quickstart` — encode, recode and decode a small content on a
//!   source → relay → sink chain;
//! * `file_dissemination` — an Avalanche-style file swarm: epidemic
//!   dissemination of a file across a network, comparing WC, LTNC and RLNC;
//! * `sensor_broadcast` — the sensor-network motivation of the paper: tiny
//!   nodes, decode cost is what matters;
//! * `storage_repair` — the self-healing distributed-storage outlook of the
//!   paper's conclusion: regenerating lost LT-encoded blocks without decoding
//!   the whole object.

use ltnc_gf2::Payload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `k` pseudo-random native payloads of `m` bytes from a seed.
#[must_use]
pub fn random_content(k: usize, m: usize, seed: u64) -> Vec<Payload> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; m];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

/// Pretty-prints a byte count.
#[must_use]
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_content_is_deterministic() {
        assert_eq!(random_content(4, 8, 1), random_content(4, 8, 1));
        assert_ne!(random_content(4, 8, 1), random_content(4, 8, 2));
    }

    #[test]
    fn human_bytes_picks_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
