//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Supports the syntax this workspace's property tests actually use:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }` with an
//!   optional leading `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * numeric range strategies (`0usize..100`, `-1e3f64..1e3`, `1..=8`),
//!   `any::<T>()`, `proptest::bool::ANY`, tuples of strategies, and
//!   `proptest::collection::vec(elem, size_range)`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! random inputs from a seed derived deterministically from the test name,
//! and a failing case panics with the values baked into the assertion
//! message. That keeps failures reproducible without any persistence files.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinator implementations.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        // Finite values only: property tests here do arithmetic on them.
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            (rng.gen::<f64>() - 0.5) * 2e9
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The "any value of `T`" strategy.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniformly random `bool`.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        low: usize,
        high_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { low: r.start, high_exclusive: r.end.max(r.start + 1) }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { low: *r.start(), high_exclusive: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { low: n, high_exclusive: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.low..self.size.high_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! Per-test configuration.

    /// Number of random cases to run per property test.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many random inputs each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random inputs.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` DSL needs in scope.

    pub use super::arbitrary::any;
    pub use super::strategy::Strategy;
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test seed so failures reproduce across runs.
#[doc(hidden)]
#[must_use]
pub fn deterministic_rng(test_name: &str, case: u32) -> SmallRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (u64::from(case) << 32))
}

/// `assert!` that reports the property-test case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports the property-test case (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports the property-test case (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::deterministic_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::deterministic_rng("t", 0);
        let mut b = crate::deterministic_rng("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::deterministic_rng("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3usize..10,
            f in -2.0f64..2.0,
            v in crate::collection::vec(0usize..5, 1..8),
            b in crate::bool::ANY,
            y in any::<u8>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = b;
            prop_assert!(u32::from(y) <= 255);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn tuple_strategies_work(pair in crate::collection::vec((0usize..4, 0usize..4), 0..6)) {
            prop_assert!(pair.iter().all(|&(a, b)| a < 4 && b < 4));
        }
    }
}
