//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace derives serde traits on its public types so that a real
//! serde can be slotted in when the build environment has network access,
//! but nothing in-tree calls a serializer. These derives therefore expand
//! to nothing: the derive *syntax* stays valid while adding zero code.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
