//! Vendored serde facade for offline builds.
//!
//! Re-exports the no-op derive macros so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! The marker traits exist only so the names also resolve in trait
//! position; no serializer ships in-tree.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; nothing in-tree
/// serializes).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; nothing in-tree
/// deserializes).
pub trait Deserialize<'de> {}
