//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! Implements the call surface the workspace's benches use — benchmark
//! groups, `bench_with_input`, `bench_function`, throughput annotation and
//! the `criterion_group!` / `criterion_main!` macros — with a simple
//! timing loop instead of criterion's statistical machinery: each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a short measurement window, and the mean time per iteration is
//! printed (with throughput when configured). Configured warm-up and
//! measurement times are treated as upper bounds and clamped so a full
//! `cargo bench` stays fast; trends between benches remain comparable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (real criterion's `black_box`).
pub use std::hint::black_box;

const MAX_WARM_UP: Duration = Duration::from_millis(60);
const MAX_MEASUREMENT: Duration = Duration::from_millis(250);

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n# group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            warm_up: Duration::from_millis(20),
            measurement: Duration::from_millis(120),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(name, f);
        group.finish();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration (clamped to keep runs short).
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration.min(MAX_WARM_UP);
        self
    }

    /// Sets the measurement window (clamped to keep runs short).
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration.min(MAX_MEASUREMENT);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.warm_up, self.measurement);
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher::new(self.warm_up, self.measurement);
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        let Some(mean) = bencher.mean_ns() else {
            println!("{}/{label}: no measurement (b.iter was never called)", self.name);
            return;
        };
        let mut line = format!("{}/{label}: {} per iter", self.name, fmt_ns(mean));
        if let Some(tp) = self.throughput {
            let per_sec = |units: u64| units as f64 / (mean / 1e9);
            match tp {
                Throughput::Bytes(b) => {
                    line.push_str(&format!(" ({:.1} MiB/s)", per_sec(b) / (1024.0 * 1024.0)));
                }
                Throughput::Elements(e) => {
                    line.push_str(&format!(" ({:.0} elem/s)", per_sec(e)));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Bencher { warm_up, measurement, measured: None }
    }

    /// Times `routine`, called repeatedly until the measurement window is
    /// filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also yielding a rough per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let total = (self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let total = total.clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..total {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), total));
    }

    fn mean_ns(&self) -> Option<f64> {
        self.measured.map(|(elapsed, iters)| elapsed.as_nanos() as f64 / iters as f64)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Bytes(64));
        let data = vec![1u8; 64];
        group.bench_with_input(BenchmarkId::new("sum", 64), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn bench_function_without_iter_reports_gracefully() {
        let mut c = Criterion::default();
        c.bench_function("noop", |_b| {});
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter(1024).label, "1024");
    }
}
