//! Vendored, dependency-free subset of the `bytes` crate API.
//!
//! The workspace only needs cheaply-clonable immutable buffers handed to the
//! transport layer, so [`Bytes`] wraps an `Arc<[u8]>` (clone = refcount bump,
//! like the real crate) and [`BytesMut`] is a thin growable builder that
//! [`BytesMut::freeze`]s into one.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable contiguous buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty builder with the given capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        let frozen = b.freeze();
        assert_eq!(frozen.as_ref(), &[1, 2, 3]);
        let clone = frozen.clone();
        assert_eq!(&*clone, &*frozen);
    }

    #[test]
    fn empty_defaults() {
        assert!(Bytes::new().is_empty());
        assert!(BytesMut::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).len(), 1);
    }
}
