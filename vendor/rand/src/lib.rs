//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment of this workspace has no network access, so the
//! workspace ships the tiny slice of `rand` it actually uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::SmallRng`] (xoroshiro128++), slice shuffling/choosing and
//! index sampling without replacement. The implementation favours
//! simplicity and determinism over statistical sophistication — every use
//! in the workspace is seeded explicitly, and reproducibility across runs
//! is the property the simulator and tests rely on.

#![forbid(unsafe_code)]

/// Low-level generator interface (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Numeric types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`. `low <= high` must hold.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range called with empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_closed(rng, low, high)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills the byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoroshiro128++), seeded through
    /// SplitMix64 exactly like `rand`'s `SmallRng::seed_from_u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut s = state;
            let s0 = splitmix64(&mut s);
            let mut s1 = splitmix64(&mut s);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xoroshiro must not start at the all-zero state
            }
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s0 = self.s0;
            let mut s1 = self.s1;
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rest = chunks.into_remainder();
            if !rest.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rest.copy_from_slice(&bytes[..rest.len()]);
            }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers: shuffling, choosing, index sampling.

    use super::{Rng, RngCore};

    /// Extension trait for slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices.

        use super::super::{Rng, RngCore};

        /// A set of distinct indices in `0..length`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices by value.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (Floyd's algorithm).
        ///
        /// # Panics
        ///
        /// Panics when `amount > length`, matching `rand`'s behaviour.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from 0..{length}");
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = sample(&mut rng, 20, 8);
            let mut v = s.into_vec();
            assert_eq!(v.len(), 8);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 8, "indices must be distinct");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0usize..10);
        assert!(x < 10);
        let f: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
