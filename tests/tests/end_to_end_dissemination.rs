//! End-to-end integration tests across the whole workspace: the simulator
//! drives real LTNC / RLNC / WC nodes and every completed node must hold the
//! original content bit-for-bit.

use ltnc_metrics::CostModel;
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn quick(scheme: SchemeKind, seed: u64) -> SimConfig {
    let mut c = SimConfig::quick(scheme);
    c.nodes = 50;
    c.code_length = 32;
    c.payload_size = 16;
    c.max_periods = 10_000;
    c.seed = seed;
    c
}

#[test]
fn all_three_schemes_disseminate_the_same_content() {
    for scheme in SchemeKind::ALL {
        let report = Engine::new(quick(scheme, 1)).run();
        assert_eq!(report.completed_nodes, 50, "{}: not every node completed", scheme.label());
        assert!(report.content_verified, "{}: content mismatch", scheme.label());
        assert!(report.completion_period.is_some());
    }
}

#[test]
fn ltnc_trades_overhead_for_decoding_cost() {
    // The paper's headline trade-off, checked end-to-end on the simulator:
    // LTNC sends somewhat more payloads than RLNC but decodes dramatically
    // cheaper (data plane), while staying ahead of WC on completion time.
    let ltnc = Engine::new(quick(SchemeKind::Ltnc, 2)).run();
    let rlnc = Engine::new(quick(SchemeKind::Rlnc, 2)).run();
    let wc = Engine::new(quick(SchemeKind::Wc, 2)).run();

    // Overhead: RLNC ≈ 0, LTNC ≥ RLNC.
    assert!(rlnc.overhead_percent() < 1.0);
    assert!(ltnc.overhead_percent() >= rlnc.overhead_percent());

    // Decoding data cost: LTNC below RLNC. The asymptotic gap (≈ 99 % at
    // k = 2048, Figure 8d) is checked by the larger-k unit test
    // `decoding_cost_is_much_lower_than_rank_squared` in `ltnc-core` and by the
    // `fig8_cost` harness; at this deliberately tiny k = 32 the Gaussian
    // recipes are still short, so we only require a clear advantage.
    let model = CostModel::new(32, 256 * 1024);
    let ltnc_cost = model.evaluate(&ltnc.decoding_counters);
    let rlnc_cost = model.evaluate(&rlnc.decoding_counters);
    assert!(
        ltnc_cost.data_cycles < 0.85 * rlnc_cost.data_cycles,
        "LTNC decode data cost {} should be below RLNC's {}",
        ltnc_cost.data_cycles,
        rlnc_cost.data_cycles
    );

    // Dissemination: both coded schemes beat WC.
    assert!(ltnc.avg_time_to_complete < wc.avg_time_to_complete);
    assert!(rlnc.avg_time_to_complete < wc.avg_time_to_complete);
}

#[test]
fn feedback_channel_reduces_wasted_payloads() {
    let mut with = quick(SchemeKind::Ltnc, 3);
    with.feedback = true;
    let mut without = quick(SchemeKind::Ltnc, 3);
    without.feedback = false;
    let with = Engine::new(with).run();
    let without = Engine::new(without).run();
    assert!(with.transfers_aborted > 0, "feedback should abort some transfers");
    assert_eq!(without.transfers_aborted, 0);
    assert!(
        with.payloads_delivered < without.payloads_delivered,
        "feedback should save payload transfers ({} vs {})",
        with.payloads_delivered,
        without.payloads_delivered
    );
    assert!(with.content_verified && without.content_verified);
}

#[test]
fn reports_expose_consistent_counters() {
    let report = Engine::new(quick(SchemeKind::Ltnc, 4)).run();
    assert!(report.useful_deliveries <= report.payloads_delivered);
    assert!(report.packets_recoded >= report.payloads_delivered);
    assert!(report.decoding_counters.total_ops() > 0);
    assert!(report.recoding_counters.total_ops() > 0);
    assert!(report.completion_ratio() > 0.99);
    // Every node needs at least k useful packets to decode k natives.
    assert!(report.useful_deliveries >= (report.config.nodes * report.config.code_length) as u64);
}

#[test]
fn larger_networks_still_converge() {
    let mut c = quick(SchemeKind::Ltnc, 5);
    c.nodes = 150;
    let report = Engine::new(c).run();
    assert_eq!(report.completed_nodes, 150);
    assert!(report.content_verified);
}
