//! Failure-injection tests: lossy links, node churn and adversarial packet
//! mixes. The dissemination must keep making progress and decoded data must
//! never be corrupted, whatever is dropped or duplicated.

use ltnc_core::{LtncConfig, LtncNode};
use ltnc_integration::{packet_of, random_content};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn ltnc_survives_heavy_packet_loss() {
    // 60 % of the packets on the source → sink link are lost; the rateless
    // property means the sink still completes, just later.
    let k = 64;
    let m = 8;
    let content = random_content(k, m, 1);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut sink = LtncNode::new(k, m);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut sent = 0;
    while !sink.is_complete() {
        sent += 1;
        assert!(sent < 200 * k, "sink did not converge under loss");
        let p = source.recode(&mut rng).unwrap();
        if rng.gen_bool(0.6) {
            continue; // lost
        }
        sink.receive(&p);
    }
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn rlnc_survives_heavy_packet_loss() {
    let k = 48;
    let m = 8;
    let content = random_content(k, m, 3);
    let mut source = RlncNode::new(k, m);
    for (i, p) in content.iter().enumerate() {
        source.receive(&ltnc_gf2::EncodedPacket::native(k, i, p.clone()));
    }
    let mut sink = RlncNode::new(k, m);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut sent = 0;
    while !sink.is_complete() {
        sent += 1;
        assert!(sent < 200 * k, "sink did not converge under loss");
        let p = source.recode(&mut rng).unwrap();
        if rng.gen_bool(0.6) {
            continue;
        }
        sink.receive(&p);
    }
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn relay_churn_does_not_corrupt_content() {
    // Relays crash and are replaced by empty ones mid-dissemination; the sink
    // keeps decoding correct data and eventually completes thanks to the
    // source still injecting.
    let k = 48;
    let m = 4;
    let content = random_content(k, m, 5);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut relays: Vec<LtncNode> = (0..4).map(|_| LtncNode::new(k, m)).collect();
    let mut sink = LtncNode::new(k, m);
    let mut rng = SmallRng::seed_from_u64(6);
    let mut rounds = 0;
    while !sink.is_complete() {
        rounds += 1;
        assert!(rounds < 400 * k, "sink did not converge under churn");
        // Occasionally crash a relay (lose all its state).
        if rounds % 97 == 0 {
            let victim = rng.gen_range(0..relays.len());
            relays[victim] = LtncNode::new(k, m);
        }
        if let Some(p) = source.recode(&mut rng) {
            let t = rng.gen_range(0..relays.len());
            relays[t].receive(&p);
        }
        for relay in &mut relays {
            if relay.can_recode() {
                if let Some(p) = relay.recode(&mut rng) {
                    sink.receive(&p);
                }
            }
        }
        for (i, expected) in content.iter().enumerate() {
            if let Some(v) = sink.native(i) {
                assert_eq!(v, expected, "native {i} corrupted under churn");
            }
        }
    }
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn duplicated_and_reordered_packets_are_harmless() {
    let k = 32;
    let m = 4;
    let content = random_content(k, m, 7);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut rng = SmallRng::seed_from_u64(8);
    // Capture a window of packets, then deliver it shuffled with duplicates.
    let mut window: Vec<_> = (0..6 * k).filter_map(|_| source.recode(&mut rng)).collect();
    let duplicates: Vec<_> = window.iter().take(k).cloned().collect();
    window.extend(duplicates);
    use rand::seq::SliceRandom;
    window.shuffle(&mut rng);

    let mut sink = LtncNode::new(k, m);
    for p in &window {
        sink.receive(p);
    }
    assert!(sink.is_complete(), "sink should complete from the shuffled window");
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn zero_and_degenerate_packets_are_rejected_gracefully() {
    let k = 16;
    let m = 4;
    let content = random_content(k, m, 9);
    let mut node = LtncNode::new(k, m);
    // A zero packet (degree 0) is redundant by definition.
    let zero =
        ltnc_gf2::EncodedPacket::new(ltnc_gf2::CodeVector::zero(k), ltnc_gf2::Payload::zero(m));
    assert_eq!(node.receive(&zero), ltnc_core::ReceiveOutcome::RejectedRedundant);
    // Normal traffic still works afterwards.
    node.receive(&packet_of(&content, k, &[0]));
    assert!(node.is_decoded(0));
}

#[test]
fn wc_scheme_is_the_fragile_baseline_under_loss() {
    // Not a correctness test of WC (it always stays correct) but a shape
    // check: under the same loss rate, the unencoded scheme needs many more
    // transmissions than LTNC because lost natives must be retransmitted
    // explicitly (coupon collector), while any LTNC packet is useful.
    let k = 32;
    let m = 4;
    let content = random_content(k, m, 11);
    let mut rng = SmallRng::seed_from_u64(12);

    // WC: the source sends uniformly random natives; count transmissions until
    // the sink holds all of them, with 50 % loss.
    let mut have = vec![false; k];
    let mut wc_sent = 0u64;
    while have.iter().any(|h| !h) {
        wc_sent += 1;
        let i = rng.gen_range(0..k);
        if rng.gen_bool(0.5) {
            continue;
        }
        have[i] = true;
    }

    // LTNC under the same loss.
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut sink = LtncNode::new(k, m);
    let mut ltnc_sent = 0u64;
    while !sink.is_complete() {
        ltnc_sent += 1;
        let p = source.recode(&mut rng).unwrap();
        if rng.gen_bool(0.5) {
            continue;
        }
        sink.receive(&p);
    }
    assert!(
        ltnc_sent < wc_sent * 2,
        "LTNC ({ltnc_sent}) should not need dramatically more transmissions than WC ({wc_sent})"
    );
}
