//! Property-based integration tests of the LTNC recoding pipeline: whatever
//! the node holds, recoded packets respect the on-the-wire invariant, never
//! exceed the reachable degree, and keep the statistics belief propagation
//! relies on.

use ltnc_core::{LtncConfig, LtncNode};
use ltnc_integration::{assert_packet_consistent, packet_of, random_content};
use ltnc_lt::{DegreeDistribution, RobustSoliton};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recoded packets are always consistent linear combinations of the
    /// original content, whatever mix of packets the node received.
    #[test]
    fn recoded_packets_are_consistent(
        seed in any::<u64>(),
        k in 8usize..48,
        receptions in 4usize..64,
    ) {
        let m = 4;
        let content = random_content(k, m, seed);
        let mut node = LtncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..receptions {
            let degree = rng.gen_range(1..=k.min(5));
            let mut indices = Vec::new();
            while indices.len() < degree {
                let x = rng.gen_range(0..k);
                if !indices.contains(&x) {
                    indices.push(x);
                }
            }
            node.receive(&packet_of(&content, k, &indices));
        }
        for _ in 0..16 {
            if let Some(p) = node.recode(&mut rng) {
                assert_packet_consistent(&p, &content);
                prop_assert!(p.degree() >= 1);
                prop_assert!(p.degree() <= k);
            }
        }
    }

    /// A node holding everything emits degrees that follow the Robust Soliton
    /// distribution closely (within a generous statistical tolerance).
    #[test]
    fn full_node_degree_distribution_tracks_soliton(seed in any::<u64>(), k in 32usize..96) {
        let m = 1;
        let content = random_content(k, m, seed);
        let mut node = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 800;
        let mut degree_one_or_two = 0;
        let mut total_degree = 0usize;
        for _ in 0..n {
            let p = node.recode(&mut rng).unwrap();
            total_degree += p.degree();
            if p.degree() <= 2 {
                degree_one_or_two += 1;
            }
        }
        let soliton = RobustSoliton::for_code_length(k).unwrap();
        let expected_low = soliton.pmf(1) + soliton.pmf(2);
        let observed_low = degree_one_or_two as f64 / n as f64;
        prop_assert!(
            (observed_low - expected_low).abs() < 0.1,
            "low-degree mass {} vs expected {}", observed_low, expected_low
        );
        let mean = total_degree as f64 / n as f64;
        prop_assert!(mean < 3.0 * (k as f64).ln() + 2.0, "mean degree {} too high", mean);
    }

    /// The redundancy detector never rejects an innovative packet: any packet
    /// it flags can indeed be generated from the node's holdings, so dropping
    /// it can never hurt decodability.
    #[test]
    fn redundancy_detection_is_sound(seed in any::<u64>(), k in 6usize..24) {
        let m = 2;
        let content = random_content(k, m, seed);
        let mut detecting = LtncNode::new(k, m);
        let mut reference = LtncNode::with_config(
            k, m, LtncConfig::default().without_redundancy_detection());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x55);
        for _ in 0..6 * k {
            let degree = rng.gen_range(1..=3.min(k));
            let mut indices = Vec::new();
            while indices.len() < degree {
                let x = rng.gen_range(0..k);
                if !indices.contains(&x) {
                    indices.push(x);
                }
            }
            let p = packet_of(&content, k, &indices);
            detecting.receive(&p);
            reference.receive(&p);
            // Dropping detected-redundant packets must never lose information:
            // the detecting node decodes at least as much as the reference at
            // every step... and in fact exactly as much, because a generatable
            // packet adds nothing to the span.
            prop_assert_eq!(detecting.decoded_count(), reference.decoded_count());
        }
    }
}

#[test]
fn refinement_keeps_native_occurrences_balanced_across_relays() {
    // A chain of relays, each recoding from partial knowledge: the occurrence
    // spread at every relay stays far below what unrefined selection gives.
    let k = 96;
    let m = 2;
    let content = random_content(k, m, 99);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut relays: Vec<LtncNode> = (0..3).map(|_| LtncNode::new(k, m)).collect();
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..40 * k {
        if let Some(p) = source.recode(&mut rng) {
            relays[0].receive(&p);
        }
        for i in 0..relays.len() {
            if relays[i].can_recode() {
                if let Some(p) = relays[i].recode(&mut rng) {
                    if i + 1 < relays.len() {
                        relays[i + 1].receive(&p);
                    }
                }
            }
        }
        if relays.iter().all(|r| r.is_complete()) {
            break;
        }
    }
    for (i, relay) in relays.iter().enumerate() {
        // Deeper relays recode from fewer packets, so their spread is naturally
        // larger; the bound scales with how much they actually sent. A node
        // picking natives uniformly at random would sit near 1/sqrt(mean
        // occurrences); refinement must stay clearly below a constant spread.
        if relay.stats().recoded_packets > 100 {
            let spread = relay.occurrence_spread();
            assert!(
                spread.relative_std_dev < 1.0,
                "relay {i}: occurrence spread {} too large (sent {} packets)",
                spread.relative_std_dev,
                relay.stats().recoded_packets
            );
        }
    }
}
