//! Cross-crate interoperability: LTNC, plain LT codes and RLNC all speak the
//! same GF(2) packet format, so packets produced by one encoder are consumable
//! by the other decoders (LTNC packets are ordinary linear combinations).

use ltnc_core::{LtncConfig, LtncNode};
use ltnc_integration::{assert_packet_consistent, random_content};
use ltnc_lt::{BpDecoder, LtEncoder, RobustSoliton};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn rlnc_decodes_packets_recoded_by_ltnc() {
    // RLNC's Gaussian decoder accepts any linear combination, so a stream of
    // LTNC packets must be decodable by it (the converse does not hold:
    // belief propagation needs the LT structure RLNC destroys).
    let k = 48;
    let m = 16;
    let content = random_content(k, m, 1);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut sink = RlncNode::new(k, m);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut sent = 0;
    while !sink.is_complete() {
        let p = source.recode(&mut rng).expect("source can recode");
        assert_packet_consistent(&p, &content);
        sink.receive(&p);
        sent += 1;
        assert!(sent < 50 * k, "RLNC sink did not converge on LTNC packets");
    }
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn plain_bp_decoder_handles_source_encoded_and_recoded_mix() {
    // A receiver may see a mix of packets straight from the source encoder and
    // packets recoded by LTNC relays; the plain BP decoder handles both.
    let k = 64;
    let m = 8;
    let content = random_content(k, m, 2);
    let dist = RobustSoliton::for_code_length(k).unwrap();
    let mut encoder = LtEncoder::new(content.clone(), dist).unwrap();
    let mut relay = LtncNode::new(k, m);
    let mut decoder = BpDecoder::new(k, m);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut budget = 0;
    while !decoder.is_complete() {
        budget += 1;
        assert!(budget < 100 * k, "decoder did not converge on the mixed stream");
        let source_packet = encoder.encode(&mut rng);
        relay.receive(&source_packet);
        decoder.insert(source_packet).unwrap();
        if relay.can_recode() {
            if let Some(p) = relay.recode(&mut rng) {
                assert_packet_consistent(&p, &content);
                decoder.insert(p).unwrap();
            }
        }
    }
    for (i, native) in content.iter().enumerate() {
        assert_eq!(decoder.native(i), Some(native));
    }
}

#[test]
fn ltnc_node_consumes_rlnc_packets_without_corruption() {
    // Sparse RLNC packets do not follow the Robust Soliton structure, so an
    // LTNC node fed exclusively by them may decode slowly — but it must never
    // produce wrong payloads, and with the degree-1 packets of the source mixed
    // in it still completes.
    let k = 32;
    let m = 8;
    let content = random_content(k, m, 7);
    let mut rlnc_source = RlncNode::new(k, m);
    for (i, p) in content.iter().enumerate() {
        rlnc_source.receive(&ltnc_gf2::EncodedPacket::native(k, i, p.clone()));
    }
    let mut sink = LtncNode::new(k, m);
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..20 * k {
        let p = rlnc_source.recode(&mut rng).unwrap();
        sink.receive(&p);
        for (i, expected) in content.iter().enumerate() {
            if let Some(v) = sink.native(i) {
                assert_eq!(v, expected, "decoded native {i} is corrupted");
            }
        }
    }
    // Top up with native packets so the sink completes regardless of how the
    // random structure treated belief propagation.
    for (i, p) in content.iter().enumerate() {
        if !sink.is_decoded(i) {
            sink.receive(&ltnc_gf2::EncodedPacket::native(k, i, p.clone()));
        }
    }
    assert!(sink.is_complete());
    assert_eq!(sink.decode().unwrap(), content);
}

#[test]
fn wire_format_roundtrip_between_crates() {
    // The packet type is shared; check the header/payload sizes the simulator
    // accounts for match what the paper assumes (bitmap header of ⌈k/8⌉ bytes).
    let k = 2048;
    let m = 32;
    let content = random_content(k, m, 4);
    let mut source = LtncNode::with_all_natives(k, m, &content, LtncConfig::default());
    let mut rng = SmallRng::seed_from_u64(1);
    let p = source.recode(&mut rng).unwrap();
    assert_eq!(p.vector().wire_size_bytes(), 256);
    assert_eq!(p.wire_size_bytes(), 256 + m);
    assert_packet_consistent(&p, &content);
}
