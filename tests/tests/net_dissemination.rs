//! End-to-end dissemination over real localhost UDP sockets.
//!
//! Runs the full stack — generation chunking, envelope codec, header-first
//! binary feedback, peer actors — for every scheme, and checks the wire
//! invariants the protocol exists to provide:
//!
//! * every peer reconstructs the object **bit for bit**;
//! * aborted transfers never carry payload bytes (payload bytes on the
//!   wire account exactly for the *delivered* transfers);
//! * the feedback channel actually fires (non-zero aborts at the header).

use std::time::Duration;

use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmRuntime};
use ltnc_net::NodeOptions;
use ltnc_sim::SchemeKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pseudo_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

fn multi_generation_config(scheme: SchemeKind) -> SwarmConfig {
    // 12 × 24 = 288 bytes per generation; 1000 bytes → 4 generations,
    // the last one padded.
    SwarmConfig {
        scheme,
        object: pseudo_file(1000, 42),
        code_length: 12,
        payload_size: 24,
        peers: 8,
        options: NodeOptions { seed: 0xBEEF ^ scheme.wire_id() as u64, ..NodeOptions::default() },
        timeout: Duration::from_secs(60),
        session: 0xAB_0000 + scheme.wire_id() as u64,
        faults: None,
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    }
}

#[test]
fn multi_generation_file_disseminates_bit_exactly_under_every_scheme() {
    for scheme in SchemeKind::ALL {
        let config = multi_generation_config(scheme);
        let report = run_localhost_swarm(&config).expect("swarm should start");
        assert_eq!(report.generations, 4, "{scheme:?}: expected a multi-generation object");
        assert!(
            report.converged,
            "{scheme:?}: only {}/{} peers completed in {:?}",
            report.peers_complete, config.peers, report.elapsed
        );
        assert!(report.bit_exact, "{scheme:?}: reconstruction mismatch");
        for (i, peer) in report.peer_reports.iter().enumerate() {
            assert_eq!(
                peer.object.as_deref(),
                Some(&config.object[..]),
                "{scheme:?}: peer {i} object differs"
            );
        }
    }
}

#[test]
fn aborted_transfers_never_carry_payload_bytes() {
    for scheme in SchemeKind::ALL {
        let config = multi_generation_config(scheme);
        let report = run_localhost_swarm(&config).expect("swarm should start");
        assert!(report.converged, "{scheme:?} did not converge");

        let wire = &report.total_wire;
        // Each delivered transfer ships exactly one m-byte payload; aborted
        // (and still-pending) transfers ship none. If an abort ever leaked
        // payload bytes onto the wire, the left side would exceed the right.
        assert_eq!(
            wire.payload_bytes_sent,
            wire.transfers_delivered * config.payload_size as u64,
            "{scheme:?}: payload bytes on the wire must come from delivered transfers only"
        );
        // The binary feedback channel must actually have fired: with 8
        // gossiping peers, redundant offers are guaranteed.
        assert!(wire.transfers_aborted > 0, "{scheme:?}: no header-level aborts at all");
        // Conservation: every offer is delivered, aborted or still pending.
        assert!(
            wire.transfers_delivered + wire.transfers_aborted <= wire.transfers_offered,
            "{scheme:?}: transfer accounting is inconsistent"
        );
    }
}

#[test]
fn single_generation_object_and_tiny_payloads_work() {
    // Degenerate-ish dimensions: object smaller than one generation.
    let config = SwarmConfig {
        scheme: SchemeKind::Ltnc,
        object: pseudo_file(100, 7),
        code_length: 8,
        payload_size: 16,
        peers: 8,
        options: NodeOptions::default(),
        timeout: Duration::from_secs(60),
        session: 0xCAFE,
        faults: None,
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    };
    let report = run_localhost_swarm(&config).expect("swarm should start");
    assert_eq!(report.generations, 1);
    assert!(report.converged && report.bit_exact, "single-generation run failed: {report:?}");
}
