//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/` and exercise complete flows across
//! the workspace: source encoding (`ltnc-lt`), recoding (`ltnc-core` /
//! `ltnc-rlnc`), epidemic dissemination (`ltnc-sim`) and cost accounting
//! (`ltnc-metrics`).

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `k` pseudo-random native payloads of `m` bytes.
#[must_use]
pub fn random_content(k: usize, m: usize, seed: u64) -> Vec<Payload> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; m];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

/// Builds the encoded packet combining the given native indices of `content`.
///
/// # Panics
///
/// Panics if any index is out of range.
#[must_use]
pub fn packet_of(content: &[Payload], k: usize, indices: &[usize]) -> EncodedPacket {
    let mut payload = Payload::zero(content[0].len());
    for &i in indices {
        payload.xor_assign(&content[i]);
    }
    EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
}

/// Asserts the fundamental on-the-wire invariant: the payload of `packet`
/// equals the XOR of the native payloads named by its code vector.
///
/// # Panics
///
/// Panics when the invariant is violated.
pub fn assert_packet_consistent(packet: &EncodedPacket, content: &[Payload]) {
    let mut expected = Payload::zero(content[0].len());
    for i in packet.vector().iter_ones() {
        expected.xor_assign(&content[i]);
    }
    assert_eq!(packet.payload(), &expected, "packet payload does not match its code vector");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_of_builds_consistent_packets() {
        let content = random_content(8, 16, 3);
        let p = packet_of(&content, 8, &[1, 4, 6]);
        assert_eq!(p.degree(), 3);
        assert_packet_consistent(&p, &content);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn assert_packet_consistent_catches_corruption() {
        let content = random_content(4, 8, 3);
        let mut p = packet_of(&content, 4, &[0, 1]);
        let mut corrupted = p.payload().clone().into_vec();
        corrupted[0] ^= 0xFF;
        p = EncodedPacket::new(p.vector().clone(), Payload::from_vec(corrupted));
        assert_packet_consistent(&p, &content);
    }
}
