//! The client side of a serving session: fetch one object by id over TCP
//! and verify bit-exact reassembly.
//!
//! A client is deliberately cheap — one blocking socket, one
//! [`FrameReassembler`], one [`ReceiverSession`] — because the serving
//! workload is *many short-lived clients*: the cache_serving example and
//! the integration tests run dozens of these concurrently against one
//! server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ltnc_metrics::WireCounters;
use ltnc_net::envelope::{self, EnvelopeHeader, Message, MessageKind, GENERATION_OBJECT};
use ltnc_net::stream::FrameReassembler;
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_session::generation::{ObjectManifest, ReceiverSession};

use crate::ServeError;

/// Hard cap on the generation count a manifest may imply. The envelope
/// codec caps `k` and `m`, but `object_len` is only bounded here: without
/// this check a hostile server could declare a tiny generation size and a
/// huge object, driving the client to allocate billions of decoder nodes.
const MAX_GENERATIONS: u64 = 1 << 20;

/// Tuning of one fetch.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Overall deadline for the whole fetch.
    pub timeout: Duration,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions { timeout: Duration::from_secs(30), connect_timeout: Duration::from_secs(5) }
    }
}

/// Outcome of a successful fetch.
#[derive(Debug)]
pub struct FetchReport {
    /// The reassembled object, already length-verified against the
    /// manifest.
    pub object: Vec<u8>,
    /// The manifest the server declared.
    pub manifest: ObjectManifest,
    /// Client-side wire accounting (offers answered, payloads received,
    /// bytes both ways).
    pub wire: WireCounters,
    /// Wall-clock time from connect to reassembly.
    pub elapsed: Duration,
}

/// Fetches object `object_id`, expected to be served under `scheme`, from
/// the server at `addr`. Blocks until the object reassembles bit-exactly
/// or the deadline passes.
///
/// # Errors
///
/// [`ServeError::Rejected`] when the server refuses the object/scheme,
/// [`ServeError::TimedOut`] past the deadline, [`ServeError::Corrupt`]
/// when reassembly fails verification, plus transport and protocol
/// errors.
pub fn fetch(
    addr: SocketAddr,
    object_id: u64,
    scheme: SchemeKind,
    options: &ClientOptions,
) -> Result<FetchReport, ServeError> {
    let started = Instant::now();
    let deadline = started + options.timeout;
    let mut stream = TcpStream::connect_timeout(&addr, options.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(5)))?;

    let mut wire = WireCounters::new();
    let mut reassembler = FrameReassembler::new();
    let mut receiver: Option<ReceiverSession> = None;
    let mut manifest: Option<ObjectManifest> = None;

    let request = EnvelopeHeader {
        kind: MessageKind::Request,
        scheme,
        session: object_id,
        generation: GENERATION_OBJECT,
    };
    send(&mut stream, &mut wire, &request, &Message::Request)?;

    let mut buf = vec![0u8; 16 * 1024];
    loop {
        if Instant::now() > deadline {
            return Err(ServeError::TimedOut);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(ServeError::Disconnected),
            Ok(n) => {
                wire.bytes_received += n as u64;
                reassembler.extend(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(ServeError::Io(e)),
        }

        while let Some(frame) = reassembler.next_frame()? {
            wire.datagrams_received += 1;
            let generation = frame.header.generation;
            match frame.message {
                Message::Reject => return Err(ServeError::Rejected),
                Message::Manifest { object_len, code_length, payload_size } => {
                    if receiver.is_some() {
                        return Err(ServeError::UnexpectedMessage("second MANIFEST"));
                    }
                    if code_length == 0 || payload_size == 0 {
                        return Err(ServeError::Corrupt("degenerate manifest dimensions"));
                    }
                    let generation_bytes = u64::from(code_length) * u64::from(payload_size);
                    if object_len.div_ceil(generation_bytes) > MAX_GENERATIONS {
                        return Err(ServeError::Corrupt("manifest implies too many generations"));
                    }
                    let params =
                        SchemeParams::new(scheme, code_length as usize, payload_size as usize);
                    let declared = ObjectManifest { object_len, params };
                    receiver = Some(ReceiverSession::new(declared));
                    manifest = Some(declared);
                }
                Message::DataHeader { transfer, payload_size, vector } => {
                    let Some(receiver) = receiver.as_ref() else {
                        return Err(ServeError::UnexpectedMessage("offer before MANIFEST"));
                    };
                    let expected = manifest.expect("manifest set with receiver");
                    let accept = payload_size == expected.params.payload_size
                        && receiver.would_accept(generation, &vector);
                    if !accept {
                        wire.transfers_aborted += 1;
                    }
                    let kind = if accept {
                        MessageKind::FeedbackAccept
                    } else {
                        MessageKind::FeedbackAbort
                    };
                    send(
                        &mut stream,
                        &mut wire,
                        &reply_header(&expected, object_id, kind, generation),
                        &Message::Feedback { transfer, accept },
                    )?;
                }
                Message::DataPayload { packet, .. } => {
                    let Some(session) = receiver.as_mut() else {
                        return Err(ServeError::UnexpectedMessage("payload before MANIFEST"));
                    };
                    let expected = manifest.expect("manifest set with receiver");
                    wire.transfers_delivered += 1;
                    let was_complete = session.generation_complete(generation);
                    if session.deliver(generation, &packet) {
                        wire.useful_deliveries += 1;
                    }
                    if !was_complete && session.generation_complete(generation) {
                        send(
                            &mut stream,
                            &mut wire,
                            &reply_header(&expected, object_id, MessageKind::Complete, generation),
                            &Message::Complete,
                        )?;
                    }
                    if session.is_complete() {
                        send(
                            &mut stream,
                            &mut wire,
                            &reply_header(
                                &expected,
                                object_id,
                                MessageKind::Complete,
                                GENERATION_OBJECT,
                            ),
                            &Message::Complete,
                        )?;
                        graceful_close(&mut stream, &mut wire, &mut buf);
                        let object = session
                            .reassemble()
                            .ok_or(ServeError::Corrupt("reassembly failed after completion"))?;
                        if object.len() as u64 != expected.object_len {
                            return Err(ServeError::Corrupt("reassembled length != manifest"));
                        }
                        return Ok(FetchReport {
                            object,
                            manifest: expected,
                            wire,
                            elapsed: started.elapsed(),
                        });
                    }
                }
                // Nothing else is meaningful client-side; tolerate rather
                // than tear down (e.g. a future server announcing kinds).
                Message::Request | Message::Feedback { .. } | Message::Complete => {}
            }
        }
    }
}

/// Graceful termination after the final `COMPLETE`: half-close the write
/// side and drain whatever the server still has in flight until it closes
/// its end. Closing abruptly instead would RST the connection and could
/// discard the server's unread `COMPLETE`, losing it from the server's
/// session accounting. Best-effort with a bounded wait — the object is
/// already decoded at this point.
fn graceful_close(stream: &mut TcpStream, wire: &mut WireCounters, buf: &mut [u8]) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline {
        match stream.read(buf) {
            Ok(0) => break,
            Ok(n) => wire.bytes_received += n as u64,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

fn reply_header(
    manifest: &ObjectManifest,
    object_id: u64,
    kind: MessageKind,
    generation: u32,
) -> EnvelopeHeader {
    EnvelopeHeader { kind, scheme: manifest.params.kind, session: object_id, generation }
}

fn send(
    stream: &mut TcpStream,
    wire: &mut WireCounters,
    header: &EnvelopeHeader,
    message: &Message,
) -> Result<(), ServeError> {
    let bytes = envelope::encode(header, message);
    stream.write_all(&bytes)?;
    wire.datagrams_sent += 1;
    wire.bytes_sent += bytes.len() as u64;
    Ok(())
}
