//! The client side of a serving session, built around a reusable
//! **per-generation fetch primitive**.
//!
//! A connection to one server is a [`ReplicaConn`]: open it with
//! [`ReplicaConn::open`] (REQUEST → MANIFEST handshake), then pull any
//! *subset* of the object's generations with
//! [`ReplicaConn::fetch_generations`], which merges symbols into a shared
//! [`SharedReceiver`]. The plain [`fetch`] is the degenerate case — one
//! connection leasing every generation into a private receiver — and the
//! striped client ([`crate::striped`]) is N connections leasing disjoint
//! subsets into one shared receiver.
//!
//! The primitive steers the server without any protocol extension: the
//! per-generation `COMPLETE` message that normally prunes a finished
//! generation from the server's offer schedule is simply sent *up front*
//! for every generation outside the lease, so the server spends its whole
//! in-flight budget on the generations this stream is responsible for.
//!
//! Every stream also keeps a **progress watermark**: the last instant a
//! delivery advanced the merged decoder's rank. A stream whose watermark
//! sits still for [`ClientOptions::stall_timeout`] fails with
//! [`ServeError::ReplicaLagged`] instead of blocking until the global
//! deadline — the signal the striped client uses to re-lease a slow or
//! dead replica's generations to the survivors.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ltnc_metrics::{HopLatency, LogHistogramSnapshot, ReplicaCounters, WireCounters};
use ltnc_net::envelope::{self, EnvelopeHeader, Message, MessageKind, GENERATION_OBJECT};
use ltnc_net::stream::FrameReassembler;
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_session::generation::ObjectManifest;
use ltnc_session::SharedReceiver;

use crate::ServeError;

/// Hard cap on the generation count a manifest may imply. The envelope
/// codec caps `k` and `m`, but `object_len` is only bounded here: without
/// this check a hostile server could declare a tiny generation size and a
/// huge object, driving the client to allocate billions of decoder nodes.
const MAX_GENERATIONS: u64 = 1 << 20;

/// Tuning of one fetch.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Overall deadline for the whole fetch.
    pub timeout: Duration,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-stream progress watermark: a connection that goes this long
    /// without a rank-advancing delivery (or, before the handshake
    /// finishes, without a `MANIFEST`) fails with
    /// [`ServeError::ReplicaLagged`]. Should be well below `timeout` so a
    /// stalled replica is detected while there is still time to fail
    /// over.
    pub stall_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of a successful fetch.
#[derive(Debug)]
pub struct FetchReport {
    /// The reassembled object, already length-verified against the
    /// manifest.
    pub object: Vec<u8>,
    /// The manifest the server declared.
    pub manifest: ObjectManifest,
    /// Client-side wire accounting (offers answered, payloads received,
    /// bytes both ways).
    pub wire: WireCounters,
    /// Wall-clock time from connect to reassembly.
    pub elapsed: Duration,
    /// Distribution of per-payload offer→delivery latency (microseconds),
    /// measured from the wire-carried trace context the server stamps at
    /// offer time.
    pub latency: LogHistogramSnapshot,
}

/// One open serving session to one server, with its framing state and
/// accounting. Obtained from [`ReplicaConn::open`]; drives the data plane
/// through [`ReplicaConn::fetch_generations`].
pub struct ReplicaConn {
    stream: TcpStream,
    reassembler: FrameReassembler,
    wire: WireCounters,
    stripe: ReplicaCounters,
    latency: HopLatency,
    manifest: ObjectManifest,
    object_id: u64,
}

impl ReplicaConn {
    /// Connects to `addr`, requests `object_id` under `scheme` and waits
    /// for the server's `MANIFEST`. On success the connection is ready to
    /// fetch generations; the returned manifest is what every replica of
    /// a striped fetch must agree on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the server refuses the
    /// object/scheme, [`ServeError::ReplicaLagged`] when the server goes
    /// silent before the manifest, [`ServeError::Corrupt`] for hostile
    /// manifests, plus transport and protocol errors.
    pub fn open(
        addr: SocketAddr,
        object_id: u64,
        scheme: SchemeKind,
        options: &ClientOptions,
    ) -> Result<(ReplicaConn, ObjectManifest), ServeError> {
        let stream = TcpStream::connect_timeout(&addr, options.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(5)))?;
        let mut conn = ReplicaConn {
            stream,
            reassembler: FrameReassembler::new(),
            wire: WireCounters::new(),
            stripe: ReplicaCounters::default(),
            latency: HopLatency::new(),
            // Placeholder until the real manifest arrives below.
            manifest: ObjectManifest { object_len: 0, params: SchemeParams::new(scheme, 1, 1) },
            object_id,
        };

        let request = EnvelopeHeader {
            kind: MessageKind::Request,
            scheme,
            session: object_id,
            generation: GENERATION_OBJECT,
        };
        conn.send(&request, &Message::Request)?;

        // A server that accepts but never answers the handshake is a
        // stall (watermark never moved); an overall deadline shorter than
        // the stall window is just the deadline.
        let wait = options.timeout.min(options.stall_timeout);
        let deadline = Instant::now() + wait;
        let mut buf = vec![0u8; 16 * 1024];
        loop {
            if Instant::now() > deadline {
                return Err(if options.timeout <= options.stall_timeout {
                    ServeError::TimedOut
                } else {
                    ServeError::ReplicaLagged { stalled_for: wait }
                });
            }
            conn.pump_inbound(&mut buf)?;
            while let Some(frame) = conn.reassembler.next_frame()? {
                conn.wire.datagrams_received += 1;
                match frame.message {
                    Message::Reject => return Err(ServeError::Rejected),
                    Message::Manifest { object_len, code_length, payload_size } => {
                        let manifest =
                            validate_manifest(scheme, object_len, code_length, payload_size)?;
                        conn.manifest = manifest;
                        return Ok((conn, manifest));
                    }
                    Message::DataHeader { .. } | Message::DataPayload { .. } => {
                        return Err(ServeError::UnexpectedMessage("data frame before MANIFEST"));
                    }
                    // Harmless kinds a future server might emit pre-manifest.
                    Message::Request | Message::Feedback { .. } | Message::Complete => {}
                }
            }
        }
    }

    /// The manifest this connection's server declared.
    #[must_use]
    pub fn manifest(&self) -> &ObjectManifest {
        &self.manifest
    }

    /// Per-stream striping counters accumulated so far (valid after an
    /// error too — a failed stream's partial work still happened).
    #[must_use]
    pub fn replica_counters(&self) -> ReplicaCounters {
        let mut stripe = self.stripe;
        stripe.bytes_in = self.wire.bytes_received;
        stripe.bytes_out = self.wire.bytes_sent;
        stripe
    }

    /// Wire-level accounting for this connection.
    #[must_use]
    pub fn wire_counters(&self) -> WireCounters {
        self.wire
    }

    /// Merged offer→delivery latency distribution of every payload this
    /// connection has received (microseconds, from wire trace contexts).
    #[must_use]
    pub fn latency_snapshot(&self) -> LogHistogramSnapshot {
        self.latency.total()
    }

    /// The per-generation fetch primitive: pulls the generations in
    /// `lease` from this server into the shared `receiver`, discarding
    /// duplicate-rank symbols, until every leased generation has decoded
    /// (wherever its finishing symbol came from). Generations outside the
    /// lease are `COMPLETE`d up front so the server never spends offer
    /// budget on them.
    ///
    /// Returns the stream's [`ReplicaCounters`]. The connection is
    /// consumed by a clean finish in the sense that the session is closed
    /// gracefully; calling it again offers nothing new.
    ///
    /// # Errors
    ///
    /// [`ServeError::ReplicaLagged`] when the progress watermark stalls,
    /// [`ServeError::TimedOut`] past the deadline,
    /// [`ServeError::Disconnected`] when the server drops the connection,
    /// plus transport and protocol errors. On error the counters so far
    /// remain readable via [`ReplicaConn::replica_counters`].
    pub fn fetch_generations(
        &mut self,
        lease: &[u32],
        receiver: &SharedReceiver,
        options: &ClientOptions,
    ) -> Result<ReplicaCounters, ServeError> {
        if receiver.manifest() != &self.manifest {
            return Err(ServeError::Corrupt("replicas disagree on the object manifest"));
        }
        let generations = self.manifest.generation_count();
        let lease: HashSet<u32> = lease.iter().copied().filter(|&g| g < generations).collect();
        let lease_list: Vec<u32> = lease.iter().copied().collect();
        let deadline = Instant::now() + options.timeout;

        // Steering: prune everything outside the lease (and anything
        // already complete) from this server's offer schedule.
        let mut completed_sent = vec![false; generations as usize];
        for gen_index in 0..generations {
            if !lease.contains(&gen_index) || receiver.generation_complete(gen_index) {
                self.send_complete(gen_index)?;
                completed_sent[gen_index as usize] = true;
            }
        }

        let mut watermark = Instant::now();
        let mut buf = vec![0u8; 16 * 1024];
        loop {
            // Another stream may have finished one of our generations;
            // prune it here and re-check the exit condition.
            for &gen_index in &lease_list {
                if receiver.generation_complete(gen_index) && !completed_sent[gen_index as usize] {
                    self.send_complete(gen_index)?;
                    completed_sent[gen_index as usize] = true;
                }
            }
            if receiver.generations_complete(&lease_list) {
                self.finish(&mut buf)?;
                return Ok(self.replica_counters());
            }
            if Instant::now() > deadline {
                return Err(ServeError::TimedOut);
            }
            let stalled_for = watermark.elapsed();
            if stalled_for > options.stall_timeout {
                return Err(ServeError::ReplicaLagged { stalled_for });
            }

            self.pump_inbound(&mut buf)?;
            while let Some(frame) = self.reassembler.next_frame()? {
                self.wire.datagrams_received += 1;
                let generation = frame.header.generation;
                match frame.message {
                    Message::Reject => return Err(ServeError::Rejected),
                    Message::Manifest { .. } => {
                        return Err(ServeError::UnexpectedMessage("second MANIFEST"));
                    }
                    Message::DataHeader { transfer, payload_size, vector, .. } => {
                        self.stripe.offers_seen += 1;
                        let accept = payload_size == self.manifest.params.payload_size
                            && lease.contains(&generation)
                            && receiver.would_accept(generation, &vector);
                        if !accept {
                            self.wire.transfers_aborted += 1;
                            self.stripe.aborted += 1;
                        }
                        let kind = if accept {
                            MessageKind::FeedbackAccept
                        } else {
                            MessageKind::FeedbackAbort
                        };
                        let header = self.header(kind, generation);
                        self.send(&header, &Message::Feedback { transfer, accept })?;
                    }
                    Message::DataPayload { trace, packet, .. } => {
                        self.wire.transfers_delivered += 1;
                        self.stripe.delivered += 1;
                        self.latency.record(trace.links(), trace.latency_micros());
                        let outcome = receiver.deliver(generation, &packet);
                        if outcome.useful {
                            self.wire.useful_deliveries += 1;
                            self.stripe.useful += 1;
                            watermark = Instant::now();
                        } else {
                            self.stripe.duplicates += 1;
                        }
                        if outcome.newly_complete {
                            self.stripe.generations_completed += 1;
                        }
                    }
                    // Nothing else is meaningful client-side; tolerate
                    // rather than tear down.
                    Message::Request | Message::Feedback { .. } | Message::Complete => {}
                }
            }
        }
    }

    /// Clean end of a stream whose lease is complete: announce the
    /// session is over, then half-close and drain so the server's unread
    /// feedback still lands in its accounting.
    fn finish(&mut self, buf: &mut [u8]) -> Result<(), ServeError> {
        let header = self.header(MessageKind::Complete, GENERATION_OBJECT);
        self.send(&header, &Message::Complete)?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        let deadline = Instant::now() + Duration::from_millis(250);
        while Instant::now() < deadline {
            match self.stream.read(buf) {
                Ok(0) => break,
                Ok(n) => self.wire.bytes_received += n as u64,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
        Ok(())
    }

    /// One non-blocking-ish socket read into the reassembler.
    fn pump_inbound(&mut self, buf: &mut [u8]) -> Result<(), ServeError> {
        match self.stream.read(buf) {
            Ok(0) => Err(ServeError::Disconnected),
            Ok(n) => {
                self.wire.bytes_received += n as u64;
                self.reassembler.extend(&buf[..n]);
                Ok(())
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(())
            }
            Err(e) => Err(ServeError::Io(e)),
        }
    }

    fn send_complete(&mut self, generation: u32) -> Result<(), ServeError> {
        let header = self.header(MessageKind::Complete, generation);
        self.send(&header, &Message::Complete)
    }

    fn header(&self, kind: MessageKind, generation: u32) -> EnvelopeHeader {
        EnvelopeHeader {
            kind,
            scheme: self.manifest.params.kind,
            session: self.object_id,
            generation,
        }
    }

    fn send(&mut self, header: &EnvelopeHeader, message: &Message) -> Result<(), ServeError> {
        let bytes = envelope::encode(header, message);
        self.stream.write_all(&bytes)?;
        self.wire.datagrams_sent += 1;
        self.wire.bytes_sent += bytes.len() as u64;
        Ok(())
    }
}

/// Bounds-checks a received manifest and converts it to an
/// [`ObjectManifest`].
fn validate_manifest(
    scheme: SchemeKind,
    object_len: u64,
    code_length: u32,
    payload_size: u32,
) -> Result<ObjectManifest, ServeError> {
    if code_length == 0 || payload_size == 0 {
        return Err(ServeError::Corrupt("degenerate manifest dimensions"));
    }
    let generation_bytes = u64::from(code_length) * u64::from(payload_size);
    if object_len.div_ceil(generation_bytes) > MAX_GENERATIONS {
        return Err(ServeError::Corrupt("manifest implies too many generations"));
    }
    let params = SchemeParams::new(scheme, code_length as usize, payload_size as usize);
    Ok(ObjectManifest { object_len, params })
}

/// Fetches object `object_id`, expected to be served under `scheme`, from
/// the server at `addr`. Blocks until the object reassembles bit-exactly
/// or the deadline passes. This is the single-server case of the
/// per-generation primitive: one connection, every generation leased.
///
/// # Errors
///
/// [`ServeError::Rejected`] when the server refuses the object/scheme,
/// [`ServeError::TimedOut`] past the deadline,
/// [`ServeError::ReplicaLagged`] when the server stops making progress,
/// [`ServeError::Corrupt`] when reassembly fails verification, plus
/// transport and protocol errors.
pub fn fetch(
    addr: SocketAddr,
    object_id: u64,
    scheme: SchemeKind,
    options: &ClientOptions,
) -> Result<FetchReport, ServeError> {
    let started = Instant::now();
    let (mut conn, manifest) = ReplicaConn::open(addr, object_id, scheme, options)?;
    let receiver = SharedReceiver::new(manifest);
    let every_generation: Vec<u32> = (0..manifest.generation_count()).collect();
    // One deadline covers connect, handshake and data: the data phase
    // gets whatever the handshake left of the overall budget.
    let remaining = options.timeout.saturating_sub(started.elapsed());
    if remaining.is_zero() {
        return Err(ServeError::TimedOut);
    }
    let data_options = ClientOptions { timeout: remaining, ..*options };
    conn.fetch_generations(&every_generation, &receiver, &data_options)?;
    let object =
        receiver.reassemble().ok_or(ServeError::Corrupt("reassembly failed after completion"))?;
    if object.len() as u64 != manifest.object_len {
        return Err(ServeError::Corrupt("reassembled length != manifest"));
    }
    Ok(FetchReport {
        object,
        manifest,
        wire: conn.wire_counters(),
        elapsed: started.elapsed(),
        latency: conn.latency_snapshot(),
    })
}
