//! The coded object store: registered objects behind a warm symbol cache.
//!
//! A serving workload is repetitive in a way gossip is not: many clients
//! pull the *same* object, so encoding a fresh symbol per client is
//! wasted work — the insight RECIPE-style serving systems exploit by
//! reusing computed output across requests. The store therefore keeps,
//! per hot generation, a bounded ring of pre-encoded symbols identified
//! by a monotonically increasing sequence number:
//!
//! * a session asks for the symbol at its cursor; if the ring still holds
//!   it, that is a **hit** — the symbol is cloned out, no coding work;
//! * a cursor past the newest symbol encodes one fresh symbol (a
//!   **miss**), appends it, and evicts the oldest once the ring is at
//!   capacity;
//! * a cursor that fell behind the eviction horizon skips forward to the
//!   oldest retained symbol (the skipped symbols were already seen by
//!   *some* client — rateless codes do not care which ones a given
//!   client gets, only that it gets enough distinct ones).
//!
//! Distinct clients consume identical cached symbols, which is exactly
//! what makes them cheap; a single client never sees the same sequence
//! number twice because its cursor only moves forward.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ltnc_gf2::EncodedPacket;
use ltnc_scheme::{Scheme, SchemeParams};
use ltnc_session::generation::{split_object, ObjectManifest};
use ltnc_telemetry::{TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::ServeError;

/// One generation's warm symbol ring plus the encoder that refills it.
struct GenerationCache {
    /// Source node for this generation: the only thing that ever runs the
    /// encoder on a serving path.
    node: Box<dyn Scheme>,
    /// Pre-encoded symbols, oldest first.
    symbols: VecDeque<EncodedPacket>,
    /// Sequence number of `symbols.front()`.
    base_seq: u64,
    rng: SmallRng,
}

impl GenerationCache {
    /// Returns the symbol at `seq`, clamped forward past the eviction
    /// horizon and extended by one freshly encoded symbol when the cursor
    /// is at the head. `None` only if the encoder refuses to produce.
    fn symbol(
        &mut self,
        seq: u64,
        capacity: usize,
        stats: &StoreStats,
        tracer: &Tracer,
        object: u64,
        generation: u32,
    ) -> Option<(u64, EncodedPacket)> {
        let seq = seq.max(self.base_seq);
        let offset = (seq - self.base_seq) as usize;
        if offset < self.symbols.len() {
            stats.hits.fetch_add(1, Ordering::Relaxed);
            tracer.emit(|| TraceEvent::StoreHit { object, generation });
            return Some((seq, self.symbols[offset].clone()));
        }
        // Cursor at (or, after a race on a shrunk ring, past) the head:
        // encode one fresh symbol for the head position.
        stats.misses.fetch_add(1, Ordering::Relaxed);
        tracer.emit(|| TraceEvent::StoreMiss { object, generation });
        let packet = self.node.make_packet(&mut self.rng)?;
        let seq = self.base_seq + self.symbols.len() as u64;
        self.symbols.push_back(packet.clone());
        if self.symbols.len() > capacity {
            self.symbols.pop_front();
            self.base_seq += 1;
            stats.evictions.fetch_add(1, Ordering::Relaxed);
            tracer.emit(|| TraceEvent::StoreEvicted { object, generation });
        }
        Some((seq, packet))
    }
}

/// A registered object: its manifest and one warm cache per generation.
struct StoredObject {
    manifest: ObjectManifest,
    generations: Vec<Mutex<GenerationCache>>,
}

#[derive(Default)]
struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Cache hit/miss accounting of an [`ObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Symbol requests served from the warm ring without coding work.
    pub hits: u64,
    /// Symbol requests that ran the encoder.
    pub misses: u64,
    /// Symbols evicted to keep a ring at capacity.
    pub evictions: u64,
}

/// Thread-safe store of registered objects with per-generation warm
/// symbol caches. Shared between every session of a [`crate::Server`].
pub struct ObjectStore {
    objects: RwLock<HashMap<u64, Arc<StoredObject>>>,
    cache_capacity: usize,
    /// Replica identity salt mixed into every generation encoder's RNG
    /// seed, so distinct replicas of the same object emit distinct symbol
    /// streams (see [`crate::ServeOptions::replica_salt`]).
    salt: u64,
    stats: StoreStats,
    /// Emits `StoreHit`/`StoreMiss`/`StoreEvicted` events; disabled
    /// tracers cost one branch per symbol request.
    tracer: Tracer,
}

impl ObjectStore {
    /// An empty store whose warm rings hold at most `cache_capacity`
    /// symbols per generation, with the default (salt `0`) replica
    /// identity.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidOption`] when `cache_capacity` is zero or
    /// absurd (see [`crate::options::bounds`]).
    pub fn new(cache_capacity: usize) -> Result<Self, ServeError> {
        ObjectStore::with_salt(cache_capacity, 0)
    }

    /// An empty store with an explicit replica identity salt.
    ///
    /// # Errors
    ///
    /// Same as [`ObjectStore::new`].
    pub fn with_salt(cache_capacity: usize, salt: u64) -> Result<Self, ServeError> {
        ObjectStore::with_salt_traced(cache_capacity, salt, Tracer::off())
    }

    /// An empty store that additionally emits `StoreHit`/`StoreMiss`/
    /// `StoreEvicted` trace events through `tracer`.
    ///
    /// # Errors
    ///
    /// Same as [`ObjectStore::new`].
    pub fn with_salt_traced(
        cache_capacity: usize,
        salt: u64,
        tracer: Tracer,
    ) -> Result<Self, ServeError> {
        let max = crate::options::bounds::MAX_CACHE_CAPACITY;
        if cache_capacity == 0 || cache_capacity > max {
            return Err(ServeError::InvalidOption {
                name: "warm_cache_capacity",
                value: cache_capacity as u64,
                min: 1,
                max: max as u64,
            });
        }
        Ok(ObjectStore {
            objects: RwLock::new(HashMap::new()),
            cache_capacity,
            salt,
            stats: StoreStats::default(),
            tracer,
        })
    }

    /// Registers `object` under `id`, chunking it into generations and
    /// building one source encoder per generation. Encoding work only
    /// happens later, on cache misses.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateObject`] when `id` is taken;
    /// [`ServeError::BadDimensions`] when `params` is degenerate.
    pub fn register(
        &self,
        id: u64,
        object: &[u8],
        params: SchemeParams,
    ) -> Result<ObjectManifest, ServeError> {
        if params.code_length == 0 || params.payload_size == 0 {
            return Err(ServeError::BadDimensions {
                code_length: params.code_length,
                payload_size: params.payload_size,
            });
        }
        // Cheap duplicate probe before the O(object) chunking below; the
        // insert re-checks under the write lock to close the race.
        if self.objects.read().expect("store lock poisoned").contains_key(&id) {
            return Err(ServeError::DuplicateObject(id));
        }
        let (manifest, generations) = split_object(object, params);
        let caches = generations
            .iter()
            .enumerate()
            .map(|(gen_index, natives)| {
                Mutex::new(GenerationCache {
                    node: params.source_node(natives),
                    symbols: VecDeque::new(),
                    base_seq: 0,
                    rng: SmallRng::seed_from_u64(
                        id ^ ((gen_index as u64) << 32)
                            ^ 0x5EED
                            ^ self.salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                })
            })
            .collect();
        let stored = Arc::new(StoredObject { manifest, generations: caches });
        let mut objects = self.objects.write().expect("store lock poisoned");
        if objects.contains_key(&id) {
            return Err(ServeError::DuplicateObject(id));
        }
        objects.insert(id, stored);
        Ok(manifest)
    }

    /// The manifest of a registered object, if any.
    #[must_use]
    pub fn manifest(&self, id: u64) -> Option<ObjectManifest> {
        self.objects.read().expect("store lock poisoned").get(&id).map(|o| o.manifest)
    }

    /// Number of registered objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.read().expect("store lock poisoned").len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The warm-cache symbol at sequence `seq` of `(id, gen_index)`: the
    /// cached symbol when retained (hit), a freshly encoded one when the
    /// cursor is at or past the head (miss). Returns the *actual*
    /// sequence served so the caller can resume at `actual + 1`: it
    /// jumps forward past evictions, and jumps *backward* to the head
    /// when `seq` points beyond the newest symbol (replica-salted
    /// sessions start with cursors offset into a ring that may not have
    /// grown that far yet — the cursor self-heals on first use).
    ///
    /// `None` for unknown objects, out-of-range generations, or an
    /// encoder that refuses to produce.
    #[must_use]
    pub fn symbol(&self, id: u64, gen_index: u32, seq: u64) -> Option<(u64, EncodedPacket)> {
        let stored = self.objects.read().expect("store lock poisoned").get(&id).cloned()?;
        let cache = stored.generations.get(gen_index as usize)?;
        let symbol = cache.lock().expect("cache lock poisoned").symbol(
            seq,
            self.cache_capacity,
            &self.stats,
            &self.tracer,
            id,
            gen_index,
        );
        symbol
    }

    /// Snapshot of the hit/miss/eviction counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_scheme::SchemeKind;

    fn store_with_object(capacity: usize, kind: SchemeKind) -> (ObjectStore, ObjectManifest) {
        let store = ObjectStore::new(capacity).expect("valid capacity");
        let object: Vec<u8> = (0..200u32).map(|i| (i * 31 % 256) as u8).collect();
        let manifest =
            store.register(9, &object, SchemeParams::new(kind, 8, 16)).expect("register");
        (store, manifest)
    }

    #[test]
    fn zero_capacity_is_an_error() {
        assert!(matches!(ObjectStore::new(0), Err(ServeError::InvalidOption { .. })));
    }

    #[test]
    fn duplicate_registration_is_an_error() {
        let (store, _) = store_with_object(16, SchemeKind::Rlnc);
        let err = store.register(9, &[1, 2, 3], SchemeParams::new(SchemeKind::Rlnc, 4, 2));
        assert!(matches!(err, Err(ServeError::DuplicateObject(9))));
    }

    #[test]
    fn degenerate_dimensions_are_an_error() {
        let store = ObjectStore::new(4).expect("valid");
        let err = store.register(1, &[1], SchemeParams::new(SchemeKind::Ltnc, 0, 4));
        assert!(matches!(err, Err(ServeError::BadDimensions { .. })));
    }

    #[test]
    fn repeated_sequences_hit_the_cache() {
        let (store, _) = store_with_object(32, SchemeKind::Rlnc);
        // First pass over seqs 0..10 encodes (misses); second pass hits.
        for seq in 0..10 {
            let (actual, _) = store.symbol(9, 0, seq).expect("symbol");
            assert_eq!(actual, seq);
        }
        let after_first = store.cache_stats();
        assert_eq!(after_first.misses, 10);
        assert_eq!(after_first.hits, 0);
        for seq in 0..10 {
            let (_, _) = store.symbol(9, 0, seq).expect("symbol");
        }
        let after_second = store.cache_stats();
        assert_eq!(after_second.misses, 10, "second pass must not re-encode");
        assert_eq!(after_second.hits, 10);
    }

    #[test]
    fn capacity_evicts_oldest_and_clamps_stale_cursors() {
        let (store, _) = store_with_object(4, SchemeKind::Rlnc);
        for seq in 0..8 {
            store.symbol(9, 0, seq).expect("symbol");
        }
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.evictions, 4, "ring of 4 kept, 4 evicted");
        // A cursor behind the horizon is clamped forward, not an error.
        let (actual, _) = store.symbol(9, 0, 0).expect("symbol");
        assert_eq!(actual, 4, "oldest retained symbol");
        assert_eq!(store.cache_stats().hits, 1);
    }

    #[test]
    fn identical_sequence_numbers_serve_identical_symbols() {
        let (store, _) = store_with_object(16, SchemeKind::Ltnc);
        let (s1, p1) = store.symbol(9, 1, 0).expect("symbol");
        let (s2, p2) = store.symbol(9, 1, 0).expect("symbol");
        assert_eq!(s1, s2);
        assert_eq!(p1, p2, "two clients at the same cursor share one encode");
    }

    #[test]
    fn distinct_salts_encode_distinct_symbol_streams() {
        // Two replicas of the same object with different salts must not
        // hand a striped client identical (duplicate-rank) prefixes.
        let object: Vec<u8> = (0..200u32).map(|i| (i * 31 % 256) as u8).collect();
        let params = SchemeParams::new(SchemeKind::Rlnc, 8, 16);
        let streams: Vec<Vec<_>> = [1u64, 2]
            .iter()
            .map(|&salt| {
                let store = ObjectStore::with_salt(16, salt).expect("store");
                store.register(9, &object, params).expect("register");
                (0..8).map(|seq| store.symbol(9, 0, seq).expect("symbol").1).collect()
            })
            .collect();
        assert_ne!(streams[0], streams[1], "salted replicas must diverge");
    }

    #[test]
    fn unknown_object_or_generation_is_none() {
        let (store, manifest) = store_with_object(16, SchemeKind::Wc);
        assert!(store.symbol(404, 0, 0).is_none());
        assert!(store.symbol(9, manifest.generation_count() + 5, 0).is_none());
    }
}
