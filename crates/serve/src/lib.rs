//! TCP edge-cache serving of rateless-coded objects.
//!
//! The UDP layer (`ltnc-net`) gossips an object through a swarm of peers.
//! This crate covers the complementary workload of *Caching at the Edge
//! with LT codes*: one warm cache serving many concurrent, short-lived
//! client sessions over TCP, each pulling one object coded with any
//! [`ltnc_scheme::Scheme`]. Three layers:
//!
//! * the **stream binding** reuses the sans-io envelope codec of
//!   `ltnc-net` over TCP via [`ltnc_net::stream::FrameReassembler`] — the
//!   wire protocol (including the `DATA-HEADER` → `ACCEPT`/`ABORT` →
//!   `DATA-PAYLOAD` handshake) is byte-identical to the datagram path,
//!   plus the `REQUEST`/`MANIFEST`/`REJECT` handshake that opens a
//!   serving session;
//! * the [`store`] keeps registered objects chunked into generations
//!   (shared with UDP via `ltnc-session`) behind a bounded **warm cache**
//!   of pre-encoded symbols per generation, so a popular object is
//!   encoded once and *served* many times (capacity-evicted,
//!   hit/miss-counted);
//! * the [`server`] runs a thread-pooled accept loop with per-connection
//!   session state machines and graceful shutdown, and the [`client`]
//!   fetches an object by id and verifies bit-exact reassembly — built on
//!   a per-generation fetch primitive ([`client::ReplicaConn`]);
//! * the [`striped`] client pulls one object from **several replicas at
//!   once**: generations are lease-partitioned across servers, the
//!   streams merge into one shared decoder (duplicate rank is discarded —
//!   rateless union), and a replica that dies or stalls has its
//!   outstanding leases re-assigned to the survivors.
//!
//! The structure is runtime-agnostic on purpose (blocking I/O behind
//! small state machines, like `PeerNode`): porting to an async runtime
//! changes the outer loops, not the protocol or the store.
//!
//! Every layer is instrumented through `ltnc-telemetry`: the server
//! emits session/connection/store trace events
//! ([`Server::spawn_traced`]) and can expose its live counters on a TCP
//! scrape endpoint ([`ServeOptions::metrics_bind`]); the striped client
//! traces failovers and lease migrations ([`fetch_striped_traced`]).
//! See `docs/OBSERVABILITY.md` for the event catalog and metric names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod error;
pub mod options;
pub mod server;
pub mod store;
pub mod striped;

pub use client::{fetch, ClientOptions, FetchReport, ReplicaConn};
pub use error::ServeError;
pub use options::ServeOptions;
pub use server::Server;
pub use store::ObjectStore;
pub use striped::{fetch_striped, fetch_striped_traced, StripedOptions, StripedReport};
