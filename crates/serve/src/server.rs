//! The TCP content server: thread-pooled accept loop, per-connection
//! session state machines, graceful shutdown.
//!
//! Concurrency model (deliberately the same shape as `ltnc_net`'s
//! `PeerNode`, and async-ready for the same reason): blocking sockets
//! with short read timeouts behind small state machines, no runtime. One
//! accept thread hands connections to a fixed pool of worker threads
//! through a bounded queue — a full queue *refuses* the connection
//! instead of buffering without bound, the serving-side analogue of the
//! peer actor's inbound backpressure.
//!
//! A session speaks the envelope protocol over the stream binding:
//!
//! ```text
//! client                                server
//!   REQUEST (object id, scheme)  ──▶
//!        ◀──  MANIFEST (len, k, m)          — or REJECT
//!        ◀──  DATA-HEADER (offer)           — warm-cache symbol
//!   FEEDBACK-ACCEPT / ABORT      ──▶
//!        ◀──  DATA-PAYLOAD                  — accepted offers only
//!   COMPLETE (generation)        ──▶        — prunes that generation
//!   COMPLETE (object)            ──▶        — ends the session
//! ```
//!
//! Offers are pipelined up to the per-session in-flight budget so the
//! header-first handshake does not serialize on round trips.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use ltnc_gf2::EncodedPacket;
use ltnc_metrics::{LogHistogram, ServeCounters};
use ltnc_net::envelope::{
    self, EnvelopeHeader, Message, MessageKind, TraceContext, GENERATION_OBJECT,
};
use ltnc_net::stream::FrameReassembler;
use ltnc_scheme::SchemeParams;
use ltnc_session::generation::ObjectManifest;
use ltnc_telemetry::{
    serve_samples, HistogramSample, MetricsRegistry, ScrapeOptions, ScrapeServer, TraceEvent,
    TraceSink, Tracer,
};

use crate::store::ObjectStore;
use crate::{ServeError, ServeOptions};

/// Atomic mirror of the session-level [`ServeCounters`] fields, shared by
/// every worker. Cache counters live in the store and are merged into
/// snapshots.
#[derive(Default)]
struct ServeStats {
    sessions_accepted: AtomicU64,
    sessions_rejected: AtomicU64,
    sessions_completed: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    transfers_offered: AtomicU64,
    transfers_aborted: AtomicU64,
    transfers_delivered: AtomicU64,
    /// Wall-clock duration of each finished session in microseconds
    /// (from accepted connection to close, whatever the outcome) —
    /// served live as a `session_micros` histogram on the scrape
    /// endpoint.
    session_micros: LogHistogram,
}

/// Handle to a running edge-cache server.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    store: Arc<ObjectStore>,
    stats: Arc<ServeStats>,
    scrape: Option<ScrapeServer>,
}

impl Server {
    /// Binds a TCP listener on `bind` (port 0 for ephemeral) and spawns
    /// the accept loop plus `options.workers` session workers. Objects
    /// can be [`Server::register`]ed before or after spawning.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidOption`] for out-of-bounds options,
    /// [`ServeError::Io`] for socket failures.
    pub fn spawn(bind: SocketAddr, options: ServeOptions) -> Result<Server, ServeError> {
        Server::spawn_traced(bind, options, None)
    }

    /// Like [`Server::spawn`], but additionally emits structured trace
    /// events (session lifecycle, store hits/misses/evictions, connection
    /// open/close) into `trace` when one is given.
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use ltnc_serve::{Server, ServeOptions};
    /// use ltnc_telemetry::RingSink;
    ///
    /// let sink = Arc::new(RingSink::new(4096));
    /// let options = ServeOptions {
    ///     metrics_bind: Some("127.0.0.1:0".parse().unwrap()),
    ///     ..ServeOptions::default()
    /// };
    /// let server = Server::spawn_traced(
    ///     "127.0.0.1:0".parse().unwrap(),
    ///     options,
    ///     Some(sink.clone()),
    /// ).unwrap();
    /// println!("scrape at http://{}/metrics", server.metrics_addr().unwrap());
    /// let _events = sink.events();
    /// let _ = server.shutdown();
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`Server::spawn`]; a metrics bind failure is
    /// [`ServeError::Io`].
    pub fn spawn_traced(
        bind: SocketAddr,
        options: ServeOptions,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> Result<Server, ServeError> {
        options.validate()?;
        let tracer = Tracer::from_option(trace);
        let store = Arc::new(ObjectStore::with_salt_traced(
            options.warm_cache_capacity,
            options.replica_salt,
            tracer.clone(),
        )?);
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServeStats::default());
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(options.accept_backlog);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers = (0..options.workers)
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let tracer = tracer.clone();
                thread::spawn(move || {
                    worker_loop(&conn_rx, &store, &stats, &stop, options, &tracer)
                })
            })
            .collect();

        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            thread::spawn(move || accept_loop(&listener, &conn_tx, &stats, &stop))
        };

        let scrape = match options.metrics_bind {
            Some(addr) => {
                let registry = Arc::new(MetricsRegistry::new());
                let server_label = [("server", local_addr.to_string())];
                let hist_stats = Arc::clone(&stats);
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                registry.register("serve", &server_label, move || {
                    serve_samples(&snapshot(&store, &stats))
                });
                registry.register_histograms("serve", &server_label, move || {
                    let snapshot = hist_stats.session_micros.snapshot();
                    if snapshot.is_empty() {
                        Vec::new()
                    } else {
                        vec![HistogramSample::plain("session_micros", snapshot)]
                    }
                });
                Some(ScrapeServer::spawn(addr, registry, ScrapeOptions::default())?)
            }
            None => None,
        };

        Ok(Server { local_addr, stop, accept_thread, workers, store, stats, scrape })
    }

    /// The address clients connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of the telemetry scrape endpoint, when
    /// [`ServeOptions::metrics_bind`] requested one.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::local_addr)
    }

    /// Registers an object for serving under `id`. Live: sessions opened
    /// after this call can fetch it immediately.
    ///
    /// # Errors
    ///
    /// See [`ObjectStore::register`].
    pub fn register(
        &self,
        id: u64,
        object: &[u8],
        params: SchemeParams,
    ) -> Result<ObjectManifest, ServeError> {
        self.store.register(id, object, params)
    }

    /// Snapshot of the server's counters (sessions, wire bytes, feedback
    /// outcomes, warm-cache hits/misses).
    #[must_use]
    pub fn counters(&self) -> ServeCounters {
        snapshot(&self.store, &self.stats)
    }

    /// Graceful shutdown: stops accepting, lets workers notice within one
    /// read timeout, joins every thread and returns the final counters.
    ///
    /// # Panics
    ///
    /// Panics if an internal thread panicked.
    #[must_use]
    pub fn shutdown(self) -> ServeCounters {
        let Server { local_addr: _, stop, accept_thread, workers, store, stats, scrape } = self;
        if let Some(scrape) = scrape {
            scrape.shutdown();
        }
        stop.store(true, Ordering::Release);
        // Joining the accept thread drops the connection sender, which
        // unblocks any worker idling in recv_timeout.
        accept_thread.join().expect("accept thread panicked");
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        snapshot(&store, &stats)
    }
}

fn snapshot(store: &ObjectStore, stats: &ServeStats) -> ServeCounters {
    let cache = store.cache_stats();
    ServeCounters {
        sessions_accepted: stats.sessions_accepted.load(Ordering::Relaxed),
        sessions_rejected: stats.sessions_rejected.load(Ordering::Relaxed),
        sessions_completed: stats.sessions_completed.load(Ordering::Relaxed),
        bytes_out: stats.bytes_out.load(Ordering::Relaxed),
        bytes_in: stats.bytes_in.load(Ordering::Relaxed),
        transfers_offered: stats.transfers_offered.load(Ordering::Relaxed),
        transfers_aborted: stats.transfers_aborted.load(Ordering::Relaxed),
        transfers_delivered: stats.transfers_delivered.load(Ordering::Relaxed),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
    }
}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<TcpStream>,
    stats: &ServeStats,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => match conn_tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(refused)) => {
                    // Bounded handoff: at capacity the connection is
                    // refused outright (dropping closes it) and counted,
                    // instead of queueing without bound.
                    stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                    drop(refused);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failures (per-connection resets) must
                // not kill the listener.
            }
        }
    }
}

fn worker_loop(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    store: &Arc<ObjectStore>,
    stats: &ServeStats,
    stop: &AtomicBool,
    options: ServeOptions,
    tracer: &Tracer,
) {
    loop {
        // Hold the lock only for the dequeue; recv_timeout returns
        // immediately when a connection is queued, and the timeout bounds
        // how long an idle worker keeps the other idles waiting.
        let next = {
            let rx = conn_rx.lock().expect("connection queue lock poisoned");
            rx.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => {
                // A broken individual connection must not take the worker
                // down; the error already ended that session.
                let _ = serve_connection(stream, store, stats, stop, options, tracer);
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Server side of one client session.
struct Session {
    object_id: u64,
    manifest: ObjectManifest,
    /// Warm-cache cursor per generation (next sequence number to offer).
    cursors: Vec<u64>,
    /// Generations the client declared complete.
    done: Vec<bool>,
    done_count: usize,
    /// Round-robin pointer over generations for offer scheduling.
    next_gen: usize,
    /// Offers awaiting feedback: transfer id → (generation, offer-time
    /// trace context, packet). The payload echoes the offer's trace, so
    /// the client-measured latency spans the whole offer→delivery round.
    pending: HashMap<u64, (u32, TraceContext, EncodedPacket)>,
    next_transfer: u64,
}

impl Session {
    fn new(object_id: u64, manifest: ObjectManifest, options: &ServeOptions) -> Session {
        let generations = manifest.generation_count() as usize;
        // Replica-salted initial cursors: sessions on a salted replica
        // start partway into each warm ring instead of at its oldest
        // symbol, so two replicas whose rings are both warm serve
        // different symbol prefixes to a striped client (the store clamps
        // and self-heals any offset that outruns the ring).
        let cursors = (0..generations)
            .map(|gen_index| {
                if options.replica_salt == 0 {
                    0
                } else {
                    splitmix64(options.replica_salt ^ (gen_index as u64))
                        % options.warm_cache_capacity as u64
                }
            })
            .collect();
        Session {
            object_id,
            manifest,
            cursors,
            done: vec![false; generations],
            done_count: 0,
            next_gen: 0,
            pending: HashMap::new(),
            next_transfer: 1,
        }
    }

    fn header(&self, kind: MessageKind, generation: u32) -> EnvelopeHeader {
        EnvelopeHeader {
            kind,
            scheme: self.manifest.params.kind,
            session: self.object_id,
            generation,
        }
    }

    fn mark_done(&mut self, generation: u32) {
        if let Some(done) = self.done.get_mut(generation as usize) {
            if !*done {
                *done = true;
                self.done_count += 1;
            }
        }
    }
}

/// SplitMix64 finalizer: spreads a replica salt into per-generation
/// cursor offsets with no correlation between adjacent generations.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-connection wire plumbing: the socket, the reassembler and the
/// byte counters, so session logic sends frames without repeating the
/// accounting.
struct Connection<'a> {
    stream: TcpStream,
    reassembler: FrameReassembler,
    stats: &'a ServeStats,
    tracer: &'a Tracer,
}

impl Connection<'_> {
    fn send(&mut self, header: &EnvelopeHeader, message: &Message) -> Result<(), ServeError> {
        let bytes = envelope::encode(header, message);
        self.stream.write_all(&bytes)?;
        self.stats.bytes_out.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// How long a session keeps draining after shutdown is requested, so a
/// final `COMPLETE` already in flight still lands in the counters while a
/// hung client cannot stall shutdown.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(200);

fn serve_connection(
    stream: TcpStream,
    store: &Arc<ObjectStore>,
    stats: &ServeStats,
    stop: &AtomicBool,
    options: ServeOptions,
    tracer: &Tracer,
) -> Result<(), ServeError> {
    let peer = stream.peer_addr().ok();
    tracer.emit(|| TraceEvent::ConnectionOpened { peer });
    let started = std::time::Instant::now();
    let result = run_session(stream, store, stats, stop, options, tracer);
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.session_micros.record(micros);
    tracer.emit(|| TraceEvent::ConnectionClosed { peer });
    result
}

/// The session loop of one accepted connection (split out so
/// [`serve_connection`] can bracket every exit path with open/close
/// trace events).
fn run_session(
    stream: TcpStream,
    store: &Arc<ObjectStore>,
    stats: &ServeStats,
    stop: &AtomicBool,
    options: ServeOptions,
    tracer: &Tracer,
) -> Result<(), ServeError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(options.read_timeout))?;
    let mut conn = Connection { stream, reassembler: FrameReassembler::new(), stats, tracer };
    let mut session: Option<Session> = None;
    let mut buf = vec![0u8; 16 * 1024];
    let mut stop_seen: Option<std::time::Instant> = None;
    let mut last_inbound = std::time::Instant::now();

    loop {
        if stop.load(Ordering::Acquire) {
            let seen = stop_seen.get_or_insert_with(std::time::Instant::now);
            if seen.elapsed() > SHUTDOWN_GRACE {
                return Ok(());
            }
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => return Err(ServeError::Disconnected),
            Ok(n) => {
                stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                conn.reassembler.extend(&buf[..n]);
                last_inbound = std::time::Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A silent client must not pin this worker forever: with
                // `workers` such sockets the whole pool would starve.
                if last_inbound.elapsed() > options.idle_timeout {
                    return Err(ServeError::TimedOut);
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }

        while let Some(frame) = conn.reassembler.next_frame()? {
            if handle_frame(
                &frame.header,
                frame.message,
                &mut session,
                &mut conn,
                store,
                stats,
                &options,
            )? {
                return Ok(()); // session finished cleanly
            }
        }

        if let Some(session) = session.as_mut() {
            pump_offers(session, &mut conn, store, stats, options.per_session_inflight)?;
        }
    }
}

/// Applies one inbound frame to the session. Returns `Ok(true)` when the
/// session is over and the connection should close.
fn handle_frame(
    header: &EnvelopeHeader,
    message: Message,
    session: &mut Option<Session>,
    conn: &mut Connection<'_>,
    store: &Arc<ObjectStore>,
    stats: &ServeStats,
    options: &ServeOptions,
) -> Result<bool, ServeError> {
    match message {
        Message::Request => {
            if session.is_some() {
                return Err(ServeError::UnexpectedMessage("second REQUEST on one session"));
            }
            let object_id = header.session;
            let manifest =
                store.manifest(object_id).filter(|manifest| manifest.params.kind == header.scheme);
            let Some(manifest) = manifest else {
                stats.sessions_rejected.fetch_add(1, Ordering::Relaxed);
                conn.tracer.emit(|| TraceEvent::SessionRejected { object: object_id });
                let reject = EnvelopeHeader {
                    kind: MessageKind::Reject,
                    scheme: header.scheme,
                    session: object_id,
                    generation: GENERATION_OBJECT,
                };
                conn.send(&reject, &Message::Reject)?;
                return Ok(true);
            };
            stats.sessions_accepted.fetch_add(1, Ordering::Relaxed);
            conn.tracer.emit(|| TraceEvent::SessionAccepted { object: object_id });
            let new = Session::new(object_id, manifest, options);
            conn.send(
                &new.header(MessageKind::Manifest, GENERATION_OBJECT),
                &Message::Manifest {
                    object_len: manifest.object_len,
                    code_length: manifest.params.code_length as u32,
                    payload_size: manifest.params.payload_size as u32,
                },
            )?;
            *session = Some(new);
            Ok(false)
        }
        Message::Feedback { transfer, accept } => {
            let Some(session) = session.as_mut() else {
                return Err(ServeError::UnexpectedMessage("FEEDBACK before REQUEST"));
            };
            let Some((generation, trace, packet)) = session.pending.remove(&transfer) else {
                return Ok(false); // feedback for an offer we no longer track
            };
            if accept {
                stats.transfers_delivered.fetch_add(1, Ordering::Relaxed);
                let header = session.header(MessageKind::DataPayload, generation);
                conn.send(&header, &Message::DataPayload { transfer, trace, packet })?;
            } else {
                stats.transfers_aborted.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false)
        }
        Message::Complete => {
            let Some(session) = session.as_mut() else {
                return Err(ServeError::UnexpectedMessage("COMPLETE before REQUEST"));
            };
            if header.generation == GENERATION_OBJECT {
                stats.sessions_completed.fetch_add(1, Ordering::Relaxed);
                let object = session.object_id;
                conn.tracer.emit(|| TraceEvent::SessionCompleted { object });
                return Ok(true);
            }
            session.mark_done(header.generation);
            Ok(false)
        }
        // A server never receives the server-side kinds or data frames.
        Message::Manifest { .. } | Message::Reject => {
            Err(ServeError::UnexpectedMessage("server-side kind from a client"))
        }
        Message::DataHeader { .. } | Message::DataPayload { .. } => {
            Err(ServeError::UnexpectedMessage("data frame from a client"))
        }
    }
}

/// Keeps the pipeline of header-first offers full, round-robin over the
/// generations the client still needs.
fn pump_offers(
    session: &mut Session,
    conn: &mut Connection<'_>,
    store: &Arc<ObjectStore>,
    stats: &ServeStats,
    inflight_budget: usize,
) -> Result<(), ServeError> {
    let generations = session.cursors.len();
    while session.pending.len() < inflight_budget && session.done_count < generations {
        // Next incomplete generation, round robin.
        let mut picked = None;
        for step in 0..generations {
            let gen_index = (session.next_gen + step) % generations;
            if !session.done[gen_index] {
                picked = Some(gen_index);
                session.next_gen = (gen_index + 1) % generations;
                break;
            }
        }
        let Some(gen_index) = picked else { return Ok(()) };
        let Some((seq, packet)) =
            store.symbol(session.object_id, gen_index as u32, session.cursors[gen_index])
        else {
            // The encoder refused (cannot happen for a source node, but a
            // spinning offer loop must not depend on that).
            session.mark_done(gen_index as u32);
            continue;
        };
        session.cursors[gen_index] = seq + 1;
        let transfer = session.next_transfer;
        session.next_transfer += 1;
        stats.transfers_offered.fetch_add(1, Ordering::Relaxed);
        let header = session.header(MessageKind::DataHeader, gen_index as u32);
        // A serving replica holds the object itself: every offer starts a
        // fresh lineage, stamped at offer time.
        let trace = TraceContext::origin_now();
        let offer = Message::DataHeader {
            transfer,
            trace,
            payload_size: packet.payload_size(),
            vector: packet.vector().clone(),
        };
        session.pending.insert(transfer, (gen_index as u32, trace, packet));
        conn.send(&header, &offer)?;
    }
    Ok(())
}
