//! Multi-server striped fetching: one object pulled from N replicas at
//! once.
//!
//! The paper's core property — *any* subset of rateless coded symbols is
//! useful — means a client fetching one object from several edge replicas
//! does not need the replicas to coordinate. This module exploits that:
//!
//! * **striping** — the object's generations are partitioned round-robin
//!   across the replicas ([`ltnc_session::LeaseTable`]); each replica
//!   stream runs the per-generation fetch primitive
//!   ([`crate::client::ReplicaConn::fetch_generations`]) over its lease
//!   only, steered by up-front per-generation `COMPLETE`s so every
//!   server's in-flight budget goes to generations this client actually
//!   wants from it;
//! * **merging** — all streams decode into one
//!   [`ltnc_session::SharedReceiver`] with per-generation locks; symbols
//!   that arrive with duplicate rank (overlapping streams after a
//!   failover) are simply discarded and counted
//!   ([`StripeCounters::duplicates_discarded`]);
//! * **failover** — each stream carries a progress watermark; a stream
//!   that disconnects, errors, or stalls past
//!   [`ClientOptions::stall_timeout`] has exactly *its* outstanding
//!   leases re-assigned (completed generations never migrate). A failed
//!   *original* stream declares its replica dead; a failed *failover*
//!   stream does not — the replica's other sessions may be healthy. Each
//!   re-lease opens a fresh session on a survivor (the survivor's
//!   original session already pruned those generations at steering time,
//!   so a new handshake is the steering-correct way to un-prune), with
//!   the open running off the coordinator thread so a stalling survivor
//!   cannot block other failovers or completion detection.
//!
//! The coordinator is a single event loop: replica opens and stream
//! terminations arrive on one channel — one slow handshake never gates
//! the others. The reference manifest is chosen by *vote*, not by
//! arrival order (a strict majority of configured replicas, or the
//! plurality once every handshake resolves), so a lone fast impostor
//! cannot hijack the fetch; streams start as soon as the vote settles.
//!
//! Replicas should run with distinct [`crate::ServeOptions::replica_salt`]
//! values so their symbol streams (and warm-ring prefixes) diverge;
//! identical replicas would still converge — rateless union tolerates
//! duplicates — just slower.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_metrics::{LogHistogramSnapshot, ReplicaCounters, StripeCounters};
use ltnc_scheme::SchemeKind;
use ltnc_session::generation::ObjectManifest;
use ltnc_session::{LeaseTable, SharedReceiver};
use ltnc_telemetry::{TraceEvent, Tracer};

use crate::client::{ClientOptions, ReplicaConn};
use crate::ServeError;

/// Upper bound on replicas a striped fetch will open.
pub const MAX_REPLICAS: usize = 64;

/// Tuning of one striped fetch.
#[derive(Debug, Clone, Copy)]
pub struct StripedOptions {
    /// Per-stream options (deadline, connect timeout, stall watermark).
    /// The overall fetch deadline is `client.timeout` as well.
    pub client: ClientOptions,
    /// Total stream failures tolerated before the fetch gives up with
    /// [`ServeError::AllReplicasFailed`]. Bounds flapping: a replica that
    /// keeps accepting connections and then stalling could otherwise eat
    /// the whole deadline in re-lease cycles. Replicas dead at connect
    /// time do not count against this budget.
    pub max_failovers: usize,
}

impl Default for StripedOptions {
    fn default() -> Self {
        StripedOptions { client: ClientOptions::default(), max_failovers: 8 }
    }
}

/// Outcome of a successful striped fetch.
#[derive(Debug)]
pub struct StripedReport {
    /// The reassembled object, length-verified against the manifest.
    pub object: Vec<u8>,
    /// The manifest every replica agreed on.
    pub manifest: ObjectManifest,
    /// Per-replica and failover accounting.
    pub stripe: StripeCounters,
    /// Wall-clock time from first connect to reassembly.
    pub elapsed: Duration,
    /// Origin→delivery latency (wire-carried trace context) merged over
    /// every stream of the fetch, failover streams included.
    pub latency: LogHistogramSnapshot,
}

/// Everything the coordinator reacts to, on one channel.
enum Event {
    /// A replica's handshake resolved (boxed: a `ReplicaConn` carries
    /// its framing buffers, far larger than a stream event).
    Opened(usize, Box<Result<(ReplicaConn, ObjectManifest), ServeError>>),
    /// A fetch stream terminated (boxed: carries a full latency
    /// snapshot).
    Stream(Box<StreamEvent>),
}

/// Marker error of [`Coordinator::migrate`]: outstanding leases had no
/// replica to move to. Carries no cause on purpose (see `migrate` docs).
struct NoSurvivors;

/// One stream's terminal report back to the coordinator.
struct StreamEvent {
    replica: usize,
    /// The exact generations this stream was responsible for (failover
    /// migrates these, and only these).
    lease: Vec<u32>,
    /// `true` for a re-lease session opened after a failover; its failure
    /// does not declare the whole replica dead.
    failover: bool,
    result: Result<(), ServeError>,
    counters: ReplicaCounters,
    latency: LogHistogramSnapshot,
}

/// Coordinator state while the fetch is live.
struct Coordinator {
    addrs: Vec<SocketAddr>,
    object_id: u64,
    scheme: SchemeKind,
    options: StripedOptions,
    stripe: StripeCounters,
    manifest: Option<ObjectManifest>,
    receiver: Option<Arc<SharedReceiver>>,
    leases: Option<LeaseTable>,
    /// A replica is alive until its connect/handshake or *original*
    /// stream fails.
    alive: Vec<bool>,
    /// Whether a replica's original stream has been spawned (a later
    /// re-lease to an unspawned replica just lands in its initial lease).
    spawned: Vec<bool>,
    /// Open-phase failures awaiting re-homing until the manifest (and
    /// thus the lease table) exists.
    deferred_orphans: Vec<usize>,
    /// Successful handshakes buffered until the manifest adoption vote
    /// resolves (see [`Coordinator::try_adopt`]).
    pending_conns: Vec<(usize, ReplicaConn, ObjectManifest)>,
    stream_failures: usize,
    last_error: Option<ServeError>,
    /// Running merge of every terminated stream's latency distribution.
    latency: LogHistogramSnapshot,
    event_tx: mpsc::Sender<Event>,
    outstanding_streams: usize,
    pending_opens: usize,
    /// Emits `ReplicaFailover`/`LeaseReassigned` events on the failover
    /// path; [`Tracer::off`] for untraced fetches.
    tracer: Tracer,
}

/// Fetches `object_id` under `scheme` from every replica in `addrs` at
/// once, striping generations across them and failing over when replicas
/// die or stall. Completes as long as the *union* of live replicas can
/// supply every generation.
///
/// # Errors
///
/// [`ServeError::InvalidOption`] for an empty or oversized replica list,
/// [`ServeError::AllReplicasFailed`] when no replica survives (or the
/// failover budget runs out), [`ServeError::Corrupt`] when replicas
/// disagree on the manifest in a way that leaves none usable or the
/// reassembled object fails verification, [`ServeError::TimedOut`] past
/// the deadline, plus transport errors when every connect fails.
pub fn fetch_striped(
    addrs: &[SocketAddr],
    object_id: u64,
    scheme: SchemeKind,
    options: &StripedOptions,
) -> Result<StripedReport, ServeError> {
    fetch_striped_traced(addrs, object_id, scheme, options, Tracer::off())
}

/// Like [`fetch_striped`], but emits `ReplicaFailover` and
/// `LeaseReassigned` trace events through `tracer` as the coordinator
/// declares replicas dead and migrates their outstanding generation
/// leases.
///
/// # Errors
///
/// Same as [`fetch_striped`].
pub fn fetch_striped_traced(
    addrs: &[SocketAddr],
    object_id: u64,
    scheme: SchemeKind,
    options: &StripedOptions,
    tracer: Tracer,
) -> Result<StripedReport, ServeError> {
    if addrs.is_empty() || addrs.len() > MAX_REPLICAS {
        return Err(ServeError::InvalidOption {
            name: "replicas",
            value: addrs.len() as u64,
            min: 1,
            max: MAX_REPLICAS as u64,
        });
    }
    let started = Instant::now();
    let deadline = started + options.client.timeout;

    let (event_tx, event_rx) = mpsc::channel::<Event>();
    let mut coordinator = Coordinator {
        addrs: addrs.to_vec(),
        object_id,
        scheme,
        options: *options,
        stripe: StripeCounters::new(addrs.len()),
        manifest: None,
        receiver: None,
        leases: None,
        alive: vec![true; addrs.len()],
        spawned: vec![false; addrs.len()],
        deferred_orphans: Vec::new(),
        pending_conns: Vec::new(),
        stream_failures: 0,
        last_error: None,
        latency: LogHistogramSnapshot::empty(),
        event_tx: event_tx.clone(),
        outstanding_streams: 0,
        pending_opens: addrs.len(),
        tracer,
    };

    // Parallel opens, funneled into the coordinator's event loop: streams
    // start the moment their replica's handshake lands.
    for (replica, addr) in addrs.iter().enumerate() {
        let event_tx = event_tx.clone();
        let addr = *addr;
        let client = options.client;
        thread::spawn(move || {
            let result = ReplicaConn::open(addr, object_id, scheme, &client);
            let _ = event_tx.send(Event::Opened(replica, Box::new(result)));
        });
    }

    // Event loop: handshakes and stream terminations, until the object
    // completes or nothing can still deliver it.
    while coordinator.pending_opens > 0 || coordinator.outstanding_streams > 0 {
        if coordinator.receiver.as_ref().is_some_and(|r| r.is_complete()) {
            break;
        }
        if Instant::now() > deadline {
            return Err(ServeError::TimedOut);
        }
        // Short waits: the receiver can complete while every stream is
        // still mid-drain, and completion must be noticed promptly, not
        // on the next stream event.
        let wait =
            deadline.saturating_duration_since(Instant::now()).min(Duration::from_millis(10));
        let event = match event_rx.recv_timeout(wait) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() > deadline {
                    return Err(ServeError::TimedOut);
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        coordinator.handle(event)?;
    }

    let Some(receiver) = coordinator.receiver.as_ref() else {
        // No replica ever handed over a manifest.
        return Err(coordinator
            .last_error
            .unwrap_or(ServeError::AllReplicasFailed { replicas: addrs.len(), cause: None }));
    };
    if !receiver.is_complete() {
        return Err(ServeError::AllReplicasFailed {
            replicas: addrs.len(),
            cause: coordinator.last_error.take().map(Box::new),
        });
    }

    // Streams still running exit within one read-timeout cycle once their
    // generations are complete; give them a moment so their counters make
    // the report, but never block completion on a wedged socket.
    let drain_deadline = Instant::now() + Duration::from_millis(500);
    while coordinator.outstanding_streams > 0 && Instant::now() < drain_deadline {
        match event_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Event::Stream(event)) => {
                coordinator.outstanding_streams -= 1;
                coordinator.latency.merge(&event.latency);
                let slot = &mut coordinator.stripe.replicas[event.replica];
                slot.merge(&event.counters);
                slot.failed |= event.result.is_err();
            }
            Ok(Event::Opened(_, result)) => {
                coordinator.pending_opens = coordinator.pending_opens.saturating_sub(1);
                drop(result); // a late handshake has nothing left to serve
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    let receiver = coordinator.receiver.expect("checked above");
    let manifest = coordinator.manifest.expect("manifest set with receiver");
    let object =
        receiver.reassemble().ok_or(ServeError::Corrupt("reassembly failed after completion"))?;
    if object.len() as u64 != manifest.object_len {
        return Err(ServeError::Corrupt("reassembled length != manifest"));
    }
    Ok(StripedReport {
        object,
        manifest,
        stripe: coordinator.stripe,
        elapsed: started.elapsed(),
        latency: coordinator.latency,
    })
}

impl Coordinator {
    /// Applies one event. `Err` aborts the whole fetch.
    fn handle(&mut self, event: Event) -> Result<(), ServeError> {
        match event {
            Event::Opened(replica, outcome) => {
                self.pending_opens -= 1;
                match *outcome {
                    Ok((conn, declared)) => match self.manifest {
                        Some(reference) if declared != reference => self.impostor(replica),
                        Some(_) => self.spawn_primary(replica, conn),
                        None => {
                            // No reference yet: buffer until a manifest wins
                            // the adoption vote. First-handshake-wins would
                            // let a fast misconfigured replica become the
                            // reference and disqualify every correct one.
                            self.pending_conns.push((replica, conn, declared));
                            self.try_adopt();
                        }
                    },
                    Err(e) => {
                        self.stripe.replicas[replica].failed = true;
                        self.last_error = Some(e);
                        self.replica_dead_at_open(replica);
                        // One fewer voter; a buffered plurality may now
                        // decide.
                        self.try_adopt();
                    }
                }
            }
            Event::Stream(event) => {
                self.outstanding_streams -= 1;
                self.latency.merge(&event.latency);
                self.stripe.replicas[event.replica].merge(&event.counters);
                self.release_completed();
                if let Err(stream_error) = event.result {
                    self.last_error = Some(stream_error);
                    self.stripe.replicas[event.replica].failed = true;
                    self.stripe.failovers += 1;
                    self.stream_failures += 1;
                    if !event.failover {
                        // The replica's one original session died; stop
                        // routing leases to it.
                        self.alive[event.replica] = false;
                        let replica = event.replica as u64;
                        self.tracer.emit(|| TraceEvent::ReplicaFailover { replica });
                    }
                    if self.stream_failures > self.options.max_failovers {
                        return Err(self.give_up());
                    }
                    if self.migrate(&event.lease, event.replica).is_err() {
                        return Err(self.give_up());
                    }
                }
            }
        }
        Ok(())
    }

    /// Marks a replica whose manifest disagrees with the adopted
    /// reference and re-homes its leases.
    fn impostor(&mut self, replica: usize) {
        self.stripe.replicas[replica].failed = true;
        self.last_error = Some(ServeError::Corrupt("replicas disagree on the object manifest"));
        self.replica_dead_at_open(replica);
    }

    /// Starts a replica's original fetch stream over its current lease.
    fn spawn_primary(&mut self, replica: usize, conn: ReplicaConn) {
        let lease = self
            .leases
            .as_ref()
            .expect("lease table exists once a manifest is adopted")
            .leased_to(replica);
        self.spawned[replica] = true;
        spawn_stream(
            replica,
            conn,
            lease,
            Arc::clone(self.receiver.as_ref().expect("receiver with manifest")),
            self.options.client,
            self.event_tx.clone(),
        );
        self.outstanding_streams += 1;
    }

    /// Adoption vote over the buffered handshakes: a manifest is adopted
    /// as the reference once a strict majority of *all configured*
    /// replicas declare it, or — once every open has resolved — by
    /// plurality among those that answered (lowest replica index breaks
    /// ties). A lone impostor can therefore never out-race the correct
    /// replicas into becoming the reference.
    fn try_adopt(&mut self) {
        if self.manifest.is_some() || self.pending_conns.is_empty() {
            return;
        }
        let majority = self.addrs.len() / 2 + 1;
        // (votes, lowest replica index) per distinct manifest, over the
        // handful of buffered handshakes.
        let mut winner: Option<(usize, usize, ObjectManifest)> = None;
        for (replica, _, candidate) in &self.pending_conns {
            let votes = self.pending_conns.iter().filter(|(_, _, m)| m == candidate).count();
            let lowest = self
                .pending_conns
                .iter()
                .filter(|(_, _, m)| m == candidate)
                .map(|(r, _, _)| *r)
                .min()
                .unwrap_or(*replica);
            let better = match &winner {
                None => true,
                Some((best_votes, best_lowest, _)) => {
                    votes > *best_votes || (votes == *best_votes && lowest < *best_lowest)
                }
            };
            if better {
                winner = Some((votes, lowest, *candidate));
            }
        }
        let Some((votes, _, reference)) = winner else { return };
        if votes < majority && self.pending_opens > 0 {
            return; // undecided: more handshakes may still arrive
        }
        self.adopt_manifest(reference);
        for (replica, conn, declared) in std::mem::take(&mut self.pending_conns) {
            if declared == reference {
                self.spawn_primary(replica, conn);
            } else {
                self.impostor(replica);
            }
        }
    }

    /// Adopting the reference manifest: build the shared decoder and the
    /// lease table, and re-home any leases orphaned by replicas that
    /// failed before this point.
    fn adopt_manifest(&mut self, manifest: ObjectManifest) {
        self.receiver = Some(Arc::new(SharedReceiver::new(manifest)));
        self.leases = Some(LeaseTable::partition(manifest.generation_count(), self.addrs.len()));
        self.manifest = Some(manifest);
        for replica in std::mem::take(&mut self.deferred_orphans) {
            let orphaned = self.leases.as_ref().expect("lease table just built").leased_to(replica);
            // Dead-at-open replicas never owned a stream, so failures
            // here are not failovers in the budget sense; ignore the
            // unreachable no-survivor error (nothing is running yet and
            // the main loop will detect total loss).
            let _ = self.migrate(&orphaned, replica);
        }
    }

    /// A replica whose handshake failed: re-home its initial lease (or
    /// defer until a manifest exists to partition against).
    fn replica_dead_at_open(&mut self, replica: usize) {
        self.alive[replica] = false;
        self.tracer.emit(|| TraceEvent::ReplicaFailover { replica: replica as u64 });
        self.stripe.failovers += 1;
        if self.manifest.is_some() {
            let orphaned =
                self.leases.as_ref().expect("lease table exists with manifest").leased_to(replica);
            let _ = self.migrate(&orphaned, replica);
        } else {
            self.deferred_orphans.push(replica);
        }
    }

    /// Moves the outstanding generations of one failed stream to the
    /// surviving replicas, spawning re-lease sessions where the target's
    /// original stream already pruned them.
    ///
    /// `Err(NoSurvivors)` reports outstanding leases with nowhere to go;
    /// it deliberately carries no cause — `last_error` stays untouched so
    /// the caller that decides to abort can still attach it.
    fn migrate(&mut self, lease: &[u32], from: usize) -> Result<(), NoSurvivors> {
        if self.leases.is_none() {
            return Ok(());
        }
        // Prefer other live replicas; fall back on the stream's own
        // replica when it is still alive (a failover stream died but the
        // replica itself is healthy) and nobody else is left.
        let mut candidates: Vec<usize> =
            (0..self.addrs.len()).filter(|&r| self.alive[r] && r != from).collect();
        if candidates.is_empty() && self.alive[from] {
            candidates.push(from);
        }
        let moves = {
            let leases = self.leases.as_mut().expect("checked above");
            let outstanding: Vec<u32> =
                lease.iter().copied().filter(|&g| leases.owner(g).is_some()).collect();
            if outstanding.is_empty() {
                return Ok(()); // everything in the lease already completed
            }
            leases.reassign_set(&outstanding, &candidates)
        };
        if moves.is_empty() {
            return Err(NoSurvivors); // outstanding leases, nowhere to go
        }
        if self.tracer.is_enabled() {
            for &(generation, to) in &moves {
                let (from, to) = (from as u64, to as u64);
                self.tracer.emit(|| TraceEvent::LeaseReassigned { generation, from, to });
            }
        }
        self.stripe.generations_releases += moves.len() as u64;
        for &target in &candidates {
            let orphans: Vec<u32> =
                moves.iter().filter(|(_, to)| *to == target).map(|(g, _)| *g).collect();
            if orphans.is_empty() {
                continue;
            }
            if !self.spawned[target] {
                // The target's original stream has not started yet; the
                // reassignment above already put these generations in the
                // lease it will read at spawn time.
                continue;
            }
            spawn_release_stream(
                target,
                self.addrs[target],
                self.object_id,
                self.scheme,
                self.manifest.expect("manifest exists when streams run"),
                orphans,
                Arc::clone(self.receiver.as_ref().expect("receiver exists when streams run")),
                self.options.client,
                self.event_tx.clone(),
            );
            self.outstanding_streams += 1;
        }
        Ok(())
    }

    /// Completed generations can never migrate, whatever happens next.
    fn release_completed(&mut self) {
        let (Some(receiver), Some(leases), Some(manifest)) =
            (self.receiver.as_ref(), self.leases.as_mut(), self.manifest.as_ref())
        else {
            return;
        };
        for gen_index in 0..manifest.generation_count() {
            if receiver.generation_complete(gen_index) {
                leases.release(gen_index);
            }
        }
    }

    fn give_up(&mut self) -> ServeError {
        ServeError::AllReplicasFailed {
            replicas: self.addrs.len(),
            cause: self.last_error.take().map(Box::new),
        }
    }
}

/// Spawns one replica stream thread running the per-generation primitive.
fn spawn_stream(
    replica: usize,
    mut conn: ReplicaConn,
    lease: Vec<u32>,
    receiver: Arc<SharedReceiver>,
    options: ClientOptions,
    event_tx: mpsc::Sender<Event>,
) {
    thread::spawn(move || {
        let result = conn.fetch_generations(&lease, &receiver, &options).map(|_| ());
        let counters = conn.replica_counters();
        let latency = conn.latency_snapshot();
        // A send failure means the coordinator already returned; nothing
        // left to report to.
        let _ = event_tx.send(Event::Stream(Box::new(StreamEvent {
            replica,
            lease,
            failover: false,
            result,
            counters,
            latency,
        })));
    });
}

/// Spawns a failover stream: opens a fresh session to a survivor (off the
/// coordinator thread), verifies it still serves the same manifest, and
/// fetches the re-leased generations. Failures surface as a normal stream
/// event for this replica, marked `failover` so they do not declare the
/// replica itself dead.
#[allow(clippy::too_many_arguments)]
fn spawn_release_stream(
    replica: usize,
    addr: SocketAddr,
    object_id: u64,
    scheme: SchemeKind,
    expected: ObjectManifest,
    lease: Vec<u32>,
    receiver: Arc<SharedReceiver>,
    options: ClientOptions,
    event_tx: mpsc::Sender<Event>,
) {
    thread::spawn(move || {
        let (result, counters, latency) = match ReplicaConn::open(addr, object_id, scheme, &options)
        {
            Ok((mut conn, declared)) => {
                let result = if declared == expected {
                    conn.fetch_generations(&lease, &receiver, &options).map(|_| ())
                } else {
                    Err(ServeError::Corrupt("replicas disagree on the object manifest"))
                };
                (result, conn.replica_counters(), conn.latency_snapshot())
            }
            Err(e) => (Err(e), ReplicaCounters::default(), LogHistogramSnapshot::empty()),
        };
        let _ = event_tx.send(Event::Stream(Box::new(StreamEvent {
            replica,
            lease,
            failover: true,
            result,
            counters,
            latency,
        })));
    });
}
