use core::fmt;
use std::io;
use std::time::Duration;

use ltnc_net::NetError;

/// Errors of the serving subsystem (server, store and client sides).
#[derive(Debug)]
pub enum ServeError {
    /// A tuning option is outside its validated bounds.
    InvalidOption {
        /// Name of the offending option.
        name: &'static str,
        /// The rejected value.
        value: u64,
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// An object id was registered twice.
    DuplicateObject(u64),
    /// Registration with degenerate code dimensions (`k == 0 || m == 0`).
    BadDimensions {
        /// Requested code length `k`.
        code_length: usize,
        /// Requested payload size `m`.
        payload_size: usize,
    },
    /// Socket-level failure.
    Io(io::Error),
    /// The byte stream stopped framing as envelopes.
    Protocol(NetError),
    /// The server refused to serve the requested object/scheme.
    Rejected,
    /// The peer closed the connection before the session finished.
    Disconnected,
    /// The peer sent a well-formed envelope the session state machine did
    /// not expect (e.g. a payload with no pending transfer).
    UnexpectedMessage(&'static str),
    /// The fetch did not finish within the client's deadline.
    TimedOut,
    /// The server stopped advancing the client's decoder before the fetch
    /// finished: the per-stream progress watermark sat still for longer
    /// than the configured stall timeout. Distinct from [`Self::TimedOut`]
    /// so a striped client can fail over to another replica immediately
    /// instead of burning the whole fetch deadline on a stalled one.
    ReplicaLagged {
        /// How long the stream went without a rank-advancing delivery.
        stalled_for: Duration,
    },
    /// A striped fetch lost every replica (dead at connect, failed
    /// mid-stream, or the failover budget ran out) before the object
    /// completed.
    AllReplicasFailed {
        /// Number of replicas the fetch was configured with.
        replicas: usize,
        /// The last stream failure observed, so replica misconfiguration
        /// (wrong scheme, disagreeing manifests) stays distinguishable
        /// from network death.
        cause: Option<Box<ServeError>>,
    },
    /// The decoded object failed verification against the manifest.
    Corrupt(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidOption { name, value, min, max } => {
                write!(f, "option {name} = {value} outside validated bounds [{min}, {max}]")
            }
            ServeError::DuplicateObject(id) => write!(f, "object {id:#x} already registered"),
            ServeError::BadDimensions { code_length, payload_size } => {
                write!(f, "degenerate code dimensions k = {code_length}, m = {payload_size}")
            }
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Rejected => write!(f, "server rejected the request"),
            ServeError::Disconnected => write!(f, "peer disconnected mid-session"),
            ServeError::UnexpectedMessage(what) => write!(f, "unexpected message: {what}"),
            ServeError::TimedOut => write!(f, "session deadline exceeded"),
            ServeError::ReplicaLagged { stalled_for } => {
                write!(f, "replica made no decode progress for {stalled_for:?}")
            }
            ServeError::AllReplicasFailed { replicas, cause } => {
                write!(f, "all {replicas} replicas failed before the object completed")?;
                if let Some(cause) = cause {
                    write!(f, " (last error: {cause})")?;
                }
                Ok(())
            }
            ServeError::Corrupt(what) => write!(f, "reassembled object failed: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::AllReplicasFailed { cause: Some(cause), .. } => Some(&**cause),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<NetError> for ServeError {
    fn from(e: NetError) -> Self {
        ServeError::Protocol(e)
    }
}
