//! Validated tuning options of the serving subsystem.

use std::net::SocketAddr;
use std::time::Duration;

use crate::ServeError;

/// Tuning knobs of a [`crate::Server`], in the style of
/// `ltnc_net::SwarmConfig` / `NodeOptions` — but *validated*: a zero or
/// absurd value is an error at spawn time, never a panic or a silent
/// hang deep inside a session.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Pre-encoded symbols the warm cache keeps per hot generation.
    /// Should comfortably exceed the code length `k` of the objects
    /// served, so one cache pass can complete a typical client.
    pub warm_cache_capacity: usize,
    /// Transfer offers a session keeps awaiting feedback at once (the
    /// pipelining depth of the header-first handshake over TCP).
    pub per_session_inflight: usize,
    /// Worker threads consuming accepted connections.
    pub workers: usize,
    /// Accepted connections that may queue for a free worker before the
    /// accept loop starts refusing new ones.
    pub accept_backlog: usize,
    /// Socket read timeout: the cadence at which blocked sessions notice
    /// shutdown and pump fresh offers.
    pub read_timeout: Duration,
    /// A session with no inbound bytes for this long is dropped, so idle
    /// connections cannot pin worker threads indefinitely.
    pub idle_timeout: Duration,
    /// Replica identity salt. Replicas of the same object should each run
    /// with a distinct salt: it seeds the warm store's per-generation
    /// encoders (so two replicas never produce identical symbol streams)
    /// and offsets each session's initial warm-ring cursors (so two
    /// replicas with warm rings don't serve identical prefixes). Striped
    /// clients rely on this — duplicate-rank symbols across replicas are
    /// discarded work. `0` (the default) applies no offset, matching the
    /// single-server behaviour.
    pub replica_salt: u64,
    /// When set, the server binds a telemetry scrape endpoint here
    /// (port 0 for ephemeral — see `Server::metrics_addr`) serving the
    /// live `serve` counter family as Prometheus text (`/metrics`) and
    /// JSON (`/metrics.json`). `None` (the default) runs no endpoint and
    /// costs nothing.
    pub metrics_bind: Option<SocketAddr>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            warm_cache_capacity: 256,
            per_session_inflight: 8,
            workers: 4,
            accept_backlog: 64,
            read_timeout: Duration::from_millis(5),
            idle_timeout: Duration::from_secs(30),
            replica_salt: 0,
            metrics_bind: None,
        }
    }
}

/// Bounds accepted by [`ServeOptions::validate`]. Public so operators can
/// surface them in their own configuration errors.
pub mod bounds {
    /// Maximum warm-cache capacity per generation (symbols).
    pub const MAX_CACHE_CAPACITY: usize = 1 << 20;
    /// Maximum per-session in-flight budget.
    pub const MAX_INFLIGHT: usize = 4096;
    /// Maximum worker threads.
    pub const MAX_WORKERS: usize = 1024;
    /// Maximum queued-connection backlog.
    pub const MAX_BACKLOG: usize = 1 << 16;
    /// Maximum read timeout in milliseconds (a larger value would make
    /// shutdown and offer pumping pathologically slow).
    pub const MAX_READ_TIMEOUT_MS: u64 = 10_000;
    /// Maximum idle timeout in milliseconds.
    pub const MAX_IDLE_TIMEOUT_MS: u64 = 3_600_000;
}

impl ServeOptions {
    /// Checks every knob against its bounds.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidOption`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        let checks: [(&'static str, u64, u64, u64); 6] = [
            (
                "warm_cache_capacity",
                self.warm_cache_capacity as u64,
                1,
                bounds::MAX_CACHE_CAPACITY as u64,
            ),
            (
                "per_session_inflight",
                self.per_session_inflight as u64,
                1,
                bounds::MAX_INFLIGHT as u64,
            ),
            ("workers", self.workers as u64, 1, bounds::MAX_WORKERS as u64),
            ("accept_backlog", self.accept_backlog as u64, 1, bounds::MAX_BACKLOG as u64),
            (
                "read_timeout_ms",
                self.read_timeout.as_millis() as u64,
                1,
                bounds::MAX_READ_TIMEOUT_MS,
            ),
            (
                "idle_timeout_ms",
                self.idle_timeout.as_millis() as u64,
                1,
                bounds::MAX_IDLE_TIMEOUT_MS,
            ),
        ];
        for (name, value, min, max) in checks {
            if value < min || value > max {
                return Err(ServeError::InvalidOption { name, value, min, max });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeOptions::default().validate().is_ok());
    }

    #[test]
    fn zero_and_absurd_values_are_errors_not_panics() {
        let cases: [ServeOptions; 5] = [
            ServeOptions { warm_cache_capacity: 0, ..ServeOptions::default() },
            ServeOptions { per_session_inflight: 0, ..ServeOptions::default() },
            ServeOptions { workers: 0, ..ServeOptions::default() },
            ServeOptions {
                warm_cache_capacity: bounds::MAX_CACHE_CAPACITY + 1,
                ..ServeOptions::default()
            },
            ServeOptions { read_timeout: Duration::from_secs(3600), ..ServeOptions::default() },
        ];
        for options in cases {
            match options.validate() {
                Err(ServeError::InvalidOption { .. }) => {}
                other => panic!("expected InvalidOption, got {other:?}"),
            }
        }
    }
}
