//! End-to-end serving over real TCP sockets: one warm server, concurrent
//! short-lived clients, every scheme, bit-exact verification, and the
//! failure paths (unknown object, scheme mismatch, bad options) — now
//! also exercised through the deterministic fault harness
//! (`ltnc_net::faults`) instead of only clean localhost sockets.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ltnc_net::faults::{FaultPlan, FaultProxy};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{fetch, ClientOptions, ObjectStore, ServeError, ServeOptions, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pseudo_object(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

fn client_options() -> ClientOptions {
    ClientOptions { timeout: Duration::from_secs(30), ..Default::default() }
}

#[test]
fn every_scheme_serves_bit_exactly_over_tcp() {
    for scheme in SchemeKind::ALL {
        let server =
            Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
                .expect("spawn server");
        // 12 × 24 = 288 bytes per generation; 1000 bytes → 4 generations.
        let object = pseudo_object(1000, 0xA5 ^ scheme.wire_id() as u64);
        server.register(7, &object, SchemeParams::new(scheme, 12, 24)).expect("register");

        let report =
            fetch(server.local_addr(), 7, scheme, &client_options()).expect("fetch succeeds");
        assert_eq!(report.object, object, "{scheme:?}: bit-exact reassembly");
        assert_eq!(report.manifest.generation_count(), 4);
        assert!(report.wire.useful_deliveries >= 4 * 12, "{scheme:?}: rank worth of deliveries");

        let counters = server.shutdown();
        assert_eq!(counters.sessions_accepted, 1, "{scheme:?}");
        assert_eq!(counters.sessions_completed, 1, "{scheme:?}");
        assert!(counters.transfers_offered > 0, "{scheme:?}");
        assert!(counters.bytes_out > 1000, "{scheme:?}");
    }
}

#[test]
fn concurrent_clients_share_the_warm_cache() {
    let options = ServeOptions { warm_cache_capacity: 128, workers: 4, ..Default::default() };
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), options).expect("spawn");
    let object = Arc::new(pseudo_object(4096, 99));
    server.register(1, &object, SchemeParams::new(SchemeKind::Rlnc, 16, 32)).expect("register");

    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let object = Arc::clone(&object);
            thread::spawn(move || {
                let report = fetch(addr, 1, SchemeKind::Rlnc, &client_options()).expect("fetch");
                assert_eq!(report.object, *object);
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    let counters = server.shutdown();
    assert_eq!(counters.sessions_accepted, 8);
    assert_eq!(counters.sessions_completed, 8);
    // The whole point of the warm store: 8 identical fetches must not do
    // 8× the coding work.
    assert!(
        counters.cache_hits > counters.cache_misses,
        "expected a hit-dominated workload, got {counters}"
    );
}

#[test]
fn serving_survives_a_fragmented_and_delayed_stream() {
    // The clean-socket test above, retrofitted onto the fault harness:
    // both directions re-chunked into tiny fragments with per-read
    // delays. Bit-exactness must not depend on how the bytes arrive.
    for scheme in SchemeKind::ALL {
        let server =
            Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
                .expect("spawn server");
        let object = pseudo_object(1000, 0x5A ^ scheme.wire_id() as u64);
        server.register(7, &object, SchemeParams::new(scheme, 12, 24)).expect("register");

        let ragged = FaultPlan::clean(0xBAD ^ scheme.wire_id() as u64)
            .fragment_reads(7)
            .delay_reads(Duration::from_micros(200));
        let proxy = FaultProxy::spawn(server.local_addr(), ragged, ragged).expect("spawn proxy");

        let report =
            fetch(proxy.local_addr(), 7, scheme, &client_options()).expect("fetch succeeds");
        assert_eq!(report.object, object, "{scheme:?}: bit-exact through the fault proxy");
        proxy.shutdown();
        let _ = server.shutdown();
    }
}

#[test]
fn server_disconnect_mid_fetch_is_a_typed_error_not_a_hang() {
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
        .expect("spawn server");
    let object = pseudo_object(32 * 1024, 77);
    server.register(1, &object, SchemeParams::new(SchemeKind::Rlnc, 16, 64)).expect("register");

    // The server "crashes" after exactly 8 KiB of its response.
    let cut = FaultPlan::clean(1).disconnect_read_at(8 * 1024);
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::clean(2), cut).expect("proxy");
    let started = std::time::Instant::now();
    match fetch(proxy.local_addr(), 1, SchemeKind::Rlnc, &client_options()) {
        Err(ServeError::Disconnected | ServeError::Io(_)) => {}
        other => panic!("expected Disconnected, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(10), "must fail fast, not burn the deadline");
    proxy.shutdown();
    let _ = server.shutdown();
}

#[test]
fn stalled_server_surfaces_replica_lagged_not_a_blocked_fetch() {
    // Regression: a server that answers the handshake and then stops
    // making progress used to pin the client until the *overall* deadline
    // (30 s by default). The per-stream progress watermark must surface a
    // typed ReplicaLagged error after stall_timeout instead. The stall is
    // injected deterministically: the server→client direction goes mute
    // after the manifest bytes with the socket still open.
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
        .expect("spawn server");
    let object = pseudo_object(8 * 1024, 21);
    server.register(4, &object, SchemeParams::new(SchemeKind::Ltnc, 16, 64)).expect("register");

    // MANIFEST is 35 bytes (19-byte envelope + 16-byte body); withhold
    // every server byte after 40, so offers never arrive but the socket
    // stays open: progress stalls without a disconnect.
    let stall = FaultPlan::clean(4).stall_read_at(40);
    let proxy = FaultProxy::spawn(server.local_addr(), FaultPlan::clean(5), stall).expect("proxy");

    let options = ClientOptions {
        timeout: Duration::from_secs(30),
        stall_timeout: Duration::from_millis(400),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    match fetch(proxy.local_addr(), 4, SchemeKind::Ltnc, &options) {
        Err(ServeError::ReplicaLagged { stalled_for }) => {
            assert!(stalled_for >= Duration::from_millis(400));
        }
        other => panic!("expected ReplicaLagged, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "stall must be detected in ~stall_timeout, not the 30 s deadline"
    );
    proxy.shutdown();
    let _ = server.shutdown();
}

#[test]
fn unknown_object_and_scheme_mismatch_are_rejected() {
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
        .expect("spawn");
    let object = pseudo_object(256, 5);
    server.register(3, &object, SchemeParams::new(SchemeKind::Ltnc, 8, 16)).expect("register");

    // Unknown object id.
    match fetch(server.local_addr(), 404, SchemeKind::Ltnc, &client_options()) {
        Err(ServeError::Rejected) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Registered object, wrong scheme.
    match fetch(server.local_addr(), 3, SchemeKind::Wc, &client_options()) {
        Err(ServeError::Rejected) => {}
        other => panic!("expected Rejected, got {other:?}"),
    }
    let counters = server.shutdown();
    assert_eq!(counters.sessions_rejected, 2);
    assert_eq!(counters.sessions_accepted, 0);
}

#[test]
fn invalid_options_error_at_spawn_not_at_runtime() {
    let bad = ServeOptions { per_session_inflight: 0, ..Default::default() };
    match Server::spawn("127.0.0.1:0".parse().expect("valid addr"), bad) {
        Err(ServeError::InvalidOption { name, .. }) => {
            assert_eq!(name, "per_session_inflight");
        }
        other => panic!("expected InvalidOption, got {:?}", other.map(|s| s.local_addr())),
    }
}

#[test]
fn store_is_usable_standalone_for_warm_vs_cold_comparison() {
    // The bench uses the store directly; make sure that path stays public
    // and sane: a second pass over the same sequences is pure cache hits.
    let store = ObjectStore::new(64).expect("store");
    let object = pseudo_object(2048, 11);
    store.register(1, &object, SchemeParams::new(SchemeKind::Rlnc, 16, 32)).expect("register");
    for pass in 0..2 {
        for seq in 0..32 {
            let (actual, packet) = store.symbol(1, 0, seq).expect("symbol");
            assert_eq!(actual, seq, "pass {pass}");
            assert_eq!(packet.code_length(), 16);
        }
    }
    let stats = store.cache_stats();
    assert_eq!(stats.misses, 32);
    assert_eq!(stats.hits, 32);
    assert_eq!(stats.evictions, 0);
}

#[test]
fn idle_connections_cannot_starve_the_worker_pool() {
    // One worker, short idle timeout: a silent connection must be dropped
    // so a real client behind it still gets served.
    let options =
        ServeOptions { workers: 1, idle_timeout: Duration::from_millis(150), ..Default::default() };
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), options).expect("spawn");
    let object = pseudo_object(512, 21);
    server.register(1, &object, SchemeParams::new(SchemeKind::Rlnc, 8, 16)).expect("register");

    // Pin the only worker with a connection that never speaks.
    let idle = std::net::TcpStream::connect(server.local_addr()).expect("connect idle");
    let report = fetch(server.local_addr(), 1, SchemeKind::Rlnc, &client_options())
        .expect("fetch must succeed once the idle session times out");
    assert_eq!(report.object, object);
    drop(idle);
    let _ = server.shutdown();
}

#[test]
fn hostile_manifest_is_rejected_before_allocation() {
    use ltnc_net::envelope::{self, EnvelopeHeader, Message, MessageKind, GENERATION_OBJECT};
    use std::io::{Read, Write};

    // A fake "server" that answers any request with a manifest implying
    // ~2^40 generations (tiny k × m, huge object_len). The client must
    // error out instead of allocating decode state for it.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 256];
        let _ = stream.read(&mut buf).expect("read request");
        let header = EnvelopeHeader {
            kind: MessageKind::Manifest,
            scheme: SchemeKind::Rlnc,
            session: 1,
            generation: GENERATION_OBJECT,
        };
        let manifest = Message::Manifest { object_len: 1 << 40, code_length: 1, payload_size: 1 };
        stream.write_all(&envelope::encode(&header, &manifest)).expect("write manifest");
        // Hold the socket open so the client fails on the manifest, not EOF.
        thread::sleep(Duration::from_millis(500));
    });

    match fetch(addr, 1, SchemeKind::Rlnc, &client_options()) {
        Err(ServeError::Corrupt(reason)) => assert!(reason.contains("generations")),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fake.join().expect("fake server panicked");
}

#[test]
fn registering_while_serving_is_live() {
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), ServeOptions::default())
        .expect("spawn");
    // Nothing registered yet: reject.
    assert!(matches!(
        fetch(server.local_addr(), 1, SchemeKind::Wc, &client_options()),
        Err(ServeError::Rejected)
    ));
    // Register and fetch without restarting the server.
    let object = pseudo_object(512, 77);
    server.register(1, &object, SchemeParams::new(SchemeKind::Wc, 8, 16)).expect("register");
    let report = fetch(server.local_addr(), 1, SchemeKind::Wc, &client_options()).expect("fetch");
    assert_eq!(report.object, object);
    let _ = server.shutdown();
}
