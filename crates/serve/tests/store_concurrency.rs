//! `ObjectStore` under concurrent hitters: barrier-driven threads hammer
//! the warm rings while the test checks eviction order and counter
//! accounting invariants that must hold under *any* interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::ObjectStore;

fn pseudo_object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

/// Stable fingerprint of a packet for cross-thread identity comparison.
fn fingerprint(packet: &ltnc_gf2::EncodedPacket) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    };
    for index in packet.vector().iter_ones() {
        mix(index as u8);
        mix((index >> 8) as u8);
    }
    for &byte in packet.payload().as_bytes() {
        mix(byte);
    }
    hash
}

#[test]
fn concurrent_hitters_keep_counters_and_identity_consistent() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 200;
    const CAPACITY: usize = 16;
    const GENERATIONS: u32 = 2;

    let store = Arc::new(ObjectStore::new(CAPACITY).expect("store"));
    // 8 × 16 = 128 B/gen, 256 bytes → exactly 2 generations.
    store
        .register(1, &pseudo_object(256), SchemeParams::new(SchemeKind::Rlnc, 8, 16))
        .expect("register");

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                // All threads start fetching at the same instant, each
                // walking its own cursor like a real session does.
                barrier.wait();
                let mut seen: Vec<(u32, u64, u64)> = Vec::with_capacity(REQUESTS);
                let mut cursor = [0u64; GENERATIONS as usize];
                for i in 0..REQUESTS {
                    let gen_index = ((t + i) % GENERATIONS as usize) as u32;
                    let (seq, packet) =
                        store.symbol(1, gen_index, cursor[gen_index as usize]).expect("symbol");
                    assert!(
                        seq >= cursor[gen_index as usize],
                        "served sequence may only jump forward past evictions"
                    );
                    cursor[gen_index as usize] = seq + 1;
                    seen.push((gen_index, seq, fingerprint(&packet)));
                }
                seen
            })
        })
        .collect();

    let mut identity: HashMap<(u32, u64), u64> = HashMap::new();
    let mut total_requests = 0u64;
    for handle in handles {
        for (gen_index, seq, print) in handle.join().expect("hitter panicked") {
            total_requests += 1;
            // A sequence number is assigned to exactly one encoded symbol,
            // ever: two threads served (gen, seq) must have gotten the
            // same bytes (that sharing is the whole point of the store).
            if let Some(previous) = identity.insert((gen_index, seq), print) {
                assert_eq!(previous, print, "generation {gen_index} seq {seq} served twice");
            }
        }
    }

    let stats = store.cache_stats();
    // Every symbol() call counts exactly one hit or one miss.
    assert_eq!(stats.hits + stats.misses, total_requests, "accounting must not drop requests");
    // Each miss appends one symbol; a ring never exceeds capacity, so
    // everything encoded beyond capacity must have been evicted.
    let retained_max = (CAPACITY as u64) * u64::from(GENERATIONS);
    assert_eq!(
        stats.evictions,
        stats.misses.saturating_sub(retained_max),
        "eviction count must equal encodes minus retained capacity"
    );
    assert!(stats.hits > 0, "concurrent same-object hitters must share encodes");
}

#[test]
fn eviction_is_strictly_oldest_first() {
    const CAPACITY: usize = 8;
    let store = ObjectStore::new(CAPACITY).expect("store");
    store
        .register(1, &pseudo_object(128), SchemeParams::new(SchemeKind::Rlnc, 8, 16))
        .expect("register");

    // Encode 3 × capacity symbols; after each eviction the oldest
    // retained sequence must advance by exactly one.
    for seq in 0..(3 * CAPACITY as u64) {
        let (served, _) = store.symbol(1, 0, seq).expect("symbol");
        assert_eq!(served, seq, "at the head every request is a fresh encode");
        let oldest_retained = (seq + 1).saturating_sub(CAPACITY as u64);
        // A stale cursor (0) must land exactly on the oldest retained
        // symbol — evicting anything but the oldest would break this.
        let (clamped, _) = store.symbol(1, 0, 0).expect("clamped symbol");
        assert_eq!(clamped, oldest_retained, "oldest-first eviction order");
    }
    let stats = store.cache_stats();
    // Every head request was an encode; all but one ring of them evicted.
    assert_eq!(stats.misses, 3 * CAPACITY as u64);
    assert_eq!(stats.evictions, 2 * CAPACITY as u64);
}

/// Stress variant for the CI `--include-ignored` job: more threads, more
/// traffic, a tiny ring to force constant eviction churn.
#[test]
#[ignore = "stress: run via cargo test -- --include-ignored"]
fn stress_concurrent_hitters_with_eviction_churn() {
    const THREADS: usize = 16;
    const REQUESTS: usize = 2000;
    const CAPACITY: usize = 4;

    let store = Arc::new(ObjectStore::new(CAPACITY).expect("store"));
    store
        .register(1, &pseudo_object(512), SchemeParams::new(SchemeKind::Ltnc, 16, 16))
        .expect("register");
    let generations = 2u32;

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                let mut cursor = vec![0u64; generations as usize];
                for i in 0..REQUESTS {
                    let gen_index = ((t * 7 + i) % generations as usize) as u32;
                    let (seq, _) =
                        store.symbol(1, gen_index, cursor[gen_index as usize]).expect("symbol");
                    assert!(seq >= cursor[gen_index as usize]);
                    cursor[gen_index as usize] = seq + 1;
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("hitter panicked");
    }
    let stats = store.cache_stats();
    assert_eq!(stats.hits + stats.misses, (THREADS * REQUESTS) as u64);
    assert_eq!(
        stats.evictions,
        stats.misses.saturating_sub(CAPACITY as u64 * u64::from(generations))
    );
}
