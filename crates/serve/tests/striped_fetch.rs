//! Striped fetching end to end: one object pulled from three replicas
//! over real TCP, merged by rank, bit-exact for every scheme — and the
//! failure modes, driven deterministically by `ltnc_net::faults`.

use std::net::SocketAddr;
use std::time::Duration;

use ltnc_net::faults::{FaultPlan, FaultProxy};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::striped::MAX_REPLICAS;
use ltnc_serve::{fetch_striped, ClientOptions, ServeError, ServeOptions, Server, StripedOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pseudo_object(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

/// Spawns `n` replica servers all carrying `object` under `id`, each with
/// a distinct replica salt.
fn spawn_replicas(
    n: usize,
    id: u64,
    object: &[u8],
    params: SchemeParams,
    options: &ServeOptions,
) -> Vec<Server> {
    (0..n)
        .map(|replica| {
            let options = ServeOptions { replica_salt: replica as u64 + 1, ..*options };
            let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), options)
                .expect("spawn replica");
            server.register(id, object, params).expect("register");
            server
        })
        .collect()
}

fn striped_options() -> StripedOptions {
    StripedOptions {
        client: ClientOptions {
            timeout: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(5),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn three_replicas_bit_exact_for_every_scheme() {
    for scheme in SchemeKind::ALL {
        let object = pseudo_object(4096, 0x57 ^ scheme.wire_id() as u64);
        let params = SchemeParams::new(scheme, 12, 24); // 288 B/gen → 15 generations
        let servers = spawn_replicas(3, 7, &object, params, &ServeOptions::default());
        let addrs: Vec<SocketAddr> = servers.iter().map(Server::local_addr).collect();

        let report = fetch_striped(&addrs, 7, scheme, &striped_options()).expect("striped fetch");
        assert_eq!(report.object, object, "{scheme:?}: bit-exact merge");
        assert_eq!(report.stripe.failovers, 0, "{scheme:?}: clean run");
        assert_eq!(
            report.stripe.contributing_replicas(),
            3,
            "{scheme:?}: every replica must contribute useful symbols, got {}",
            report.stripe
        );
        // Disjoint leases keep redundancy low, but not zero: offers are
        // pipelined, so an accept made on in-flight state can turn
        // redundant by the time its payload lands (and LTNC's BP-based
        // header check is approximate by design). Bit-exactness above is
        // the correctness bar; this bounds the waste.
        assert!(
            report.stripe.duplicate_rate() < 0.5,
            "{scheme:?}: runaway redundancy, got {}",
            report.stripe
        );

        for server in servers {
            let counters = server.shutdown();
            assert_eq!(counters.sessions_accepted, 1, "{scheme:?}: one stream per replica");
            assert_eq!(counters.sessions_completed, 1, "{scheme:?}");
        }
    }
}

#[test]
fn killing_one_replica_mid_fetch_completes_via_failover() {
    for scheme in SchemeKind::ALL {
        let object = pseudo_object(16 * 1024, 0xDEAD ^ scheme.wire_id() as u64);
        let params = SchemeParams::new(scheme, 16, 32); // 512 B/gen → 32 generations
        let servers = spawn_replicas(3, 9, &object, params, &ServeOptions::default());

        // Replica 0 dies after exactly 4 KiB of server→client traffic:
        // enough for the MANIFEST and a prefix of its symbols, well short
        // of its ~1/3 share of a 16 KiB object.
        let cut = FaultPlan::clean(0xC0FFEE).disconnect_read_at(4096);
        let proxy = FaultProxy::spawn(servers[0].local_addr(), FaultPlan::clean(1), cut)
            .expect("spawn proxy");
        let addrs = vec![proxy.local_addr(), servers[1].local_addr(), servers[2].local_addr()];

        let options = StripedOptions {
            client: ClientOptions {
                timeout: Duration::from_secs(30),
                stall_timeout: Duration::from_millis(1500),
                ..Default::default()
            },
            ..Default::default()
        };
        let report = fetch_striped(&addrs, 9, scheme, &options)
            .expect("fetch must survive one replica death");
        assert_eq!(report.object, object, "{scheme:?}: bit-exact after failover");
        assert!(report.stripe.failovers >= 1, "{scheme:?}: the cut must register");
        assert!(report.stripe.replicas[0].failed, "{scheme:?}: replica 0 died");
        assert!(
            report.stripe.generations_releases > 0,
            "{scheme:?}: orphaned generations must migrate, got {}",
            report.stripe
        );
        proxy.shutdown();
        for server in servers {
            let _ = server.shutdown();
        }
    }
}

#[test]
fn replica_dead_at_connect_is_tolerated() {
    let object = pseudo_object(2048, 33);
    let params = SchemeParams::new(SchemeKind::Rlnc, 8, 32);
    let servers = spawn_replicas(2, 5, &object, params, &ServeOptions::default());

    // Reserve an address nobody listens on by binding and dropping.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let addrs = vec![dead, servers[0].local_addr(), servers[1].local_addr()];

    let report = fetch_striped(&addrs, 5, SchemeKind::Rlnc, &striped_options())
        .expect("two live replicas suffice");
    assert_eq!(report.object, object);
    assert!(report.stripe.replicas[0].failed);
    assert!(report.stripe.failovers >= 1);
    for server in servers {
        let _ = server.shutdown();
    }
}

#[test]
fn all_replicas_dead_is_a_typed_error() {
    let dead: Vec<SocketAddr> = (0..2)
        .map(|_| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        })
        .collect();
    let options = StripedOptions {
        client: ClientOptions {
            timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            stall_timeout: Duration::from_millis(500),
        },
        ..Default::default()
    };
    match fetch_striped(&dead, 1, SchemeKind::Ltnc, &options) {
        Err(
            ServeError::AllReplicasFailed { .. } | ServeError::Io(_) | ServeError::Disconnected,
        ) => {}
        other => panic!("expected a terminal failure, got {other:?}"),
    }
}

#[test]
fn empty_and_oversized_replica_lists_are_invalid_options() {
    match fetch_striped(&[], 1, SchemeKind::Wc, &StripedOptions::default()) {
        Err(ServeError::InvalidOption { name, .. }) => assert_eq!(name, "replicas"),
        other => panic!("expected InvalidOption, got {other:?}"),
    }
    let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
    let too_many = vec![addr; MAX_REPLICAS + 1];
    assert!(matches!(
        fetch_striped(&too_many, 1, SchemeKind::Wc, &StripedOptions::default()),
        Err(ServeError::InvalidOption { .. })
    ));
}

#[test]
fn single_replica_striping_degenerates_to_a_plain_fetch() {
    let object = pseudo_object(3000, 44);
    let params = SchemeParams::new(SchemeKind::Ltnc, 10, 20);
    let servers = spawn_replicas(1, 2, &object, params, &ServeOptions::default());
    let report = fetch_striped(&[servers[0].local_addr()], 2, SchemeKind::Ltnc, &striped_options())
        .expect("single-replica stripe");
    assert_eq!(report.object, object);
    assert_eq!(report.stripe.failovers, 0);
    assert_eq!(report.stripe.contributing_replicas(), 1);
    let _ = servers.into_iter().next().map(Server::shutdown);
}

#[test]
fn a_replica_serving_a_different_object_is_dropped_not_merged() {
    // Same id, different content/params on replica 1: its manifest
    // disagrees, so it must be excluded and the fetch served by the rest.
    let object = pseudo_object(2048, 55);
    let params = SchemeParams::new(SchemeKind::Rlnc, 8, 32);
    let good = spawn_replicas(2, 3, &object, params, &ServeOptions::default());
    let impostor = Server::spawn(
        "127.0.0.1:0".parse().expect("addr"),
        ServeOptions { replica_salt: 99, ..Default::default() },
    )
    .expect("spawn impostor");
    impostor
        .register(3, &pseudo_object(4096, 56), SchemeParams::new(SchemeKind::Rlnc, 16, 16))
        .expect("register impostor");

    let addrs = vec![good[0].local_addr(), impostor.local_addr(), good[1].local_addr()];
    let report = fetch_striped(&addrs, 3, SchemeKind::Rlnc, &striped_options())
        .expect("good replicas carry the fetch");
    assert_eq!(report.object, object);
    assert!(report.stripe.replicas[1].failed, "impostor must be marked failed");
    let _ = impostor.shutdown();
    for server in good {
        let _ = server.shutdown();
    }
}

/// Stress variant for the CI `--include-ignored` job: a bigger object,
/// every scheme, a slow replica (delayed, not dead) plus a hard kill, all
/// from one fixed seed (override with `LTNC_FAULT_SEED`).
#[test]
#[ignore = "stress: run via cargo test -- --include-ignored"]
fn stress_striped_fetch_under_delay_and_kill() {
    let seed =
        std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64);
    for scheme in SchemeKind::ALL {
        let object = pseudo_object(64 * 1024, seed ^ scheme.wire_id() as u64);
        let params = SchemeParams::new(scheme, 16, 64); // 1 KiB/gen → 64 generations
        let servers = spawn_replicas(3, 11, &object, params, &ServeOptions::default());

        // Replica 0: dies at 16 KiB. Replica 1: alive but slow (2 ms per
        // read) and fragmented. Replica 2: clean.
        let kill = FaultPlan::clean(seed).disconnect_read_at(16 * 1024);
        let slow =
            FaultPlan::clean(seed ^ 1).delay_reads(Duration::from_millis(2)).fragment_reads(512);
        let proxy0 =
            FaultProxy::spawn(servers[0].local_addr(), FaultPlan::clean(2), kill).expect("proxy 0");
        let proxy1 =
            FaultProxy::spawn(servers[1].local_addr(), FaultPlan::clean(3), slow).expect("proxy 1");
        let addrs = vec![proxy0.local_addr(), proxy1.local_addr(), servers[2].local_addr()];

        let options = StripedOptions {
            client: ClientOptions {
                timeout: Duration::from_secs(60),
                stall_timeout: Duration::from_secs(3),
                ..Default::default()
            },
            ..Default::default()
        };
        let report = fetch_striped(&addrs, 11, scheme, &options).expect("stress fetch completes");
        assert_eq!(report.object, object, "{scheme:?}: bit-exact under adversity");
        assert!(report.stripe.failovers >= 1, "{scheme:?}");
        proxy0.shutdown();
        proxy1.shutdown();
        for server in servers {
            let _ = server.shutdown();
        }
    }
}
