//! Scrape-endpoint coverage: concurrent scrapes during an active fetch
//! stay consistent, hostile scrape clients cannot stall the endpoint,
//! and traced servers/striped fetches emit the advertised events.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{
    fetch, fetch_striped_traced, ClientOptions, ServeOptions, Server, StripedOptions,
};
use ltnc_telemetry::{RingSink, TraceEvent, Tracer};

const OBJECT_LEN: usize = 24 * 1024;

fn test_object() -> Vec<u8> {
    (0..OBJECT_LEN).map(|i| (i * 131 % 251) as u8).collect()
}

fn spawn_metrics_server(options: ServeOptions) -> Server {
    let options =
        ServeOptions { metrics_bind: Some("127.0.0.1:0".parse().expect("addr")), ..options };
    let server = Server::spawn("127.0.0.1:0".parse().expect("addr"), options).expect("spawn");
    server
        .register(7, &test_object(), SchemeParams::new(SchemeKind::Rlnc, 16, 64))
        .expect("register");
    server
}

/// One raw HTTP exchange against the scrape endpoint.
fn http_get(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// Parses `ltnc_serve_<name>{...} value` lines out of a scrape body.
fn parse_serve_counters(body: &str) -> HashMap<String, u64> {
    let mut counters = HashMap::new();
    for line in body.lines() {
        if !line.starts_with("ltnc_serve_") {
            continue;
        }
        let Some((metric, value)) = line.rsplit_once(' ') else { continue };
        let name = metric.split('{').next().unwrap_or(metric).to_string();
        if let Ok(value) = value.parse::<u64>() {
            counters.insert(name, value);
        }
    }
    counters
}

#[test]
fn concurrent_scrapes_during_an_active_fetch_stay_monotonic() {
    let server = spawn_metrics_server(ServeOptions::default());
    let serve_addr = server.local_addr();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint requested");

    // Scrapers hammer the endpoint while the fetch below is in flight;
    // every counter they observe must be monotone non-decreasing.
    let scrapers: Vec<_> = (0..2)
        .map(|_| {
            thread::spawn(move || {
                let mut last: HashMap<String, u64> = HashMap::new();
                let deadline = Instant::now() + Duration::from_secs(5);
                let mut scrapes = 0u32;
                while Instant::now() < deadline && scrapes < 40 {
                    let body = http_get(metrics_addr, "GET /metrics HTTP/1.0\r\n\r\n");
                    assert!(body.starts_with("HTTP/1.0 200"), "scrape failed: {body}");
                    let counters = parse_serve_counters(&body);
                    for (name, &value) in &counters {
                        if let Some(&prev) = last.get(name) {
                            assert!(
                                value >= prev,
                                "{name} went backwards mid-fetch: {prev} -> {value}"
                            );
                        }
                    }
                    last = counters;
                    scrapes += 1;
                }
                last
            })
        })
        .collect();

    let report = fetch(serve_addr, 7, SchemeKind::Rlnc, &ClientOptions::default()).expect("fetch");
    assert_eq!(report.object, test_object());

    for scraper in scrapers {
        let last = scraper.join().expect("scraper panicked");
        assert!(!last.is_empty(), "scraper never saw a serve sample");
    }

    // After the fetch, the cumulative view must reflect it.
    let body = http_get(metrics_addr, "GET /metrics HTTP/1.0\r\n\r\n");
    let counters = parse_serve_counters(&body);
    assert!(counters["ltnc_serve_sessions_accepted"] >= 1);
    assert!(counters["ltnc_serve_sessions_completed"] >= 1);
    assert!(counters["ltnc_serve_transfers_delivered"] >= 1);
    assert!(counters["ltnc_serve_bytes_out"] > 0);
    let _ = server.shutdown();
}

#[test]
fn json_scrape_carries_the_server_label() {
    let server = spawn_metrics_server(ServeOptions::default());
    let metrics_addr = server.metrics_addr().expect("metrics endpoint requested");
    let body = http_get(metrics_addr, "GET /metrics.json HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(body.starts_with("HTTP/1.0 200"));
    assert!(body.contains("\"family\":\"serve\""));
    assert!(body.contains(&format!("\"server\":\"{}\"", server.local_addr())));
    let _ = server.shutdown();
}

#[test]
fn malformed_and_slow_scrape_clients_cannot_stall_the_endpoint() {
    let server = spawn_metrics_server(ServeOptions::default());
    let metrics_addr = server.metrics_addr().expect("metrics endpoint requested");

    // A malformed request is rejected, not hung on.
    let bad = http_get(metrics_addr, "NONSENSE / FTP/9\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.0 400"), "malformed request got: {bad}");

    // A client that connects and never sends a request is cut at the
    // read deadline; the next well-formed scrape still answers.
    let silent = TcpStream::connect(metrics_addr).expect("connect");
    let started = Instant::now();
    let ok = http_get(metrics_addr, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.0 200"));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a silent client stalled the endpoint for {:?}",
        started.elapsed()
    );
    drop(silent);
    let _ = server.shutdown();
}

#[test]
fn traced_server_emits_session_store_and_connection_events() {
    let sink = Arc::new(RingSink::new(65_536));
    let server = Server::spawn_traced(
        "127.0.0.1:0".parse().expect("addr"),
        ServeOptions::default(),
        Some(sink.clone() as _),
    )
    .expect("spawn");
    server
        .register(7, &test_object(), SchemeParams::new(SchemeKind::Rlnc, 16, 64))
        .expect("register");

    let report =
        fetch(server.local_addr(), 7, SchemeKind::Rlnc, &ClientOptions::default()).expect("fetch");
    assert_eq!(report.object.len(), OBJECT_LEN);
    // An unknown object exercises the reject path too.
    let rejected = fetch(server.local_addr(), 404, SchemeKind::Rlnc, &ClientOptions::default());
    assert!(rejected.is_err());
    let _ = server.shutdown();

    let events = sink.drain();
    let has = |name: &str| events.iter().any(|timed| timed.event.name() == name);
    for expected in [
        "connection_opened",
        "connection_closed",
        "session_accepted",
        "session_rejected",
        "session_completed",
        "store_miss",
    ] {
        assert!(has(expected), "no {expected} event in {} events", events.len());
    }
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "event timestamps must be monotone");
    // The accepted session is for object 7, the rejected one for 404.
    assert!(events.iter().any(|t| matches!(t.event, TraceEvent::SessionAccepted { object: 7 })));
    assert!(events.iter().any(|t| matches!(t.event, TraceEvent::SessionRejected { object: 404 })));
}

#[test]
fn traced_striped_fetch_emits_failover_and_lease_events() {
    let object = test_object();
    let params = SchemeParams::new(SchemeKind::Rlnc, 16, 64);
    let servers: Vec<Server> = (0..2)
        .map(|replica| {
            let options = ServeOptions { replica_salt: replica + 1, ..ServeOptions::default() };
            let server =
                Server::spawn("127.0.0.1:0".parse().expect("addr"), options).expect("spawn");
            server.register(7, &object, params).expect("register");
            server
        })
        .collect();

    // A third "replica" that refuses connections: bind, note the port,
    // drop the listener before the fetch dials it.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let mut addrs: Vec<SocketAddr> = servers.iter().map(Server::local_addr).collect();
    addrs.push(dead_addr);

    let sink = Arc::new(RingSink::new(65_536));
    let report = fetch_striped_traced(
        &addrs,
        7,
        SchemeKind::Rlnc,
        &StripedOptions::default(),
        Tracer::new(sink.clone()),
    )
    .expect("striped fetch survives one dead replica");
    assert_eq!(report.object, object);
    for server in servers {
        let _ = server.shutdown();
    }

    let events = sink.drain();
    assert!(
        events.iter().any(|t| matches!(t.event, TraceEvent::ReplicaFailover { replica: 2 })),
        "the dead replica must be declared failed"
    );
    let reassigned: Vec<_> = events
        .iter()
        .filter_map(|t| match t.event {
            TraceEvent::LeaseReassigned { generation, from, to } => Some((generation, from, to)),
            _ => None,
        })
        .collect();
    assert!(!reassigned.is_empty(), "the dead replica's leases must migrate");
    assert!(reassigned.iter().all(|&(_, from, to)| from == 2 && to < 2));
}
