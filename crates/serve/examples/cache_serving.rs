//! Edge-cache serving demo: one warm TCP server, many short-lived
//! clients, zipf-ish object popularity — the workload of *Caching at the
//! Edge with LT codes* run over real sockets for each scheme (WC, LTNC,
//! RLNC), reporting per-scheme throughput and warm-cache hit rates.
//!
//! ```text
//! cargo run --release -p ltnc-serve --example cache_serving
//! cargo run --release -p ltnc-serve --example cache_serving -- \
//!     --objects 4 --clients 24 --size 65536 --k 32 --m 256 --scheme ltnc
//! cargo run --release -p ltnc-serve --example cache_serving -- \
//!     --smoke --metrics 127.0.0.1:9620 --report run.json
//! ```
//!
//! `--smoke` is the CI configuration: one small object, 3 clients, all
//! three schemes, a few seconds end to end. `--metrics ADDR` exposes a
//! live scrape endpoint carrying all four counter families (`serve`,
//! `wire`, `stripe`, `hop`) for the whole run; `--report PATH` writes a
//! JSON run report; `--linger SECS` keeps the metrics endpoint alive
//! after the run so an external scraper can collect the final state.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ltnc_metrics::{
    HopCounters, HopStats, LogHistogramSnapshot, ReplicaCounters, ServeCounters, StripeCounters,
    WireCounters,
};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{fetch, ClientOptions, ServeOptions, Server};
use ltnc_telemetry::json::JsonValue;
use ltnc_telemetry::{
    hop_samples, serve_samples, stripe_samples, wire_samples, MetricsRegistry, ScrapeOptions,
    ScrapeServer,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG seeds of the run: object contents and client
/// popularity draws. Logged at startup so a surprising run replays.
const OBJECT_SEED: u64 = 0xCAFE;
const CLIENT_SEED: u64 = 0xC11E;

struct Args {
    objects: usize,
    clients: usize,
    size: usize,
    k: usize,
    m: usize,
    cache: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
    metrics: Option<SocketAddr>,
    report: Option<String>,
    linger_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        objects: 3,
        clients: 12,
        size: 24 * 1024,
        k: 16,
        m: 64,
        cache: 256,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 60,
        metrics: None,
        report: None,
        linger_secs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--objects" => {
                args.objects =
                    value("--objects")?.parse().map_err(|e| format!("--objects: {e}"))?;
            }
            "--clients" => {
                args.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?;
            }
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--cache" => {
                args.cache = value("--cache")?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--timeout" => {
                args.timeout_secs =
                    value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--metrics" => {
                args.metrics =
                    Some(value("--metrics")?.parse().map_err(|e| format!("--metrics: {e}"))?);
            }
            "--report" => args.report = Some(value("--report")?),
            "--linger" => {
                args.linger_secs =
                    value("--linger")?.parse().map_err(|e| format!("--linger: {e}"))?;
            }
            "--smoke" => {
                // The CI configuration: small and fast, still end to end.
                args.objects = 1;
                args.clients = 3;
                args.size = 2048;
                args.k = 8;
                args.m = 32;
                args.cache = 64;
                args.timeout_secs = 30;
            }
            "--help" | "-h" => {
                println!(
                    "usage: cache_serving [--objects N] [--clients N] [--size BYTES] \
                     [--k K] [--m M] [--cache SYMBOLS] [--scheme wc|rlnc|ltnc] \
                     [--timeout SECS] [--metrics ADDR] [--report PATH] \
                     [--linger SECS] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic pseudo-random object for id `id`.
fn make_object(id: u64, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(OBJECT_SEED ^ id);
    let mut object = vec![0u8; len];
    rng.fill(&mut object[..]);
    object
}

/// Zipf-ish popularity: object rank r (0-based) drawn with weight
/// 1 / (r + 1).
fn pick_object(rng: &mut SmallRng, objects: usize) -> u64 {
    let weights: Vec<f64> = (0..objects).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (rank, w) in weights.iter().enumerate() {
        if draw < *w {
            return rank as u64 + 1;
        }
        draw -= w;
    }
    objects as u64
}

/// Live counter rollups feeding the run-wide scrape endpoint: one family
/// per counter struct, all monotone across schemes (each scheme's server
/// starts from zero, so the live view is `finished schemes + current`).
struct Telemetry {
    scrape: ScrapeServer,
    serve: Arc<Mutex<ServeCounters>>,
    wire: Arc<Mutex<WireCounters>>,
    stripe: Arc<Mutex<StripeCounters>>,
    hop: Arc<Mutex<HopCounters>>,
}

fn spawn_telemetry(addr: SocketAddr) -> std::io::Result<Telemetry> {
    let serve = Arc::new(Mutex::new(ServeCounters::new()));
    let wire = Arc::new(Mutex::new(WireCounters::new()));
    // The single-server fetches roll up as one replica slot; hop-distance
    // 1 models the one client-to-server hop of the serving workload.
    let stripe = Arc::new(Mutex::new(StripeCounters::new(1)));
    let hop = Arc::new(Mutex::new(HopCounters::new()));

    let registry = Arc::new(MetricsRegistry::new());
    let example = ("example", "cache_serving".to_string());
    let source = Arc::clone(&serve);
    registry.register("serve", std::slice::from_ref(&example), move || {
        serve_samples(&source.lock().expect("serve rollup lock"))
    });
    let source = Arc::clone(&wire);
    registry.register("wire", &[example.clone(), ("node", "clients".to_string())], move || {
        wire_samples(&source.lock().expect("wire rollup lock"))
    });
    let source = Arc::clone(&stripe);
    registry.register("stripe", std::slice::from_ref(&example), move || {
        stripe_samples(&source.lock().expect("stripe rollup lock"))
    });
    let source = Arc::clone(&hop);
    registry
        .register("hop", &[example], move || hop_samples(&source.lock().expect("hop rollup lock")));

    let scrape = ScrapeServer::spawn(addr, registry, ScrapeOptions::default())?;
    Ok(Telemetry { scrape, serve, wire, stripe, hop })
}

/// Per-scheme outcome row for the table and the JSON report.
struct SchemeOutcome {
    scheme: SchemeKind,
    counters: ServeCounters,
    client_wire: WireCounters,
    /// Origin→delivery latency merged over every client's fetch (the
    /// wire-carried trace context of each delivered payload).
    client_latency: LogHistogramSnapshot,
    elapsed: Duration,
    throughput_mib: f64,
}

fn run_scheme(
    scheme: SchemeKind,
    args: &Args,
    telemetry: Option<&Telemetry>,
) -> Result<SchemeOutcome, String> {
    let options =
        ServeOptions { warm_cache_capacity: args.cache, workers: 4, ..ServeOptions::default() };
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), options)
        .map_err(|e| format!("spawn: {e}"))?;
    let server = Arc::new(server);

    // Live serve sampling: while this scheme runs, the scrape endpoint
    // sees `finished schemes + this server's current counters`. The base
    // is the rollup before this scheme started; the final fold below
    // rebuilds from the same base so nothing double-counts.
    let serve_base = telemetry.map(|t| *t.serve.lock().expect("serve rollup lock"));
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = telemetry.map(|telemetry| {
        let base = serve_base.expect("base captured with telemetry");
        let live = Arc::clone(&telemetry.serve);
        let server = Arc::clone(&server);
        let stop = Arc::clone(&sampler_stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let mut merged = base;
                merged.merge(&server.counters());
                *live.lock().expect("serve rollup lock") = merged;
                thread::sleep(Duration::from_millis(25));
            }
        })
    });

    let objects: Vec<(u64, Arc<Vec<u8>>)> = (0..args.objects)
        .map(|i| (i as u64 + 1, Arc::new(make_object(i as u64 + 1, args.size))))
        .collect();
    for (id, object) in &objects {
        server
            .register(*id, object, SchemeParams::new(scheme, args.k, args.m))
            .map_err(|e| format!("register {id}: {e}"))?;
    }

    let addr = server.local_addr();
    let client_options =
        ClientOptions { timeout: Duration::from_secs(args.timeout_secs), ..Default::default() };
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let objects = objects.clone();
            let n_objects = args.objects;
            thread::spawn(move || -> Result<(WireCounters, LogHistogramSnapshot), String> {
                let mut rng = SmallRng::seed_from_u64(CLIENT_SEED + c as u64);
                let id = pick_object(&mut rng, n_objects);
                let report = fetch(addr, id, scheme, &client_options)
                    .map_err(|e| format!("client {c} (object {id}): {e}"))?;
                let expected =
                    &objects.iter().find(|(oid, _)| *oid == id).expect("registered id").1;
                if report.object != ***expected {
                    return Err(format!("client {c}: object {id} reassembled WRONG"));
                }
                Ok((report.wire, report.latency))
            })
        })
        .collect();

    let mut client_wire = WireCounters::new();
    let mut client_latency = LogHistogramSnapshot::empty();
    let mut completed_clients = 0u64;
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok((wire, latency)) => {
                client_wire.merge(&wire);
                client_latency.merge(&latency);
                completed_clients += 1;
            }
            Err(e) => failures.push(e),
        }
    }
    let elapsed = started.elapsed();

    sampler_stop.store(true, Ordering::Release);
    if let Some(sampler) = sampler {
        sampler.join().expect("sampler thread panicked");
    }
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server handle still shared"));
    let counters = server.shutdown();

    if let Some(telemetry) = telemetry {
        // Fold this scheme's final numbers into the run-wide rollups. The
        // serve total rebuilds from the pre-scheme base, replacing the
        // sampler's last (possibly stale) live view.
        {
            let mut total = serve_base.expect("base captured with telemetry");
            total.merge(&counters);
            *telemetry.serve.lock().expect("serve rollup lock") = total;
        }
        telemetry.wire.lock().expect("wire rollup lock").merge(&client_wire);
        {
            let mut stripe = telemetry.stripe.lock().expect("stripe rollup lock");
            stripe.replicas[0].merge(&ReplicaCounters {
                offers_seen: client_wire.transfers_delivered + client_wire.transfers_aborted,
                aborted: client_wire.transfers_aborted,
                delivered: client_wire.transfers_delivered,
                useful: client_wire.useful_deliveries,
                duplicates: client_wire.transfers_delivered - client_wire.useful_deliveries,
                generations_completed: 0,
                bytes_in: client_wire.bytes_received,
                bytes_out: client_wire.bytes_sent,
                failed: false,
            });
        }
        telemetry.hop.lock().expect("hop rollup lock").record(
            1,
            &HopStats {
                nodes: args.clients as u64,
                completed: completed_clients,
                recoding_ops: 0,
                decoding_ops: 0,
                useful_deliveries: client_wire.useful_deliveries,
                faults_injected: 0,
            },
        );
    }

    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    let throughput_mib =
        client_wire.bytes_received as f64 / (1 << 20) as f64 / elapsed.as_secs_f64();
    Ok(SchemeOutcome { scheme, counters, client_wire, client_latency, elapsed, throughput_mib })
}

fn outcome_row(outcome: &SchemeOutcome, clients: usize) -> String {
    let counters = &outcome.counters;
    format!(
        "{:<5} {:>8} {:>10} {:>11} {:>10} {:>9} {:>9} {:>8.1}% {:>11.2}",
        outcome.scheme.label(),
        format!("{}/{}", counters.sessions_completed, clients),
        format!("{:.2}s", outcome.elapsed.as_secs_f64()),
        counters.bytes_out,
        counters.transfers_delivered,
        counters.cache_hits,
        counters.cache_misses,
        counters.cache_hit_rate() * 100.0,
        outcome.throughput_mib,
    )
}

/// Renders the JSON run report: configuration, per-scheme rows (server
/// counters plus the client-side wire rollup), seeds.
fn render_report(args: &Args, outcomes: &[SchemeOutcome]) -> String {
    let config = JsonValue::object()
        .field("objects", args.objects)
        .field("clients", args.clients)
        .field("size", args.size)
        .field("k", args.k)
        .field("m", args.m)
        .field("cache", args.cache)
        .field("object_seed", OBJECT_SEED)
        .field("client_seed", CLIENT_SEED);
    let schemes = outcomes
        .iter()
        .map(|outcome| {
            let counters = &outcome.counters;
            let wire = &outcome.client_wire;
            let latency = &outcome.client_latency;
            JsonValue::object()
                .field("scheme", outcome.scheme.label())
                .field("elapsed_secs", outcome.elapsed.as_secs_f64())
                .field("throughput_mib_s", outcome.throughput_mib)
                .field(
                    "latency",
                    JsonValue::object()
                        .field("unit", "us")
                        .field("count", latency.count())
                        .field("mean", latency.mean())
                        .field("p50", latency.p50())
                        .field("p90", latency.p90())
                        .field("p99", latency.p99())
                        .field("max", latency.quantile(1.0)),
                )
                .field(
                    "server",
                    JsonValue::object()
                        .field("sessions_accepted", counters.sessions_accepted)
                        .field("sessions_completed", counters.sessions_completed)
                        .field("bytes_out", counters.bytes_out)
                        .field("bytes_in", counters.bytes_in)
                        .field("transfers_offered", counters.transfers_offered)
                        .field("transfers_delivered", counters.transfers_delivered)
                        .field("cache_hits", counters.cache_hits)
                        .field("cache_misses", counters.cache_misses)
                        .field("cache_evictions", counters.cache_evictions)
                        .field("cache_hit_rate", counters.cache_hit_rate()),
                )
                .field(
                    "clients",
                    JsonValue::object()
                        .field("bytes_received", wire.bytes_received)
                        .field("bytes_sent", wire.bytes_sent)
                        .field("transfers_delivered", wire.transfers_delivered)
                        .field("useful_deliveries", wire.useful_deliveries)
                        .field("transfers_aborted", wire.transfers_aborted),
                )
        })
        .collect();
    JsonValue::object()
        .field("schema_version", ltnc_telemetry::json::REPORT_SCHEMA_VERSION)
        .field("example", "cache_serving")
        .field("config", config)
        .field("schemes", JsonValue::array(schemes))
        .render()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving {} object(s) of {} B (k = {}, m = {}, cache = {} symbols/gen) \
         to {} clients per scheme",
        args.objects, args.size, args.k, args.m, args.cache, args.clients,
    );
    println!("deterministic seeds: objects {OBJECT_SEED:#x}, client popularity {CLIENT_SEED:#x}\n");

    let telemetry = match args.metrics {
        Some(addr) => match spawn_telemetry(addr) {
            Ok(telemetry) => {
                println!("metrics endpoint: http://{}/metrics\n", telemetry.scrape.local_addr());
                Some(telemetry)
            }
            Err(e) => {
                eprintln!("error: binding metrics endpoint {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "{:<5} {:>8} {:>10} {:>11} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "sch", "done", "time", "bytes-out", "delivered", "hits", "misses", "hit-rate", "MiB/s"
    );

    let mut all_ok = true;
    let mut outcomes = Vec::new();
    for scheme in args.schemes.clone() {
        match run_scheme(scheme, &args, telemetry.as_ref()) {
            Ok(outcome) => {
                println!("{}", outcome_row(&outcome, args.clients));
                outcomes.push(outcome);
            }
            Err(e) => {
                eprintln!("{}: FAILED: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    if let Some(path) = &args.report {
        let report = render_report(&args, &outcomes);
        if let Err(e) = std::fs::write(path, report + "\n") {
            eprintln!("error: writing report {path}: {e}");
            all_ok = false;
        } else {
            println!("\nreport written to {path}");
        }
    }

    if let Some(telemetry) = telemetry {
        if args.linger_secs > 0 {
            println!(
                "lingering {}s for scrapers at http://{}/metrics",
                args.linger_secs,
                telemetry.scrape.local_addr()
            );
            thread::sleep(Duration::from_secs(args.linger_secs));
        }
        telemetry.scrape.shutdown();
    }

    if all_ok {
        println!("\nall schemes served every client bit-exactly");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome serving runs failed");
        ExitCode::FAILURE
    }
}
