//! Edge-cache serving demo: one warm TCP server, many short-lived
//! clients, zipf-ish object popularity — the workload of *Caching at the
//! Edge with LT codes* run over real sockets for each scheme (WC, LTNC,
//! RLNC), reporting per-scheme throughput and warm-cache hit rates.
//!
//! ```text
//! cargo run --release -p ltnc-serve --example cache_serving
//! cargo run --release -p ltnc-serve --example cache_serving -- \
//!     --objects 4 --clients 24 --size 65536 --k 32 --m 256 --scheme ltnc
//! cargo run --release -p ltnc-serve --example cache_serving -- --smoke
//! ```
//!
//! `--smoke` is the CI configuration: one small object, 3 clients, all
//! three schemes, a few seconds end to end.

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{fetch, ClientOptions, ServeOptions, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    objects: usize,
    clients: usize,
    size: usize,
    k: usize,
    m: usize,
    cache: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        objects: 3,
        clients: 12,
        size: 24 * 1024,
        k: 16,
        m: 64,
        cache: 256,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 60,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--objects" => {
                args.objects =
                    value("--objects")?.parse().map_err(|e| format!("--objects: {e}"))?;
            }
            "--clients" => {
                args.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?;
            }
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--cache" => {
                args.cache = value("--cache")?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--timeout" => {
                args.timeout_secs =
                    value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--smoke" => {
                // The CI configuration: small and fast, still end to end.
                args.objects = 1;
                args.clients = 3;
                args.size = 2048;
                args.k = 8;
                args.m = 32;
                args.cache = 64;
                args.timeout_secs = 30;
            }
            "--help" | "-h" => {
                println!(
                    "usage: cache_serving [--objects N] [--clients N] [--size BYTES] \
                     [--k K] [--m M] [--cache SYMBOLS] [--scheme wc|rlnc|ltnc] \
                     [--timeout SECS] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Deterministic pseudo-random object for id `id`.
fn make_object(id: u64, len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(0xCAFE ^ id);
    let mut object = vec![0u8; len];
    rng.fill(&mut object[..]);
    object
}

/// Zipf-ish popularity: object rank r (0-based) drawn with weight
/// 1 / (r + 1).
fn pick_object(rng: &mut SmallRng, objects: usize) -> u64 {
    let weights: Vec<f64> = (0..objects).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (rank, w) in weights.iter().enumerate() {
        if draw < *w {
            return rank as u64 + 1;
        }
        draw -= w;
    }
    objects as u64
}

fn run_scheme(scheme: SchemeKind, args: &Args) -> Result<String, String> {
    let options =
        ServeOptions { warm_cache_capacity: args.cache, workers: 4, ..ServeOptions::default() };
    let server = Server::spawn("127.0.0.1:0".parse().expect("valid addr"), options)
        .map_err(|e| format!("spawn: {e}"))?;

    let objects: Vec<(u64, Arc<Vec<u8>>)> = (0..args.objects)
        .map(|i| (i as u64 + 1, Arc::new(make_object(i as u64 + 1, args.size))))
        .collect();
    for (id, object) in &objects {
        server
            .register(*id, object, SchemeParams::new(scheme, args.k, args.m))
            .map_err(|e| format!("register {id}: {e}"))?;
    }

    let addr = server.local_addr();
    let client_options =
        ClientOptions { timeout: Duration::from_secs(args.timeout_secs), ..Default::default() };
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let objects = objects.clone();
            let n_objects = args.objects;
            thread::spawn(move || -> Result<u64, String> {
                let mut rng = SmallRng::seed_from_u64(0xC11E + c as u64);
                let id = pick_object(&mut rng, n_objects);
                let report = fetch(addr, id, scheme, &client_options)
                    .map_err(|e| format!("client {c} (object {id}): {e}"))?;
                let expected =
                    &objects.iter().find(|(oid, _)| *oid == id).expect("registered id").1;
                if report.object != ***expected {
                    return Err(format!("client {c}: object {id} reassembled WRONG"));
                }
                Ok(report.wire.bytes_received)
            })
        })
        .collect();

    let mut bytes_received = 0u64;
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(bytes) => bytes_received += bytes,
            Err(e) => failures.push(e),
        }
    }
    let elapsed = started.elapsed();
    let counters = server.shutdown();

    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    let throughput_mib = bytes_received as f64 / (1 << 20) as f64 / elapsed.as_secs_f64();
    Ok(format!(
        "{:<5} {:>8} {:>10} {:>11} {:>10} {:>9} {:>9} {:>8.1}% {:>11.2}",
        scheme.label(),
        format!("{}/{}", counters.sessions_completed, args.clients),
        format!("{:.2}s", elapsed.as_secs_f64()),
        counters.bytes_out,
        counters.transfers_delivered,
        counters.cache_hits,
        counters.cache_misses,
        counters.cache_hit_rate() * 100.0,
        throughput_mib,
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving {} object(s) of {} B (k = {}, m = {}, cache = {} symbols/gen) \
         to {} clients per scheme\n",
        args.objects, args.size, args.k, args.m, args.cache, args.clients,
    );
    println!(
        "{:<5} {:>8} {:>10} {:>11} {:>10} {:>9} {:>9} {:>9} {:>11}",
        "sch", "done", "time", "bytes-out", "delivered", "hits", "misses", "hit-rate", "MiB/s"
    );

    let mut all_ok = true;
    for scheme in args.schemes.clone() {
        match run_scheme(scheme, &args) {
            Ok(row) => println!("{row}"),
            Err(e) => {
                eprintln!("{}: FAILED: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    if all_ok {
        println!("\nall schemes served every client bit-exactly");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome serving runs failed");
        ExitCode::FAILURE
    }
}
