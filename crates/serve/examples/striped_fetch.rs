//! Striped fetching demo: one object pulled from N replica servers at
//! once, with optional deterministic replica kills.
//!
//! Spawns `--servers` local edge-cache replicas (each with a distinct
//! replica salt), registers the same object on all of them, then compares
//! a single-server fetch against the striped fetch for each scheme,
//! printing per-replica symbol counts, duplicates discarded and failover
//! accounting.
//!
//! ```text
//! cargo run --release -p ltnc-serve --example striped_fetch
//! cargo run --release -p ltnc-serve --example striped_fetch -- \
//!     --servers 4 --size 262144 --k 32 --m 256 --scheme ltnc
//! cargo run --release -p ltnc-serve --example striped_fetch -- --kill
//! cargo run --release -p ltnc-serve --example striped_fetch -- --smoke
//! ```
//!
//! `--kill` routes replica 0 through a fault proxy that hard-disconnects
//! the server→client stream after a fixed byte budget, demonstrating
//! failover. `--smoke` is the CI configuration: small object, 3 replicas,
//! all schemes, one clean pass and one `--kill` pass.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use ltnc_net::faults::{FaultPlan, FaultProxy};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{fetch, fetch_striped, ClientOptions, ServeOptions, Server, StripedOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    servers: usize,
    size: usize,
    k: usize,
    m: usize,
    cache: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
    kill: bool,
    kill_at: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        servers: 3,
        size: 96 * 1024,
        k: 16,
        m: 64,
        cache: 256,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 60,
        kill: false,
        kill_at: 8 * 1024,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--servers" => {
                args.servers =
                    value("--servers")?.parse().map_err(|e| format!("--servers: {e}"))?;
            }
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--cache" => {
                args.cache = value("--cache")?.parse().map_err(|e| format!("--cache: {e}"))?;
            }
            "--timeout" => {
                args.timeout_secs =
                    value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--kill" => args.kill = true,
            "--kill-at" => {
                args.kill_at =
                    value("--kill-at")?.parse().map_err(|e| format!("--kill-at: {e}"))?;
            }
            "--smoke" => {
                // The CI configuration: small and fast, still end to end.
                args.servers = 3;
                args.size = 12 * 1024;
                args.k = 8;
                args.m = 32;
                args.cache = 64;
                args.timeout_secs = 30;
                args.kill_at = 2048;
                args.smoke = true;
            }
            "--help" | "-h" => {
                println!(
                    "usage: striped_fetch [--servers N] [--size BYTES] [--k K] [--m M] \
                     [--cache SYMBOLS] [--scheme wc|rlnc|ltnc] [--timeout SECS] \
                     [--kill] [--kill-at BYTES] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn make_object(len: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(0x57121F);
    let mut object = vec![0u8; len];
    rng.fill(&mut object[..]);
    object
}

/// One measured pass: single-server fetch vs striped fetch, optional kill.
fn run_pass(args: &Args, scheme: SchemeKind, kill: bool) -> Result<(), String> {
    let object = make_object(args.size);
    let params = SchemeParams::new(scheme, args.k, args.m);
    let options = StripedOptions {
        client: ClientOptions {
            timeout: Duration::from_secs(args.timeout_secs),
            stall_timeout: Duration::from_secs(args.timeout_secs.div_ceil(10).max(2)),
            ..Default::default()
        },
        ..Default::default()
    };

    let servers: Vec<Server> = (0..args.servers)
        .map(|replica| {
            let server_options = ServeOptions {
                warm_cache_capacity: args.cache,
                replica_salt: replica as u64 + 1,
                ..Default::default()
            };
            let server = Server::spawn("127.0.0.1:0".parse().expect("addr"), server_options)
                .map_err(|e| format!("spawn replica {replica}: {e}"))?;
            server.register(1, &object, params).map_err(|e| format!("register: {e}"))?;
            Ok(server)
        })
        .collect::<Result<_, String>>()?;
    let mut addrs: Vec<SocketAddr> = servers.iter().map(Server::local_addr).collect();

    // Warm every replica's rings (and measure the single-server baseline
    // on the warm path, which is what striping should beat).
    for addr in &addrs {
        let report =
            fetch(*addr, 1, scheme, &options.client).map_err(|e| format!("warm fetch: {e}"))?;
        if report.object != object {
            return Err(format!("{scheme:?}: warm fetch not bit-exact"));
        }
    }
    let single_started = std::time::Instant::now();
    let single =
        fetch(addrs[0], 1, scheme, &options.client).map_err(|e| format!("single fetch: {e}"))?;
    let single_elapsed = single_started.elapsed();

    let proxy = if kill {
        let cut = FaultPlan::clean(0xC0FFEE).disconnect_read_at(args.kill_at);
        let proxy = FaultProxy::spawn(addrs[0], FaultPlan::clean(1), cut)
            .map_err(|e| format!("proxy: {e}"))?;
        addrs[0] = proxy.local_addr();
        Some(proxy)
    } else {
        None
    };

    let report =
        fetch_striped(&addrs, 1, scheme, &options).map_err(|e| format!("striped fetch: {e}"))?;
    if report.object != object {
        return Err(format!("{scheme:?}: striped fetch not bit-exact"));
    }
    if kill && report.stripe.failovers == 0 {
        return Err(format!("{scheme:?}: kill pass saw no failover"));
    }

    let mib = args.size as f64 / (1024.0 * 1024.0);
    let single_rate = single.wire.useful_deliveries as f64 / single_elapsed.as_secs_f64();
    let striped_rate = report.stripe.total_useful() as f64 / report.elapsed.as_secs_f64();
    println!(
        "  {:<5} {}{:.2} MiB  single {:>8.1} sym/s ({:>6.1} ms)  striped {:>8.1} sym/s \
         ({:>6.1} ms)  speedup {:.2}x",
        scheme.label(),
        if kill { "[kill] " } else { "" },
        mib,
        single_rate,
        single_elapsed.as_secs_f64() * 1e3,
        striped_rate,
        report.elapsed.as_secs_f64() * 1e3,
        striped_rate / single_rate,
    );
    println!("        stripe: {}", report.stripe);
    for (replica, counters) in report.stripe.replicas.iter().enumerate() {
        println!(
            "        replica {replica}: {} offers, {} delivered, {} useful, {} duplicate, \
             {} gens finished{}",
            counters.offers_seen,
            counters.delivered,
            counters.useful,
            counters.duplicates,
            counters.generations_completed,
            if counters.failed { "  [FAILED → re-leased]" } else { "" },
        );
    }

    if let Some(proxy) = proxy {
        proxy.shutdown();
    }
    for server in servers {
        let _ = server.shutdown();
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let generations = args.size.div_ceil(args.k * args.m);
    println!(
        "striped fetch: {} replicas, {} KiB object, k = {}, m = {} ({} generations)",
        args.servers,
        args.size / 1024,
        args.k,
        args.m,
        generations,
    );
    for &scheme in &args.schemes {
        if let Err(e) = run_pass(&args, scheme, args.kill) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        // The smoke configuration proves failover end to end as well.
        if args.smoke && !args.kill {
            if let Err(e) = run_pass(&args, scheme, true) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("OK");
    ExitCode::SUCCESS
}
