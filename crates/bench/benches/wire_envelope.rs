//! Wall-clock benchmarks of the `ltnc-net` envelope codec: full
//! encode/decode of `DATA-PAYLOAD` frames, and the header-first paths
//! (`decode_header`, `DATA-HEADER` offer decode) whose cheapness is what
//! makes the early-abort of the binary feedback channel worth having on a
//! real socket.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_net::envelope::{self, EnvelopeHeader, Message, MessageKind, TraceContext};
use ltnc_sim::SchemeKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn sample_packet(k: usize, m: usize, rng: &mut SmallRng) -> EncodedPacket {
    let mut vector = CodeVector::zero(k);
    for i in 0..k {
        if rng.gen_bool(0.3) {
            vector.set(i);
        }
    }
    if vector.is_zero() {
        vector.set(0);
    }
    let mut payload = vec![0u8; m];
    rng.fill(&mut payload[..]);
    EncodedPacket::new(vector, Payload::from_vec(payload))
}

fn header(kind: MessageKind) -> EnvelopeHeader {
    EnvelopeHeader { kind, scheme: SchemeKind::Ltnc, session: 0xBE7C, generation: 5 }
}

fn trace() -> TraceContext {
    TraceContext { origin_micros: 1_234_567, hop: 3 }
}

fn bench_payload_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope_data_payload");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &(k, m) in &[(64usize, 256usize), (512, 1024), (2048, 4096)] {
        let mut rng = SmallRng::seed_from_u64(1);
        let packet = sample_packet(k, m, &mut rng);
        let message = Message::DataPayload { transfer: 9, trace: trace(), packet };
        let env_header = header(MessageKind::DataPayload);
        let frame = envelope::encode(&env_header, &message);
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", k), &k, |b, _| {
            b.iter(|| envelope::encode(&env_header, &message))
        });
        group.bench_with_input(BenchmarkId::new("decode", k), &k, |b, _| {
            b.iter(|| envelope::decode(&frame).expect("valid frame"))
        });
    }
    group.finish();
}

fn bench_header_first_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope_header_first");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &(k, m) in &[(64usize, 256usize), (512, 1024), (2048, 4096)] {
        let mut rng = SmallRng::seed_from_u64(2);
        let packet = sample_packet(k, m, &mut rng);
        let offer = Message::DataHeader {
            transfer: 9,
            trace: trace(),
            payload_size: packet.payload_size(),
            vector: packet.vector().clone(),
        };
        let offer_frame = envelope::encode(&header(MessageKind::DataHeader), &offer);
        let payload_frame = envelope::encode(
            &header(MessageKind::DataPayload),
            &Message::DataPayload { transfer: 9, trace: trace(), packet },
        );
        // The fixed-prefix peek a session does on every datagram.
        group.bench_with_input(BenchmarkId::new("envelope_header", k), &k, |b, _| {
            b.iter(|| envelope::decode_header(&payload_frame).expect("valid header"))
        });
        // The early-abort path: decoding a DATA-HEADER offer (code vector,
        // no payload) — all a receiver pays before saying no.
        group.bench_with_input(BenchmarkId::new("offer_decode", k), &k, |b, _| {
            b.iter(|| envelope::decode(&offer_frame).expect("valid offer"))
        });
        // Sizing a frame incrementally from its first bytes.
        group.bench_with_input(BenchmarkId::new("required_len", k), &k, |b, _| {
            b.iter(|| envelope::required_len(&payload_frame).expect("sized"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_payload_roundtrip, bench_header_first_paths);
criterion_main!(benches);
