//! Cold-encode vs warm-cache serving cost.
//!
//! The serving claim of `ltnc-serve`: once a generation's symbols sit in
//! the warm ring, serving another client is a clone, not an encode. This
//! bench times exactly that pair for each scheme — a fresh
//! `make_packet` per request (what a cache-less server would do per
//! client) against `ObjectStore::symbol` cycling over cached sequence
//! numbers (what the edge cache does for every client after the first) —
//! so the warm path must come out strictly cheaper for the store to pay
//! its way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::ObjectStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn object(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_symbol_cost");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &(k, m) in &[(16usize, 64usize), (64, 256), (256, 1024)] {
        for scheme in [SchemeKind::Ltnc, SchemeKind::Rlnc] {
            let params = SchemeParams::new(scheme, k, m);
            let data = object(k * m, 3);
            group.throughput(Throughput::Bytes(m as u64));

            // Cold: what serving costs without the store — one encoder
            // run per requested symbol.
            let natives = ltnc_session::split_object(&data, params).1.remove(0);
            let mut node = params.source_node(&natives);
            let mut rng = SmallRng::seed_from_u64(9);
            group.bench_with_input(
                BenchmarkId::new(format!("cold_encode_{}", scheme.label()), k),
                &k,
                |b, _| b.iter(|| node.make_packet(&mut rng).expect("source always encodes")),
            );

            // Warm: the repeated-object workload — every request lands in
            // the pre-filled ring.
            let capacity = 4 * k;
            let store = ObjectStore::new(capacity).expect("capacity");
            store.register(1, &data, params).expect("register");
            for seq in 0..capacity as u64 {
                store.symbol(1, 0, seq).expect("fill");
            }
            let mut seq = 0u64;
            group.bench_with_input(
                BenchmarkId::new(format!("warm_cache_{}", scheme.label()), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        let symbol = store.symbol(1, 0, seq).expect("hit");
                        seq = (seq + 1) % capacity as u64;
                        symbol
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
