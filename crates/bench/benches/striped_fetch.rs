//! Single-server vs striped fetch on the warm path.
//!
//! Striping pays when streams are *network-bound*: the per-stream
//! bandwidth cap (RTT × window, or a plain per-link rate limit) binds a
//! single-server fetch, while N replicas pulled in parallel aggregate N
//! links. Loopback sockets have no such cap — a localhost fetch is
//! CPU-bound and striping can at best tie on a single core — so this
//! bench emulates the edge-serving link with the fault harness: every
//! server→client stream is routed through a `FaultProxy` that fragments
//! reads and delays each one, i.e. a fixed per-link bandwidth ceiling.
//!
//! Expected shape: `striped_3` sustains ≥ 1.5× the aggregate symbol
//! throughput of `single_server` for the same object (in practice close
//! to 3×, the stripe width), because the three emulated links run
//! concurrently while everything else (decode, feedback) is unchanged.
//! The `loopback_*` pair is the no-latency control showing striping does
//! not *cost* anything when the link is not the bottleneck.

use std::net::SocketAddr;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ltnc_net::faults::{FaultPlan, FaultProxy};
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{fetch, fetch_striped, ClientOptions, ServeOptions, Server, StripedOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OBJECT_LEN: usize = 128 * 1024;
const K: usize = 16;
const M: usize = 64;
const REPLICAS: usize = 3;

/// Per-link emulation: at most 4 KiB delivered per read, 6 ms per read —
/// a slow edge link, slow enough that link time dominates the scheduling
/// noise of running client, servers and proxies in one process (the
/// bench also runs on single-core CI machines).
fn wan_link(seed: u64) -> FaultPlan {
    FaultPlan::clean(seed).fragment_reads(4096).delay_reads(Duration::from_millis(6))
}

fn make_object() -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(0xBE4C);
    let mut object = vec![0u8; OBJECT_LEN];
    rng.fill(&mut object[..]);
    object
}

struct Cluster {
    servers: Vec<Server>,
    proxies: Vec<FaultProxy>,
    /// Client-facing addresses (through the proxies when emulating WAN).
    addrs: Vec<SocketAddr>,
}

/// Spawns `REPLICAS` warm replicas of the object, optionally behind
/// per-replica WAN-emulating proxies.
fn spawn_cluster(scheme: SchemeKind, wan: bool, options: &ClientOptions) -> Cluster {
    let object = make_object();
    let params = SchemeParams::new(scheme, K, M);
    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    let mut addrs = Vec::new();
    for replica in 0..REPLICAS {
        let server_options = ServeOptions {
            warm_cache_capacity: 4 * K,
            replica_salt: replica as u64 + 1,
            // Enough pipelining to keep the emulated link full, not so
            // much that generation tails flood the link with offers that
            // go stale in flight.
            per_session_inflight: 16,
            // One session per replica at a time: idle workers only add
            // scheduler churn on small benchmark machines.
            workers: 1,
            ..Default::default()
        };
        let server =
            Server::spawn("127.0.0.1:0".parse().expect("addr"), server_options).expect("spawn");
        server.register(1, &object, params).expect("register");
        // Warm the rings so the bench measures serving, not first-touch
        // encoding.
        let warm = fetch(server.local_addr(), 1, scheme, options).expect("warm fetch");
        assert_eq!(warm.object, object, "warm path must be bit-exact");
        let addr = if wan {
            let proxy = FaultProxy::spawn(
                server.local_addr(),
                FaultPlan::clean(replica as u64),
                wan_link(replica as u64 + 10),
            )
            .expect("proxy");
            let addr = proxy.local_addr();
            proxies.push(proxy);
            addr
        } else {
            server.local_addr()
        };
        addrs.push(addr);
        servers.push(server);
    }
    Cluster { servers, proxies, addrs }
}

fn shutdown(cluster: Cluster) {
    for proxy in cluster.proxies {
        proxy.shutdown();
    }
    for server in cluster.servers {
        let _ = server.shutdown();
    }
}

fn bench_striped_vs_single(c: &mut Criterion) {
    let client = ClientOptions {
        timeout: Duration::from_secs(60),
        stall_timeout: Duration::from_secs(10),
        ..Default::default()
    };
    let striped = StripedOptions { client, ..Default::default() };

    for scheme in [SchemeKind::Rlnc, SchemeKind::Ltnc] {
        for wan in [true, false] {
            let label = if wan { "wan" } else { "loopback" };
            let mut group =
                c.benchmark_group(format!("striped_fetch_{}_{}", scheme.label(), label));
            group.warm_up_time(Duration::from_millis(500));
            group.measurement_time(Duration::from_secs(3));
            group.sample_size(10);
            group.throughput(Throughput::Bytes(OBJECT_LEN as u64));

            let cluster = spawn_cluster(scheme, wan, &client);
            let single_addr = cluster.addrs[0];
            group.bench_function("single_server", |b| {
                b.iter(|| {
                    let report = fetch(single_addr, 1, scheme, &client).expect("single fetch");
                    assert_eq!(report.object.len(), OBJECT_LEN);
                    report.wire.useful_deliveries
                })
            });
            let addrs = cluster.addrs.clone();
            group.bench_function("striped_3", |b| {
                b.iter(|| {
                    let report = fetch_striped(&addrs, 1, scheme, &striped).expect("striped fetch");
                    assert_eq!(report.object.len(), OBJECT_LEN);
                    report.stripe.total_useful()
                })
            });
            group.finish();
            shutdown(cluster);
        }
    }
}

criterion_group!(benches, bench_striped_vs_single);
criterion_main!(benches);
