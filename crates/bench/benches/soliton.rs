//! Wall-clock benchmarks of the Robust Soliton distribution: construction
//! (done once per node) and sampling (done once per recoded packet), across
//! the code lengths of the paper's sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltnc_lt::{DegreeDistribution, RobustSoliton};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("soliton_construction");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[512usize, 2048, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| std::hint::black_box(RobustSoliton::for_code_length(k).unwrap()))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("soliton_sampling");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[512usize, 2048, 4096] {
        let dist = RobustSoliton::for_code_length(k).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| std::hint::black_box(dist.sample(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_sampling);
criterion_main!(benches);
