//! Wall-clock benchmarks of the GF(2) primitives every scheme is built on:
//! code-vector XOR/popcount (control plane) and payload XOR (data plane).
//! These are the unit costs behind the cost model of `ltnc-metrics`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ltnc_gf2::{CodeVector, Payload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_vector(k: usize, density: f64, rng: &mut SmallRng) -> CodeVector {
    let mut v = CodeVector::zero(k);
    for i in 0..k {
        if rng.gen_bool(density) {
            v.set(i);
        }
    }
    v
}

fn bench_vector_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("code_vector");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[512usize, 2048, 4096] {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = random_vector(k, 0.3, &mut rng);
        let b = random_vector(k, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("xor_degree", k), &k, |bench, _| {
            bench.iter(|| std::hint::black_box(a.xor_degree(&b)))
        });
        group.bench_with_input(BenchmarkId::new("xor_assign", k), &k, |bench, _| {
            bench.iter(|| {
                let mut x = a.clone();
                x.xor_assign(&b);
                std::hint::black_box(x.degree())
            })
        });
        group.bench_with_input(BenchmarkId::new("degree", k), &k, |bench, _| {
            bench.iter(|| std::hint::black_box(a.degree()))
        });
    }
    group.finish();
}

fn bench_payload_xor(c: &mut Criterion) {
    let mut group = c.benchmark_group("payload_xor");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[1024usize, 64 * 1024, 256 * 1024] {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut bytes = vec![0u8; m];
        rng.fill(&mut bytes[..]);
        let a = Payload::from_vec(bytes.clone());
        bytes.reverse();
        let b = Payload::from_vec(bytes);
        group.throughput(Throughput::Bytes(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |bench, _| {
            bench.iter(|| {
                let mut x = a.clone();
                x.xor_assign(&b);
                std::hint::black_box(x.as_bytes()[0])
            })
        });
    }
    group.finish();
}

/// Folding N sources into one destination: one `xor_assign` per source
/// (N passes over the destination) against a single `xor_assign_many`
/// pass — the shape of every encode/recode combination.
fn bench_payload_fold(c: &mut Criterion) {
    const SOURCES: usize = 8;
    let mut group = c.benchmark_group("payload_fold8");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[1024usize, 64 * 1024] {
        let mut rng = SmallRng::seed_from_u64(3);
        let sources: Vec<Payload> = (0..SOURCES)
            .map(|_| {
                let mut bytes = vec![0u8; m];
                rng.fill(&mut bytes[..]);
                Payload::from_vec(bytes)
            })
            .collect();
        group.throughput(Throughput::Bytes((m * SOURCES) as u64));
        group.bench_with_input(BenchmarkId::new("sequential", m), &m, |bench, _| {
            bench.iter(|| {
                let mut acc = sources[0].clone();
                for src in &sources[1..] {
                    acc.xor_assign(src);
                }
                std::hint::black_box(acc.as_bytes()[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", m), &m, |bench, _| {
            bench.iter(|| {
                let mut acc = sources[0].clone();
                let rest: Vec<&Payload> = sources[1..].iter().collect();
                acc.xor_assign_many(&rest);
                std::hint::black_box(acc.as_bytes()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_ops, bench_payload_xor, bench_payload_fold);
criterion_main!(benches);
