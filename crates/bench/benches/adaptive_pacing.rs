//! Adaptive vs fixed in-flight budgets over emulated lossy links.
//!
//! The per-peer in-flight budget caps offers awaiting feedback. On a
//! clean localhost link feedback returns in well under a millisecond, so
//! the cap almost never binds and both policies behave identically. On a
//! lossy link a lost offer pins its budget slot down for the whole
//! pending TTL, so the *live* pipeline shrinks to
//! `cap − (lost offers in flight)` and goodput scales with the cap —
//! this is exactly the regime where the adaptive budget pays: it grows
//! by one for every offer the link eats from a peer that is still alive,
//! handing the wasted slot back.
//!
//! Expected shape: at 10–30% seeded datagram loss, `adaptive` converges
//! the same dissemination at ≥ 1.3× the goodput of `fixed` (in practice
//! 2–4×); on the clean control both run within noise of each other
//! (the adaptive budget never moves without timeouts).
//!
//! Faults come from the seeded datagram harness (`FaultySocket`), so a
//! surprising number replays exactly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmRuntime};
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OBJECT_LEN: usize = 8 * 1024;
const K: usize = 16;
const M: usize = 64;
const PEERS: usize = 3;
const FAULT_SEED: u64 = 0xF00D;

fn make_object() -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(0xAD_0B7);
    let mut object = vec![0u8; OBJECT_LEN];
    rng.fill(&mut object[..]);
    object
}

/// Inbound datagram loss at `loss` with mild reordering — the emulated
/// 10–30% lossy link; `None` for the clean control.
fn lossy(loss: f64) -> Option<DatagramFaults> {
    (loss > 0.0).then(|| {
        DatagramFaults::inbound(
            DatagramFaultPlan::clean(FAULT_SEED).drop_rate(loss).reorder(0.05, 8),
        )
    })
}

fn config(adaptive: bool, loss: f64) -> SwarmConfig {
    SwarmConfig {
        scheme: SchemeKind::Rlnc,
        object: make_object(),
        code_length: K,
        payload_size: M,
        peers: PEERS,
        options: NodeOptions { seed: 0xBE7, adaptive_pacing: adaptive, ..NodeOptions::default() },
        timeout: Duration::from_secs(120),
        session: 0x9ACE,
        faults: lossy(loss),
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    }
}

fn bench_pacing(c: &mut Criterion) {
    for (label, loss) in [("clean", 0.0), ("loss10", 0.10), ("loss20", 0.20), ("loss30", 0.30)] {
        let mut group = c.benchmark_group(format!("pacing/{label}"));
        // One full dissemination per iteration: convergence time is the
        // measurement, object bytes the throughput unit (goodput).
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(8))
            .throughput(Throughput::Bytes(OBJECT_LEN as u64));
        for adaptive in [true, false] {
            let name = if adaptive { "adaptive" } else { "fixed" };
            group.bench_function(name, |b| {
                b.iter(|| {
                    let report = run_localhost_swarm(&config(adaptive, loss)).expect("swarm runs");
                    assert!(
                        report.converged && report.bit_exact,
                        "{name}/{label}: swarm failed to converge"
                    );
                    report.elapsed
                });
            });
        }
        group.finish();
    }
}

/// Telemetry overhead A/B: the same lossy adaptive dissemination with
/// the trace hooks disarmed (no sink — every `Tracer::emit` is an
/// `Option` check that never builds its event) versus armed with a
/// bounded ring sink per node. The no-sink variant must sit within noise
/// (≤ 2% goodput) of the pre-telemetry baseline; the armed variant
/// measures what full event capture actually costs.
fn bench_tracing_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pacing/tracing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8))
        .throughput(Throughput::Bytes(OBJECT_LEN as u64));
    for (name, capacity) in [("no_sink", None), ("ring_sink", Some(65_536))] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut config = config(true, 0.20);
                config.trace_capacity = capacity;
                let report = run_localhost_swarm(&config).expect("swarm runs");
                assert!(
                    report.converged && report.bit_exact,
                    "tracing/{name}: swarm failed to converge"
                );
                report.elapsed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pacing, bench_tracing_overhead);
criterion_main!(benches);
