//! Figure 8b/8d (wall-clock counterpart): time to decode the full content from
//! a stream of encoded packets — belief propagation for LTNC vs Gaussian
//! elimination for RLNC — as a function of the code length.
//!
//! Expected shape: the gap grows superlinearly with `k`; at the paper's
//! k = 2048 the reduction is ≈ 99 %. The benchmark uses smaller payloads than
//! the paper's 256 KB blocks so the `k` sweep stays fast; the data-plane gap
//! scales linearly with the payload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltnc_core::{LtncConfig, LtncNode};
use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAYLOAD: usize = 256;

fn natives(k: usize, rng: &mut SmallRng) -> Vec<Payload> {
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; PAYLOAD];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

/// Pre-generates an LTNC packet stream long enough to decode the content.
fn ltnc_stream(k: usize, seed: u64) -> Vec<EncodedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, &mut rng);
    let mut source = LtncNode::with_all_natives(k, PAYLOAD, &nat, LtncConfig::default());
    // Validate the needed length once, then regenerate deterministically.
    let mut probe = LtncNode::new(k, PAYLOAD);
    let mut stream = Vec::new();
    while !probe.is_complete() {
        let p = source.recode(&mut rng).unwrap();
        probe.receive(&p);
        stream.push(p);
    }
    stream
}

fn rlnc_stream(k: usize, seed: u64) -> Vec<EncodedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, &mut rng);
    let mut source = RlncNode::new(k, PAYLOAD);
    for (i, p) in nat.iter().enumerate() {
        source.receive(&EncodedPacket::native(k, i, p.clone()));
    }
    let mut probe = RlncNode::new(k, PAYLOAD);
    let mut stream = Vec::new();
    while !probe.is_complete() {
        let p = source.recode(&mut rng).unwrap();
        probe.receive(&p);
        stream.push(p);
    }
    stream
}

fn bench_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_full_content");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &k in &[128usize, 256, 512] {
        let ltnc_packets = ltnc_stream(k, 3);
        group.bench_with_input(BenchmarkId::new("LTNC_bp", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut sink = LtncNode::new(k, PAYLOAD);
                for p in &ltnc_packets {
                    sink.receive(p);
                    if sink.is_complete() {
                        break;
                    }
                }
                assert!(sink.is_complete());
                std::hint::black_box(sink.decoded_count())
            })
        });

        let rlnc_packets = rlnc_stream(k, 3);
        group.bench_with_input(BenchmarkId::new("RLNC_gauss", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut sink = RlncNode::new(k, PAYLOAD);
                for p in &rlnc_packets {
                    sink.receive(p);
                    if sink.is_complete() {
                        break;
                    }
                }
                std::hint::black_box(sink.decode().unwrap().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decoding);
criterion_main!(benches);
