//! Figure 8a/8c (wall-clock counterpart): time to recode one fresh packet for
//! LTNC (pick + build + refine) and RLNC (sparse random combination), as a
//! function of the code length.
//!
//! Expected shape: LTNC's control work per packet is higher than RLNC's (the
//! price of preserving the LT structure), while its data work is lower because
//! the packets it combines have lower degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltnc_core::{LtncConfig, LtncNode};
use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAYLOAD: usize = 1024;

fn natives(k: usize, rng: &mut SmallRng) -> Vec<Payload> {
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; PAYLOAD];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

/// An LTNC node holding roughly half of the content as encoded packets — the
/// partial-knowledge regime intermediary nodes recode in.
fn partial_ltnc_node(k: usize, seed: u64) -> LtncNode {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, &mut rng);
    let mut source = LtncNode::with_all_natives(k, PAYLOAD, &nat, LtncConfig::default());
    let mut node = LtncNode::new(k, PAYLOAD);
    for _ in 0..k {
        if let Some(p) = source.recode(&mut rng) {
            node.receive(&p);
        }
    }
    node
}

fn partial_rlnc_node(k: usize, seed: u64) -> RlncNode {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, &mut rng);
    let mut source = RlncNode::new(k, PAYLOAD);
    for (i, p) in nat.iter().enumerate() {
        source.receive(&EncodedPacket::native(k, i, p.clone()));
    }
    let mut node = RlncNode::new(k, PAYLOAD);
    for _ in 0..k {
        let p = source.recode(&mut rng).unwrap();
        node.receive(&p);
    }
    node
}

fn bench_recoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("recode_one_packet");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[256usize, 512, 1024] {
        let ltnc = partial_ltnc_node(k, 11);
        group.bench_with_input(BenchmarkId::new("LTNC", k), &k, |bench, _| {
            let mut rng = SmallRng::seed_from_u64(13);
            let mut node = ltnc.clone();
            bench.iter(|| std::hint::black_box(node.recode(&mut rng)))
        });

        let rlnc = partial_rlnc_node(k, 11);
        group.bench_with_input(BenchmarkId::new("RLNC", k), &k, |bench, _| {
            let mut rng = SmallRng::seed_from_u64(13);
            let mut node = rlnc.clone();
            bench.iter(|| std::hint::black_box(node.recode(&mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recoding);
criterion_main!(benches);
