//! Per-scheme goodput vs hop count on lossy line topologies — the
//! paper's core multi-hop comparison, finally over real UDP.
//!
//! One iteration = one full dissemination down a line of relays, each
//! directed link eating a seeded share of the datagrams crossing it.
//! Goodput is object bytes over convergence time (everyone complete,
//! bit-exact), so the number summarizes the *end-to-end* path, relays
//! included.
//!
//! Expected shape: all three schemes lose goodput with hop count (every
//! hop adds a store-recode-forward stage and another lossy link), but
//! the coded schemes degrade far more gently than WC — at 8 hops and
//! 30% per-link loss the probability a *specific* native packet crosses
//! uncoded is 0.7⁸ ≈ 6%, so WC leans entirely on retries, while LTNC
//! and RLNC relays manufacture fresh innovative symbols from whatever
//! arrived. That gap — recoding beating repetition on deep lossy paths
//! — is the claim the paper makes and this bench measures.
//!
//! Faults come from the seeded per-link harness (`TopologyFaults`), so
//! a surprising number replays exactly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyFaults};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OBJECT_LEN: usize = 4 * 1024;
const K: usize = 16;
const M: usize = 64;
const FAULT_SEED: u64 = 0xF00D;

fn make_object() -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(0x40B_1E55);
    let mut object = vec![0u8; OBJECT_LEN];
    rng.fill(&mut object[..]);
    object
}

fn config(scheme: SchemeKind, hops: usize, loss: f64) -> TopologyConfig {
    TopologyConfig {
        scheme,
        object: make_object(),
        code_length: K,
        payload_size: M,
        topology: Topology::line(hops + 1),
        source: 0,
        options: NodeOptions {
            seed: 0x40B ^ u64::from(scheme.wire_id()),
            ..NodeOptions::default()
        },
        timeout: Duration::from_secs(180),
        session: 0x40B_0000 + u64::from(scheme.wire_id()),
        link_faults: TopologyFaults::uniform(DatagramFaultPlan::clean(FAULT_SEED).drop_rate(loss)),
        node_faults: None,
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    }
}

fn bench_multi_hop(c: &mut Criterion) {
    for hops in [4usize, 8] {
        for (label, loss) in [("loss10", 0.10), ("loss30", 0.30)] {
            let mut group = c.benchmark_group(format!("multi_hop/{hops}hops/{label}"));
            // One full dissemination per iteration: convergence time is
            // the measurement, object bytes the throughput unit
            // (end-to-end goodput through the relay chain).
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(500))
                .measurement_time(Duration::from_secs(10))
                .throughput(Throughput::Bytes(OBJECT_LEN as u64));
            for scheme in SchemeKind::ALL {
                group.bench_function(scheme.label(), |b| {
                    b.iter(|| {
                        let report =
                            run_topology(&config(scheme, hops, loss)).expect("topology runs");
                        assert!(
                            report.swarm.converged && report.swarm.bit_exact,
                            "{scheme:?}/{hops}hops/{label}: failed to converge"
                        );
                        report.swarm.elapsed
                    });
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_multi_hop);
criterion_main!(benches);
