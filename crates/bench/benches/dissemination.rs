//! Wall-clock benchmark of the dissemination simulator itself: one full
//! epidemic run per scheme at a small scale. This is a smoke-level benchmark
//! that keeps the Figure 7 harness honest (a regression here makes the figure
//! binaries unusably slow at paper scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn config(scheme: SchemeKind) -> SimConfig {
    let mut c = SimConfig::quick(scheme);
    c.nodes = 40;
    c.code_length = 24;
    c.max_periods = 6_000;
    c
}

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissemination_run");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for scheme in SchemeKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |bench, &scheme| {
                bench.iter(|| {
                    let report = Engine::new(config(scheme)).run();
                    assert!(report.content_verified);
                    std::hint::black_box(report.completed_nodes)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dissemination);
criterion_main!(benches);
