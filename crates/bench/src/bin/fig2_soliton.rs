//! Figure 2: the Robust Soliton distribution — optimal distribution of degrees
//! for encoded packets.
//!
//! Prints the pmf of the Robust Soliton distribution for the paper's reference
//! code length, both as a table over the low degrees (where most of the mass
//! sits) and as a TSV series over every degree (log-log plottable), plus the
//! aggregate properties the paper relies on: the mass on degrees ≤ 2, the
//! spike position `k/R` and the mean degree (`O(log k)`).

use ltnc_bench::{fmt_f, print_series, print_table, HarnessOptions};
use ltnc_lt::{DegreeDistribution, RobustSoliton};
use ltnc_metrics::TimeSeries;

fn main() {
    let options = HarnessOptions::from_env();
    let k = if options.full { 2048 } else { 1000 };
    let dist = RobustSoliton::for_code_length(k).expect("valid parameters");

    println!(
        "Figure 2 — Robust Soliton distribution (k = {k}, c = {}, delta = {})",
        dist.c(),
        dist.delta()
    );

    let rows: Vec<Vec<String>> =
        (1..=16).map(|d| vec![d.to_string(), format!("{:.6e}", dist.pmf(d))]).collect();
    print_table("Robust Soliton pmf (low degrees)", &["degree", "probability"], &rows);

    let summary_rows = vec![
        vec!["mass on degrees 1-2".to_string(), fmt_f(dist.low_degree_mass(), 4)],
        vec!["mass on degrees 1-3".to_string(), fmt_f(dist.low_degree_mass() + dist.pmf(3), 4)],
        vec!["spike degree (k/R)".to_string(), dist.spike_degree().to_string()],
        vec!["spike probability".to_string(), format!("{:.6e}", dist.pmf(dist.spike_degree()))],
        vec!["mean degree".to_string(), fmt_f(dist.mean_degree(), 3)],
        vec!["ln k".to_string(), fmt_f((k as f64).ln(), 3)],
        vec!["beta (overhead factor)".to_string(), fmt_f(dist.beta(), 4)],
    ];
    print_table("Aggregate properties", &["quantity", "value"], &summary_rows);

    let mut series = TimeSeries::new(format!("robust_soliton_k{k}"));
    for d in 1..=k {
        let p = dist.pmf(d);
        if p > 0.0 {
            series.push(d as f64, p);
        }
    }
    print_series("Figure 2 data (degree vs probability, log-log)", &[&series]);
}
