//! In-text statistics of §III-B and §III-C:
//!
//! * first picked degree accepted ≈ 99.9 % of the time, ≈ 1.02 draws per
//!   recode on average (§III-B.1);
//! * the greedy build reaches the target degree ≈ 95 % of the time with an
//!   average relative deviation of ≈ 0.2 % (§III-B.2);
//! * the relative standard deviation of native-packet occurrences in sent
//!   packets is ≈ 0.1 % (§III-B.3);
//! * the redundancy detection removes ≈ 31 % of the redundant packets that
//!   would otherwise be inserted (§III-C.1).
//!
//! The statistics are collected from the LTNC nodes of a simulated epidemic
//! dissemination (so nodes recode from partial knowledge, as in the paper),
//! averaged over Monte-Carlo runs.

use ltnc_bench::{fmt_f, print_table, HarnessOptions};
use ltnc_core::{LtncNode, RecodeStats};
use ltnc_gf2::Payload;
use ltnc_metrics::Summary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Collected {
    stats: RecodeStats,
    occurrence_rsd: Summary,
}

/// Runs a chain dissemination source → relays → sink and collects the
/// recoding statistics of every intermediate node (which recode from partial
/// knowledge, the regime the paper's numbers describe).
fn collect(k: usize, m: usize, relays: usize, seed: u64) -> Collected {
    let mut rng = SmallRng::seed_from_u64(seed);
    let natives: Vec<Payload> = (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; m];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect();
    let mut source = LtncNode::with_all_natives(k, m, &natives, ltnc_core::LtncConfig::default());
    let mut nodes: Vec<LtncNode> = (0..relays).map(|_| LtncNode::new(k, m)).collect();

    // Push packets around until every relay is complete: source feeds a random
    // relay, every sufficiently-provisioned relay pushes to another random relay.
    let threshold = (k / 100).max(1);
    let mut guard = 0;
    while nodes.iter().any(|n| !n.is_complete()) {
        guard += 1;
        assert!(guard < 4000 * k, "dissemination did not converge");
        // No feedback channel here: every packet is delivered, so the
        // receiving node's redundancy detection (Algorithm 3) is exercised and
        // its catch rate can be measured against the 31 % the paper reports.
        if let Some(p) = source.recode(&mut rng) {
            let t = rng.gen_range(0..relays);
            nodes[t].receive(&p);
        }
        for i in 0..relays {
            if nodes[i].stats().accepted as usize >= threshold && nodes[i].can_recode() {
                if let Some(p) = nodes[i].recode(&mut rng) {
                    let mut t = rng.gen_range(0..relays);
                    if t == i {
                        t = (t + 1) % relays;
                    }
                    nodes[t].receive(&p);
                }
            }
        }
    }

    let mut stats = RecodeStats::new();
    let mut occurrence_rsd = Summary::new();
    for n in &nodes {
        stats.merge(n.stats());
        if n.stats().recoded_packets > 0 {
            occurrence_rsd.record(n.occurrence_spread().relative_std_dev);
        }
    }
    stats.merge(source.stats());
    occurrence_rsd.record(source.occurrence_spread().relative_std_dev);
    Collected { stats, occurrence_rsd }
}

fn main() {
    let options = HarnessOptions::from_env();
    let (k, relays) = if options.full { (2048, 24) } else { (128, 12) };
    let m = 16;
    println!("Recoding statistics (§III-B / §III-C in-text numbers)");
    println!("k = {k}, relays = {relays}, runs = {}", options.runs);

    let mut stats = RecodeStats::new();
    let mut rsd = Summary::new();
    for run in 0..options.runs {
        let collected = collect(k, m, relays, options.seed + run as u64);
        stats.merge(&collected.stats);
        rsd.merge(&collected.occurrence_rsd);
    }

    let rows = vec![
        vec![
            "first degree draw accepted".to_string(),
            "99.9 %".to_string(),
            format!("{} %", fmt_f(stats.first_pick_accept_rate() * 100.0, 2)),
        ],
        vec![
            "average degree draws per recode".to_string(),
            "1.02".to_string(),
            fmt_f(stats.average_draws(), 3),
        ],
        vec![
            "build reaches target degree".to_string(),
            "95 %".to_string(),
            format!("{} %", fmt_f(stats.target_reached_rate() * 100.0, 2)),
        ],
        vec![
            "avg relative deviation to target".to_string(),
            "0.2 %".to_string(),
            format!("{} %", fmt_f(stats.average_relative_deviation() * 100.0, 3)),
        ],
        vec![
            "occurrence relative std-dev".to_string(),
            "0.1 %".to_string(),
            format!("{} %", fmt_f(rsd.mean() * 100.0, 3)),
        ],
        vec![
            "redundant packets caught by detection".to_string(),
            "31 %".to_string(),
            format!("{} %", fmt_f(stats.redundancy_catch_rate() * 100.0, 2)),
        ],
        vec![
            "packets recoded (total)".to_string(),
            "-".to_string(),
            stats.recoded_packets.to_string(),
        ],
    ];
    print_table("Paper vs measured", &["statistic", "paper", "measured"], &rows);
}
