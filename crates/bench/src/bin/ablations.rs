//! Ablation study of the LTNC design choices (DESIGN.md §5):
//!
//! * refinement (Algorithm 2) on/off — effect on the spread of native-packet
//!   occurrences and on the sink's decoding progress;
//! * redundancy detection (Algorithm 3) on/off — effect on the number of
//!   redundant packets buffered and on memory pressure;
//! * binary feedback channel on/off — effect on the communication overhead
//!   of the dissemination;
//! * RLNC sparsity sweep — the `ln k + 20` setting of the baseline.

use ltnc_bench::{fmt_f, print_table, HarnessOptions};
use ltnc_core::{LtncConfig, LtncNode};
use ltnc_gf2::Payload;
use ltnc_rlnc::RlncNode;
use ltnc_sim::{Engine, SchemeKind, SimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn natives(k: usize, m: usize, rng: &mut SmallRng) -> Vec<Payload> {
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; m];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

/// Source → sink transfer with a given LTNC configuration; returns
/// (packets needed, occurrence RSD at the source, redundant packets buffered at the sink).
fn ltnc_transfer(k: usize, m: usize, config: LtncConfig, seed: u64) -> (u64, f64, u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, m, &mut rng);
    let mut source = LtncNode::with_all_natives(k, m, &nat, config);
    let mut sink = LtncNode::with_config(k, m, config);
    let mut sent = 0;
    while !sink.is_complete() {
        let p = source.recode(&mut rng).expect("source can recode");
        sink.receive(&p);
        sent += 1;
        assert!(sent < 200 * k as u64, "transfer did not converge");
    }
    (sent, source.occurrence_spread().relative_std_dev, sink.stats().redundant_missed)
}

fn refinement_ablation(options: &HarnessOptions) {
    let k = if options.full { 1024 } else { 128 };
    let m = 16;
    let mut rows = Vec::new();
    for (label, config) in [
        ("refinement on", LtncConfig::default()),
        ("refinement off", LtncConfig::default().without_refinement()),
    ] {
        let mut packets = 0.0;
        let mut rsd = 0.0;
        for run in 0..options.runs {
            let (sent, spread, _) = ltnc_transfer(k, m, config, options.seed + run as u64);
            packets += sent as f64;
            rsd += spread;
        }
        rows.push(vec![
            label.to_string(),
            fmt_f(packets / options.runs as f64, 1),
            fmt_f(rsd / options.runs as f64 * 100.0, 3),
        ]);
    }
    print_table(
        &format!("Ablation: refinement (k = {k})"),
        &["configuration", "packets to decode", "occurrence RSD %"],
        &rows,
    );
}

fn redundancy_ablation(options: &HarnessOptions) {
    let k = if options.full { 1024 } else { 128 };
    let m = 16;
    let mut rows = Vec::new();
    for (label, config) in [
        ("detection on", LtncConfig::default()),
        ("detection off", LtncConfig::default().without_redundancy_detection()),
    ] {
        let mut redundant_buffered = 0.0;
        let mut packets = 0.0;
        for run in 0..options.runs {
            let mut rng = SmallRng::seed_from_u64(options.seed + run as u64);
            let nat = natives(k, m, &mut rng);
            let mut source = LtncNode::with_all_natives(k, m, &nat, LtncConfig::default());
            let mut sink = LtncNode::with_config(k, m, config);
            let mut sent = 0u64;
            while !sink.is_complete() {
                let p = source.recode(&mut rng).unwrap();
                sink.receive(&p);
                sent += 1;
            }
            packets += sent as f64;
            // With detection on, redundant packets are rejected before
            // insertion; with it off they all end up buffered (missed).
            redundant_buffered += sink.stats().redundant_missed as f64;
        }
        rows.push(vec![
            label.to_string(),
            fmt_f(packets / options.runs as f64, 1),
            fmt_f(redundant_buffered / options.runs as f64, 1),
        ]);
    }
    print_table(
        &format!("Ablation: redundancy detection (k = {k})"),
        &["configuration", "packets to decode", "redundant packets buffered"],
        &rows,
    );
}

fn feedback_ablation(options: &HarnessOptions) {
    let mut rows = Vec::new();
    for feedback in [true, false] {
        let mut c = if options.full {
            SimConfig::paper_reference(SchemeKind::Ltnc)
        } else {
            let mut c = SimConfig::quick(SchemeKind::Ltnc);
            c.nodes = 60;
            c.code_length = 48;
            c
        };
        c.feedback = feedback;
        c.seed = options.seed;
        let report = Engine::new(c).run();
        rows.push(vec![
            if feedback { "feedback on" } else { "feedback off" }.to_string(),
            fmt_f(report.avg_time_to_complete, 1),
            fmt_f(report.overhead_percent(), 1),
            report.payloads_delivered.to_string(),
            report.transfers_aborted.to_string(),
        ]);
    }
    print_table(
        "Ablation: binary feedback channel (LTNC)",
        &["configuration", "avg time to complete", "overhead %", "payloads", "aborted"],
        &rows,
    );
}

fn sparsity_ablation(options: &HarnessOptions) {
    let k = if options.full { 1024 } else { 128 };
    let m = 16;
    let mut rows = Vec::new();
    for sparsity in [2usize, 8, ltnc_rlnc::sparsity_for(k), k.min(256)] {
        let mut packets = 0.0;
        let mut data_ops = 0.0;
        for run in 0..options.runs {
            let mut rng = SmallRng::seed_from_u64(options.seed + run as u64);
            let nat = natives(k, m, &mut rng);
            let mut source = RlncNode::with_sparsity(k, m, sparsity);
            for (i, p) in nat.iter().enumerate() {
                source.receive(&ltnc_gf2::EncodedPacket::native(k, i, p.clone()));
            }
            let mut sink = RlncNode::new(k, m);
            let mut sent = 0u64;
            while !sink.is_complete() {
                let p = source.recode(&mut rng).unwrap();
                if sink.is_innovative(&p) {
                    sink.receive(&p);
                }
                sent += 1;
                assert!(sent < 500 * k as u64, "sparsity {sparsity} did not converge");
            }
            packets += sent as f64;
            data_ops += source.recoding_counters().data_ops() as f64 / sent as f64;
        }
        rows.push(vec![
            sparsity.to_string(),
            fmt_f(packets / options.runs as f64, 1),
            fmt_f(data_ops / options.runs as f64, 2),
        ]);
    }
    print_table(
        &format!(
            "Ablation: RLNC sparsity (k = {k}, paper setting ln k + 20 = {})",
            ltnc_rlnc::sparsity_for(k)
        ),
        &["sparsity", "packets sent to decode", "payload XORs per recode"],
        &rows,
    );
}

fn main() {
    let options = HarnessOptions::from_env();
    println!(
        "LTNC ablation studies (mode: {}, runs: {})",
        if options.full { "full" } else { "quick" },
        options.runs
    );
    refinement_ablation(&options);
    redundancy_ablation(&options);
    feedback_ablation(&options);
    sparsity_ablation(&options);
}
