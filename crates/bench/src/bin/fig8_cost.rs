//! Figure 8: computational cost of recoding and decoding, split into work on
//! control structures and work on packet data, for LTNC and RLNC, as a
//! function of the code length (paper sweep: 400 → 2000).
//!
//! The paper reports CPU cycles measured on a Xeon testbed; this harness
//! reports (a) platform-independent operation counts and (b) estimated cycles
//! through the documented cost model of `ltnc-metrics`. The Criterion benches
//! (`cargo bench`) add wall-clock measurements of the same operations.
//!
//! Expected shape (paper):
//! * 8a — recoding/control: LTNC above RLNC (the build + refine machinery);
//! * 8b — decoding/control: LTNC orders of magnitude below RLNC, gap widening
//!   with k (belief propagation vs Gaussian elimination);
//! * 8c — recoding/data: LTNC below RLNC (lower average degree of combined
//!   packets);
//! * 8d — decoding/data: LTNC far below RLNC (≈ 99 % reduction at k = 2048).

use ltnc_bench::{cost_code_length_sweep, print_series, print_table, HarnessOptions};
use ltnc_core::LtncNode;
use ltnc_gf2::Payload;
use ltnc_metrics::{CostModel, OpCounters, TimeSeries};
use ltnc_rlnc::RlncNode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-(scheme, k) measurement: operation counters of the recoding and
/// decoding paths of a source → sink transfer.
struct Measurement {
    recode: OpCounters,
    decode: OpCounters,
    packets_recoded: u64,
}

fn natives(k: usize, m: usize, rng: &mut SmallRng) -> Vec<Payload> {
    (0..k)
        .map(|_| {
            let mut bytes = vec![0u8; m];
            rng.fill(&mut bytes[..]);
            Payload::from_vec(bytes)
        })
        .collect()
}

fn measure_ltnc(k: usize, m: usize, seed: u64) -> Measurement {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, m, &mut rng);
    let mut source = LtncNode::with_all_natives(k, m, &nat, ltnc_core::LtncConfig::default());
    let mut sink = LtncNode::new(k, m);
    let mut packets = 0;
    while !sink.is_complete() {
        let p = source.recode(&mut rng).expect("source can recode");
        packets += 1;
        if !sink.is_redundant(p.vector()) {
            sink.receive(&p);
        }
    }
    sink.decode().expect("complete");
    Measurement {
        recode: *source.recoding_counters(),
        decode: *sink.decoding_counters(),
        packets_recoded: packets,
    }
}

fn measure_rlnc(k: usize, m: usize, seed: u64) -> Measurement {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nat = natives(k, m, &mut rng);
    let mut source = RlncNode::new(k, m);
    for (i, p) in nat.iter().enumerate() {
        source.receive(&ltnc_gf2::EncodedPacket::native(k, i, p.clone()));
    }
    let mut sink = RlncNode::new(k, m);
    let mut packets = 0;
    while !sink.is_complete() {
        let p = source.recode(&mut rng).expect("source can recode");
        packets += 1;
        if sink.is_innovative(&p) {
            sink.receive(&p);
        }
    }
    sink.decode().expect("full rank");
    Measurement {
        recode: *source.recoding_counters(),
        decode: *sink.decoding_counters(),
        packets_recoded: packets,
    }
}

fn main() {
    let options = HarnessOptions::from_env();
    let sweep = cost_code_length_sweep(options.full);
    // The paper's m is 256 KB; data cost scales linearly with m through the
    // cost model, so the measurement uses a small payload and the model is
    // parameterised with the paper's payload size for the cycle estimates.
    let measured_m = 32;
    let model_m = if options.full { 256 * 1024 } else { 1024 };
    println!("Figure 8 — computational cost of recoding and decoding");
    println!(
        "mode: {} | k sweep: {:?} | measured payload: {measured_m} B | modelled payload: {model_m} B",
        if options.full { "full" } else { "quick" },
        sweep
    );

    let mut fig8a = [TimeSeries::new("LTNC"), TimeSeries::new("RLNC")];
    let mut fig8b = [TimeSeries::new("LTNC"), TimeSeries::new("RLNC")];
    let mut fig8c = [TimeSeries::new("LTNC"), TimeSeries::new("RLNC")];
    let mut fig8d = [TimeSeries::new("LTNC"), TimeSeries::new("RLNC")];
    let mut rows = Vec::new();

    for &k in &sweep {
        let model = CostModel::new(k, model_m);
        let schemes: [(&str, Measurement); 2] = [
            ("LTNC", measure_ltnc(k, measured_m, options.seed)),
            ("RLNC", measure_rlnc(k, measured_m, options.seed)),
        ];
        for (i, (label, m)) in schemes.iter().enumerate() {
            let recode = model.evaluate(&m.recode);
            let decode = model.evaluate(&m.decode);
            let packets = m.packets_recoded.max(1) as f64;
            let content_bytes = (k * model_m) as f64;

            let recode_control_per_packet = recode.control_cycles / packets;
            let recode_data_per_byte = recode.data_cycles / (packets * model_m as f64);
            let decode_control_total = decode.control_cycles;
            let decode_data_per_byte = decode.data_cycles / content_bytes;

            fig8a[i].push(k as f64, recode_control_per_packet);
            fig8b[i].push(k as f64, decode_control_total);
            fig8c[i].push(k as f64, recode_data_per_byte);
            fig8d[i].push(k as f64, decode_data_per_byte);

            rows.push(vec![
                k.to_string(),
                (*label).to_string(),
                format!("{recode_control_per_packet:.0}"),
                format!("{decode_control_total:.3e}"),
                format!("{recode_data_per_byte:.1}"),
                format!("{decode_data_per_byte:.1}"),
                m.packets_recoded.to_string(),
            ]);
        }
    }

    print_table(
        "Estimated cycles (cost model)",
        &[
            "k",
            "scheme",
            "8a recode ctrl/pkt",
            "8b decode ctrl total",
            "8c recode data cyc/B",
            "8d decode data cyc/B",
            "packets sent",
        ],
        &rows,
    );

    // Headline: decode reduction of LTNC vs RLNC at the largest k.
    if let (Some(&(_, ltnc_total)), Some(&(_, rlnc_total))) =
        (fig8d[0].points().last(), fig8d[1].points().last())
    {
        let reduction = (1.0 - ltnc_total / rlnc_total) * 100.0;
        println!(
            "\nheadline: LTNC reduces decoding data cost by {reduction:.1}% vs RLNC at k = {}",
            sweep.last().unwrap()
        );
    }

    print_series("Figure 8a data (k vs recode control cycles per packet)", &[&fig8a[0], &fig8a[1]]);
    print_series("Figure 8b data (k vs decode control cycles, log scale)", &[&fig8b[0], &fig8b[1]]);
    print_series("Figure 8c data (k vs recode data cycles per byte)", &[&fig8c[0], &fig8c[1]]);
    print_series("Figure 8d data (k vs decode data cycles per byte)", &[&fig8d[0], &fig8d[1]]);
}
