//! Bench-report pipeline: key end-to-end scenarios, machine-readable.
//!
//! Where the Criterion benches in `benches/` answer "how fast is this
//! operation", this binary answers "did the *system* get slower" — it
//! runs a fixed set of end-to-end scenarios and writes one
//! `BENCH_<scenario>.json` per scenario with goodput and
//! origin→delivery latency percentiles, schema-stable so CI can diff
//! runs over time and fail on regressions:
//!
//! | Scenario        | What runs |
//! |-----------------|-----------|
//! | `pacing_loss10` | adaptive-pacing UDP dissemination at 10% seeded datagram loss |
//! | `pacing_loss20` | same at 20% loss |
//! | `pacing_loss30` | same at 30% loss |
//! | `line4`         | 4-hop line topology, relays recoding in-path, 10% per-link loss |
//! | `line8`         | 8-hop line topology, same loss |
//! | `striped_fetch` | one object striped across 3 warm TCP replicas |
//! | `warm_cache`    | warm-ring symbol serving (store hit path, no sockets) |
//! | `gf2_kernel`    | raw coding kernel: bulk payload XOR + relay recode, no sockets |
//! | `sharded_1k`    | 1000-node k-regular overlay on the sharded reactor runtime, plus a 64-node threaded reference for the per-node goodput ratio and a flight-recorder-armed A/B rerun gating tracing overhead (`tracing_overhead_2x`) |
//!
//! Flags: `--smoke` (CI-sized runs), `--out <dir>` (where the JSON
//! lands, default `.`), `--only <scenario>` (repeatable filter),
//! `--seed <n>`, and the regression gate: `--compare <dir>` reads the
//! committed baseline `BENCH_*.json` from `<dir>` and exits non-zero
//! when any scenario's goodput fell more than `--tolerance` (default
//! `0.30`, i.e. 30%) below its baseline. Latency percentiles are
//! reported, not gated: wall-clock percentiles on shared CI hardware
//! are too noisy to fail a build on, while a 30% goodput collapse on
//! the same scenario/seed is a real signal.
//!
//! Everything is seeded; a regression replays locally with the same
//! drop pattern by running the same scenario with the same `--seed`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_metrics::LogHistogramSnapshot;
use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmRuntime};
use ltnc_net::NodeOptions;
use ltnc_scheme::{SchemeKind, SchemeParams};
use ltnc_serve::{
    fetch, fetch_striped, ClientOptions, ObjectStore, ServeOptions, Server, StripedOptions,
};
use ltnc_telemetry::json::{JsonValue, REPORT_SCHEMA_VERSION};
use ltnc_topo::{run_topology, FlightRecorder, Topology, TopologyConfig, TopologyFaults};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every scenario this binary knows, in report order.
const SCENARIOS: [&str; 9] = [
    "pacing_loss10",
    "pacing_loss20",
    "pacing_loss30",
    "line4",
    "line8",
    "striped_fetch",
    "warm_cache",
    "gf2_kernel",
    "sharded_1k",
];

/// One scenario's measured outcome, ready to serialize.
struct Outcome {
    /// Useful bytes delivered (object bytes × completing receivers).
    delivered_bytes: u64,
    elapsed: Duration,
    /// Origin→delivery latency over every delivery of the run.
    latency: LogHistogramSnapshot,
    /// Unit of the latency values (`"us"`, or `"ns"` for the in-process
    /// warm-cache path where microseconds would round everything to 0).
    latency_unit: &'static str,
    /// Per-lineage-depth latency, for the multi-hop scenarios.
    by_hop: Vec<(usize, LogHistogramSnapshot)>,
    /// Scenario-specific numeric fields appended verbatim to the JSON
    /// (e.g. the per-node goodput figures of `sharded_1k`). The schema
    /// stays v2: baselines only ever parse `schema_version` and
    /// `goodput_bytes_per_sec`, so extra fields are additive.
    extras: Vec<(&'static str, f64)>,
}

impl Outcome {
    fn goodput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.delivered_bytes as f64 / secs
        } else {
            0.0
        }
    }
}

fn pseudo_object(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut object = vec![0u8; len];
    rng.fill(&mut object[..]);
    object
}

/// Merges every per-hop distribution of a report into one total.
fn merge_hops(by_hop: &[(usize, LogHistogramSnapshot)]) -> LogHistogramSnapshot {
    let mut total = LogHistogramSnapshot::empty();
    for (_, snapshot) in by_hop {
        total.merge(snapshot);
    }
    total
}

/// Adaptive-pacing dissemination over emulated lossy datagram links.
fn pacing(loss: f64, smoke: bool, seed: u64) -> Result<Outcome, String> {
    let object_len = if smoke { 4 * 1024 } else { 16 * 1024 };
    let (k, m, peers) = if smoke { (8, 32, 2) } else { (16, 64, 3) };
    let config = SwarmConfig {
        scheme: SchemeKind::Rlnc,
        object: pseudo_object(object_len, 0xAD_0B7 ^ seed),
        code_length: k,
        payload_size: m,
        peers,
        options: NodeOptions {
            seed: 0xBE7 ^ seed,
            adaptive_pacing: true,
            ..NodeOptions::default()
        },
        timeout: Duration::from_secs(120),
        session: 0x9ACE,
        faults: Some(DatagramFaults::inbound(
            DatagramFaultPlan::clean(0xF00D ^ seed).drop_rate(loss).reorder(0.05, 8),
        )),
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    };
    let report = run_localhost_swarm(&config).map_err(|e| format!("swarm failed to start: {e}"))?;
    if !report.converged || !report.bit_exact {
        return Err(format!(
            "swarm did not converge bit-exactly: {}/{} peers in {:?}",
            report.peers_complete, peers, report.elapsed
        ));
    }
    let mut latency = LogHistogramSnapshot::empty();
    for peer in &report.peer_reports {
        latency.merge(&merge_hops(&peer.latency_by_hop));
    }
    Ok(Outcome {
        delivered_bytes: object_len as u64 * report.peers_complete as u64,
        elapsed: report.elapsed,
        latency,
        latency_unit: "us",
        by_hop: Vec::new(),
        extras: Vec::new(),
    })
}

/// A line topology: source at one end, every relay recoding in-path.
fn line(hops: usize, smoke: bool, seed: u64) -> Result<Outcome, String> {
    let object_len = if smoke { 600 } else { 2400 };
    let config = TopologyConfig {
        scheme: SchemeKind::Ltnc,
        object: pseudo_object(object_len, 0x10AD ^ seed),
        code_length: 8,
        payload_size: 16,
        topology: Topology::line(hops + 1),
        source: 0,
        options: NodeOptions { seed: 0x5EED ^ seed, ..NodeOptions::default() },
        timeout: Duration::from_secs(if smoke { 90 } else { 240 }),
        session: 0xB4_0000 + hops as u64,
        link_faults: TopologyFaults::uniform(
            DatagramFaultPlan::clean(0xF00D ^ seed).drop_rate(0.10),
        ),
        node_faults: None,
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    };
    let report = run_topology(&config).map_err(|e| format!("topology failed to start: {e}"))?;
    if !report.swarm.converged || !report.swarm.bit_exact {
        return Err(format!(
            "line{hops} did not converge bit-exactly: {}/{hops} peers in {:?}",
            report.swarm.peers_complete, report.swarm.elapsed
        ));
    }
    Ok(Outcome {
        delivered_bytes: object_len as u64 * report.swarm.peers_complete as u64,
        elapsed: report.swarm.elapsed,
        latency: merge_hops(&report.latency_by_hop),
        latency_unit: "us",
        by_hop: report.latency_by_hop.clone(),
        extras: Vec::new(),
    })
}

/// One object striped across three warm TCP replicas on loopback.
fn striped(smoke: bool, seed: u64) -> Result<Outcome, String> {
    const REPLICAS: usize = 3;
    let object_len = if smoke { 32 * 1024 } else { 128 * 1024 };
    let (k, m) = (16, 64);
    let scheme = SchemeKind::Ltnc;
    let object = pseudo_object(object_len, 0xBE4C ^ seed);
    let params = SchemeParams::new(scheme, k, m);
    let client = ClientOptions {
        timeout: Duration::from_secs(60),
        stall_timeout: Duration::from_secs(10),
        ..Default::default()
    };

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for replica in 0..REPLICAS {
        let options = ServeOptions {
            warm_cache_capacity: 4 * k,
            replica_salt: replica as u64 + 1,
            per_session_inflight: 16,
            workers: 1,
            ..Default::default()
        };
        let server = Server::spawn("127.0.0.1:0".parse().expect("loopback addr"), options)
            .map_err(|e| format!("replica {replica} failed to spawn: {e}"))?;
        server.register(1, &object, params).map_err(|e| format!("register failed: {e:?}"))?;
        // Warm the rings so the measurement is the serving path, not
        // first-touch encoding.
        let warm = fetch(server.local_addr(), 1, scheme, &client)
            .map_err(|e| format!("warm fetch failed: {e:?}"))?;
        if warm.object != object {
            return Err("warm fetch was not bit-exact".to_string());
        }
        addrs.push(server.local_addr());
        servers.push(server);
    }

    // Best-of-3: the loopback fetch is CPU-bound, so one scheduler
    // hiccup can move a single measurement by tens of percent — enough
    // to trip a 30% regression gate on noise alone. The fastest of
    // three is what the machine can actually do.
    let striped_options = StripedOptions { client, ..Default::default() };
    let mut best: Option<(Duration, LogHistogramSnapshot)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let report = fetch_striped(&addrs, 1, scheme, &striped_options)
            .map_err(|e| format!("striped fetch failed: {e:?}"))?;
        let elapsed = started.elapsed();
        if report.object != object {
            return Err("striped fetch was not bit-exact".to_string());
        }
        if best.as_ref().is_none_or(|(fastest, _)| elapsed < *fastest) {
            best = Some((elapsed, report.latency));
        }
    }
    for server in servers {
        let _ = server.shutdown();
    }
    let (elapsed, latency) = best.expect("three passes ran");
    Ok(Outcome {
        delivered_bytes: object_len as u64,
        elapsed,
        latency,
        latency_unit: "us",
        by_hop: Vec::new(),
        extras: Vec::new(),
    })
}

/// The warm-ring hit path, no sockets: per-symbol latency in nanoseconds
/// (a warm hit is sub-microsecond; microseconds would round to zero).
fn warm_cache(smoke: bool, seed: u64) -> Result<Outcome, String> {
    let (k, m) = (16usize, 64usize);
    let requests: u64 = if smoke { 20_000 } else { 200_000 };
    let params = SchemeParams::new(SchemeKind::Ltnc, k, m);
    let data = pseudo_object(k * m, 0x3 ^ seed);
    let capacity = 4 * k;
    let store = ObjectStore::new(capacity).map_err(|e| format!("store: {e:?}"))?;
    store.register(1, &data, params).map_err(|e| format!("register: {e:?}"))?;
    for sequence in 0..capacity as u64 {
        store.symbol(1, 0, sequence).ok_or("ring fill missed".to_string())?;
    }

    // Best-of-3 passes, same reasoning as the striped fetch: the hit
    // path is pure CPU and a single pass is at the mercy of frequency
    // scaling and neighbours on shared runners.
    let mut best: Option<(Duration, LogHistogramSnapshot)> = None;
    for _ in 0..3 {
        let histogram = ltnc_metrics::LogHistogram::new();
        let started = Instant::now();
        for request in 0..requests {
            let before = Instant::now();
            store.symbol(1, 0, request % capacity as u64).ok_or("warm hit missed".to_string())?;
            let nanos = u64::try_from(before.elapsed().as_nanos()).unwrap_or(u64::MAX);
            histogram.record(nanos);
        }
        let elapsed = started.elapsed();
        if best.as_ref().is_none_or(|(fastest, _)| elapsed < *fastest) {
            best = Some((elapsed, histogram.snapshot()));
        }
    }
    let (elapsed, latency) = best.expect("three passes ran");
    Ok(Outcome {
        delivered_bytes: requests * m as u64,
        elapsed,
        latency,
        latency_unit: "ns",
        by_hop: Vec::new(),
        extras: Vec::new(),
    })
}

/// The raw coding kernel, no sockets: the goodput figure is payload
/// bytes pushed through the word-sliced XOR paths per second (a bulk
/// `xor_assign` phase plus a warm RLNC relay recoding packets), and the
/// latency histogram is per-recode wall time in nanoseconds.
fn gf2_kernel(smoke: bool, seed: u64) -> Result<Outcome, String> {
    let (k, m) = (128usize, 1024usize);
    let xor_passes: u64 = if smoke { 20_000 } else { 200_000 };
    let recodes: u64 = if smoke { 5_000 } else { 50_000 };

    // Phase 1: bulk destructive XOR, the innermost data-plane operation.
    let mut dst = Payload::from_vec(pseudo_object(m, 0xD57 ^ seed));
    let src = Payload::from_vec(pseudo_object(m, 0x54C ^ seed));
    let xor_started = Instant::now();
    for _ in 0..xor_passes {
        dst.xor_assign(&src);
        std::hint::black_box(&mut dst);
    }
    let xor_elapsed = xor_started.elapsed();

    // Phase 2: a warm relay recoding from a full buffer — the XOR batch
    // fold plus vector work and RNG, as a relay node actually runs it.
    let mut node = ltnc_rlnc::RlncNode::new(k, m);
    for i in 0..k {
        let native = Payload::from_vec(pseudo_object(m, (i as u64) << 8 | (0xAB ^ seed)));
        node.receive(&EncodedPacket::native(k, i, native));
    }
    let mut rng = SmallRng::seed_from_u64(0x4EC0DE ^ seed);
    let histogram = ltnc_metrics::LogHistogram::new();
    let recode_started = Instant::now();
    for _ in 0..recodes {
        let before = Instant::now();
        let packet = node.recode(&mut rng).map_err(|e| format!("recode failed: {e:?}"))?;
        let nanos = u64::try_from(before.elapsed().as_nanos()).unwrap_or(u64::MAX);
        histogram.record(nanos);
        std::hint::black_box(&packet);
    }
    let recode_elapsed = recode_started.elapsed();

    // Goodput counts bytes actually pushed through the XOR kernels: the
    // bulk passes plus every payload the recoder folded (its own ledger).
    let folded = node.recoding_counters().get(ltnc_metrics::OpKind::PayloadXor);
    Ok(Outcome {
        delivered_bytes: (xor_passes + folded) * m as u64,
        elapsed: xor_elapsed + recode_elapsed,
        latency: histogram.snapshot(),
        latency_unit: "ns",
        by_hop: Vec::new(),
        extras: Vec::new(),
    })
}

/// One seeded k-regular dissemination, parameterized by size and
/// runtime — the body of the `sharded_1k` scenario and its threaded
/// reference run.
fn k_regular_run(
    nodes: usize,
    runtime: SwarmRuntime,
    flight_recorder: Option<FlightRecorder>,
    seed: u64,
) -> Result<ltnc_topo::TopologyReport, String> {
    let object_len = 512;
    let mut config = TopologyConfig::quick(
        SchemeKind::Ltnc,
        pseudo_object(object_len, 0x1_0AD ^ seed),
        Topology::random_regular(nodes, 4, 0x1000 ^ seed),
    );
    config.code_length = 8;
    config.payload_size = 32;
    // The same gentle tick on both sizes, so the per-node comparison
    // measures the runtime, not the tick cadence: 1000 state machines
    // at the 2ms default saturate a small machine on timer pressure
    // alone, which would be a scheduling artifact, not goodput.
    config.options = NodeOptions {
        seed: 0x51AB ^ seed,
        tick: Duration::from_millis(10),
        ..NodeOptions::default()
    };
    config.session = 0x51_0000 + nodes as u64;
    config.timeout = Duration::from_secs(180);
    config.runtime = runtime;
    config.flight_recorder = flight_recorder;
    let report =
        run_topology(&config).map_err(|e| format!("{nodes}-node run failed to start: {e}"))?;
    if !report.swarm.converged || !report.swarm.bit_exact {
        return Err(format!(
            "{nodes}-node run under {runtime:?} did not converge bit-exactly: {}/{} peers in {:?}",
            report.swarm.peers_complete,
            nodes - 1,
            report.swarm.elapsed
        ));
    }
    Ok(report)
}

/// The sharded-runtime scale scenario: 1000 nodes on the reactor, with
/// a 64-node threaded run of the same shape and parameters as the
/// per-node reference. Smoke and full are the same size — scale *is*
/// the scenario, and the run is seconds even on one core. The reported
/// goodput (and the regression gate) is the 1000-node run's; the
/// per-node figures of both runs land in extra JSON fields, and the
/// scenario fails outright when the sharded per-node goodput falls more
/// than 2× below the threaded reference after CPU-share normalization.
///
/// A third run repeats the 1000-node shape with the flight recorder
/// armed (criterion `tracing_overhead_2x`): scheduler tracing claims to
/// be near-zero-cost when disabled *and cheap when enabled*, so the
/// traced run must hold within 2× of the untraced one or the scenario
/// fails.
fn sharded_1k(_smoke: bool, seed: u64) -> Result<Outcome, String> {
    let sharded = k_regular_run(1000, SwarmRuntime::Sharded { workers: 4 }, None, seed)?;
    let threaded = k_regular_run(64, SwarmRuntime::Threaded, None, seed)?;
    let traced = k_regular_run(
        1000,
        SwarmRuntime::Sharded { workers: 4 },
        Some(FlightRecorder::default()),
        seed,
    )?;

    // Per-node goodput: object bytes per second per completing peer —
    // the whole object reaches every peer, so this is object_len over
    // convergence time. Raw per-node figures are not comparable across
    // swarm sizes on one machine: 1000 nodes split the same cores that
    // 64 nodes split, so each node's CPU slice — and with it the raw
    // figure — shrinks ~16x by construction, for any runtime. The
    // comparable quantity is per-node goodput normalized by that share
    // (equivalently, whole-machine swarm goodput); the gate holds the
    // normalized sharded figure within 2x of the threaded reference,
    // and both raw figures land in the report for reading.
    let per_node = |report: &ltnc_topo::TopologyReport| {
        report.object_len as f64 / report.swarm.elapsed.as_secs_f64()
    };
    let per_node_sharded = per_node(&sharded);
    let per_node_threaded = per_node(&threaded);
    let per_node_traced = per_node(&traced);
    let cpu_share = 1000.0 / 64.0;
    let normalized_sharded = per_node_sharded * cpu_share;
    if normalized_sharded * 2.0 < per_node_threaded {
        return Err(format!(
            "per-node goodput collapsed at scale: {per_node_sharded:.1} B/s/node sharded@1000 \
             ({normalized_sharded:.1} after the {cpu_share:.1}x CPU-share normalization) vs \
             {per_node_threaded:.1} B/s/node threaded@64 (more than 2x below)"
        ));
    }
    if per_node_traced * 2.0 < per_node_sharded {
        return Err(format!(
            "tracing_overhead_2x: arming the flight recorder collapsed goodput: \
             {per_node_traced:.1} B/s/node traced vs {per_node_sharded:.1} untraced \
             (more than 2x below)"
        ));
    }

    Ok(Outcome {
        delivered_bytes: sharded.object_len * sharded.swarm.peers_complete as u64,
        elapsed: sharded.swarm.elapsed,
        latency: merge_hops(&sharded.latency_by_hop),
        latency_unit: "us",
        by_hop: sharded.latency_by_hop.clone(),
        extras: vec![
            ("per_node_goodput_sharded_1k", per_node_sharded),
            ("per_node_goodput_threaded_64", per_node_threaded),
            ("per_node_ratio_cpu_normalized", normalized_sharded / per_node_threaded),
            ("per_node_goodput_sharded_1k_traced", per_node_traced),
            ("tracing_overhead_ratio", per_node_sharded / per_node_traced),
        ],
    })
}

/// Runs a scenario `passes` times and keeps the best-goodput pass. The
/// dissemination runs are loss/timeout-bound but a slow pass still
/// happens when the tail generation eats an extra retry round; two
/// passes keep that noise out of the 30% regression gate (the fault
/// pattern is seeded, so passes differ only in scheduling).
fn best_of(passes: usize, run: impl Fn() -> Result<Outcome, String>) -> Result<Outcome, String> {
    let mut best: Option<Outcome> = None;
    for _ in 0..passes {
        let outcome = run()?;
        if best.as_ref().is_none_or(|b| outcome.goodput() > b.goodput()) {
            best = Some(outcome);
        }
    }
    best.ok_or("no passes ran".to_string())
}

fn run_scenario(name: &str, smoke: bool, seed: u64) -> Result<Outcome, String> {
    match name {
        "pacing_loss10" => best_of(2, || pacing(0.10, smoke, seed)),
        "pacing_loss20" => best_of(2, || pacing(0.20, smoke, seed)),
        "pacing_loss30" => best_of(2, || pacing(0.30, smoke, seed)),
        "line4" => best_of(2, || line(4, smoke, seed)),
        "line8" => best_of(2, || line(8, smoke, seed)),
        "striped_fetch" => striped(smoke, seed),
        "warm_cache" => warm_cache(smoke, seed),
        "gf2_kernel" => best_of(3, || gf2_kernel(smoke, seed)),
        "sharded_1k" => sharded_1k(smoke, seed),
        _ => Err(format!("unknown scenario {name:?}")),
    }
}

/// The shared latency sub-object: `{"unit","count","mean","p50",...}`.
fn latency_json(snapshot: &LogHistogramSnapshot, unit: &str) -> JsonValue {
    JsonValue::object()
        .field("unit", unit)
        .field("count", snapshot.count())
        .field("mean", snapshot.mean())
        .field("p50", snapshot.p50())
        .field("p90", snapshot.p90())
        .field("p99", snapshot.p99())
        .field("max", snapshot.quantile(1.0))
}

fn outcome_json(name: &str, smoke: bool, seed: u64, outcome: &Outcome) -> JsonValue {
    let by_hop = outcome
        .by_hop
        .iter()
        .map(|(hops, snapshot)| latency_json(snapshot, outcome.latency_unit).field("hops", *hops))
        .collect();
    let mut json = JsonValue::object()
        .field("schema_version", REPORT_SCHEMA_VERSION)
        .field("scenario", name)
        .field("smoke", smoke)
        .field("seed", seed)
        .field("delivered_bytes", outcome.delivered_bytes)
        .field("elapsed_micros", u64::try_from(outcome.elapsed.as_micros()).unwrap_or(u64::MAX))
        .field("goodput_bytes_per_sec", outcome.goodput())
        .field("latency", latency_json(&outcome.latency, outcome.latency_unit))
        .field("latency_by_hop", JsonValue::array(by_hop));
    for &(field, value) in &outcome.extras {
        json = json.field(field, value);
    }
    json
}

/// Reads a baseline `BENCH_<scenario>.json` back; `None` when the file
/// is absent (a new scenario has no baseline yet — not a failure).
fn baseline_goodput(dir: &Path, name: &str) -> Result<Option<f64>, String> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => return Ok(None),
    };
    let doc = JsonValue::parse(&text)
        .map_err(|e| format!("{}: baseline is not valid JSON: {e}", path.display()))?;
    match doc.get("schema_version").and_then(JsonValue::as_i64) {
        Some(version) if version as u64 == REPORT_SCHEMA_VERSION => {}
        other => {
            return Err(format!(
                "{}: baseline schema_version {other:?} != {REPORT_SCHEMA_VERSION}",
                path.display()
            ))
        }
    }
    doc.get("goodput_bytes_per_sec")
        .and_then(JsonValue::as_f64)
        .map(Some)
        .ok_or_else(|| format!("{}: baseline has no goodput_bytes_per_sec", path.display()))
}

struct Options {
    smoke: bool,
    out: PathBuf,
    compare: Option<PathBuf>,
    tolerance: f64,
    only: Vec<String>,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        smoke: false,
        out: PathBuf::from("."),
        compare: None,
        tolerance: 0.30,
        only: Vec::new(),
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--full" => options.smoke = false,
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--compare" => options.compare = Some(PathBuf::from(value("--compare")?)),
            "--tolerance" => {
                options.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance needs a fraction like 0.30".to_string())?;
            }
            "--only" => options.only.push(value("--only")?),
            "--seed" => {
                options.seed =
                    value("--seed")?.parse().map_err(|_| "--seed needs an integer".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?} (see the crate docs)")),
        }
    }
    if !(0.0..1.0).contains(&options.tolerance) {
        return Err(format!("--tolerance {} is outside [0, 1)", options.tolerance));
    }
    for name in &options.only {
        if !SCENARIOS.contains(&name.as_str()) {
            return Err(format!("unknown scenario {name:?}; known: {SCENARIOS:?}"));
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("bench_report: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&options.out) {
        eprintln!("bench_report: cannot create {}: {e}", options.out.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut regressions = Vec::new();
    for &name in &SCENARIOS {
        if !options.only.is_empty() && !options.only.iter().any(|only| only == name) {
            continue;
        }
        print!("{name}: ");
        let outcome = match run_scenario(name, options.smoke, options.seed) {
            Ok(outcome) => outcome,
            Err(message) => {
                println!("FAILED — {message}");
                failed = true;
                continue;
            }
        };
        let path = options.out.join(format!("BENCH_{name}.json"));
        let mut rendered = outcome_json(name, options.smoke, options.seed, &outcome).render();
        rendered.push('\n');
        if let Err(e) = fs::write(&path, rendered) {
            println!("FAILED — cannot write {}: {e}", path.display());
            failed = true;
            continue;
        }
        let goodput = outcome.goodput();
        print!(
            "{:.1} KiB/s, latency p50/p99 {}/{} {} (n={})",
            goodput / 1024.0,
            outcome.latency.p50(),
            outcome.latency.p99(),
            outcome.latency_unit,
            outcome.latency.count()
        );

        match options.compare.as_deref().map(|dir| baseline_goodput(dir, name)) {
            None => println!(),
            Some(Err(message)) => {
                println!(" — {message}");
                failed = true;
            }
            Some(Ok(None)) => println!(" — no baseline, skipping compare"),
            Some(Ok(Some(baseline))) => {
                let floor = baseline * (1.0 - options.tolerance);
                let change = if baseline > 0.0 { goodput / baseline - 1.0 } else { 0.0 };
                if goodput < floor {
                    println!(
                        " — REGRESSION: {:+.1}% vs baseline {:.1} KiB/s",
                        change * 100.0,
                        baseline / 1024.0
                    );
                    regressions.push(name);
                } else {
                    println!(" — {:+.1}% vs baseline, within tolerance", change * 100.0);
                }
            }
        }
    }

    if !regressions.is_empty() {
        eprintln!(
            "bench_report: goodput regressed more than {:.0}% on: {}",
            options.tolerance * 100.0,
            regressions.join(", ")
        );
        return ExitCode::FAILURE;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
