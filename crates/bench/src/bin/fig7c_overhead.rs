//! Figure 7c: communication overhead of LTNC as a function of the code length.
//!
//! Overhead counts the payloads delivered beyond the `N · k` necessary ones:
//! LTNC's cheap redundancy detection (degree ≤ 3) lets some non-innovative
//! packets through the feedback channel, so their payloads are transferred for
//! nothing. WC and RLNC have an exact check, hence zero overhead — the paper
//! only plots LTNC and we print all three as a sanity check.
//!
//! Expected shape (paper): ≈ 20 % at k = 2048, decreasing with k.

use ltnc_bench::{code_length_sweep, fmt_f, print_series, print_table, HarnessOptions};
use ltnc_metrics::TimeSeries;
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn config(options: &HarnessOptions, scheme: SchemeKind, k: usize, seed: u64) -> SimConfig {
    let mut c = if options.full {
        SimConfig::paper_reference(scheme)
    } else {
        let mut c = SimConfig::quick(scheme);
        c.nodes = 80;
        c.max_periods = 40_000;
        c
    };
    c.code_length = k;
    c.seed = seed;
    c
}

fn main() {
    let options = HarnessOptions::from_env();
    let sweep = code_length_sweep(options.full);
    println!("Figure 7c — communication overhead vs code length");
    println!(
        "mode: {} | k sweep: {:?} | runs: {}",
        if options.full { "full" } else { "quick" },
        sweep,
        options.runs
    );

    let mut ltnc_series = TimeSeries::new("LTNC");
    let mut rows = Vec::new();
    for &k in &sweep {
        let mut row = vec![k.to_string()];
        for &scheme in &SchemeKind::ALL {
            let mut overhead = 0.0;
            let mut aborted = 0u64;
            let mut delivered = 0u64;
            for run in 0..options.runs {
                let report =
                    Engine::new(config(&options, scheme, k, options.seed + run as u64)).run();
                overhead += report.overhead_percent();
                aborted += report.transfers_aborted;
                delivered += report.payloads_delivered;
            }
            overhead /= options.runs as f64;
            if scheme == SchemeKind::Ltnc {
                ltnc_series.push(k as f64, overhead);
                row.push(fmt_f(overhead, 1));
                row.push(fmt_f(100.0 * aborted as f64 / (aborted + delivered).max(1) as f64, 1));
            } else {
                row.push(fmt_f(overhead, 1));
            }
        }
        rows.push(row);
    }

    print_table(
        "Communication overhead (%)",
        &["k", "WC", "LTNC", "LTNC aborted %", "RLNC"],
        &rows,
    );
    print_series("Figure 7c data (k vs LTNC overhead %)", &[&ltnc_series]);
}
