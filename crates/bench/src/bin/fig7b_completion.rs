//! Figure 7b: average time to complete as a function of the code length `k`
//! (paper sweep: 512 → 4096), for WC, LTNC and RLNC.
//!
//! Expected shape (paper): for every `k`, RLNC < LTNC < WC, and the relative
//! gap between LTNC and RLNC shrinks as `k` grows.

use ltnc_bench::{code_length_sweep, fmt_f, print_series, print_table, HarnessOptions};
use ltnc_metrics::TimeSeries;
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn config(options: &HarnessOptions, scheme: SchemeKind, k: usize, seed: u64) -> SimConfig {
    let mut c = if options.full {
        SimConfig::paper_reference(scheme)
    } else {
        let mut c = SimConfig::quick(scheme);
        c.nodes = 80;
        c.max_periods = 40_000;
        c
    };
    c.code_length = k;
    c.seed = seed;
    c
}

fn main() {
    let options = HarnessOptions::from_env();
    let sweep = code_length_sweep(options.full);
    println!("Figure 7b — average time to complete vs code length");
    println!(
        "mode: {} | k sweep: {:?} | runs: {}",
        if options.full { "full" } else { "quick" },
        sweep,
        options.runs
    );

    let mut series: Vec<TimeSeries> =
        SchemeKind::ALL.iter().map(|s| TimeSeries::new(s.label())).collect();
    let mut rows = Vec::new();
    for &k in &sweep {
        let mut row = vec![k.to_string()];
        for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
            let mut avg = 0.0;
            for run in 0..options.runs {
                let report =
                    Engine::new(config(&options, scheme, k, options.seed + run as u64)).run();
                avg += report.avg_time_to_complete;
            }
            avg /= options.runs as f64;
            series[i].push(k as f64, avg);
            row.push(fmt_f(avg, 1));
        }
        rows.push(row);
    }

    let headers: Vec<&str> =
        std::iter::once("k").chain(SchemeKind::ALL.iter().map(|s| s.label())).collect();
    print_table("Average time to complete (gossip periods)", &headers, &rows);

    // Relative overhead of LTNC vs RLNC (the paper reports ≈ +30 % that
    // decreases with k).
    let mut ratio_rows = Vec::new();
    for &k in &sweep {
        let ltnc = series[1].y_at(k as f64).unwrap_or(f64::NAN);
        let rlnc = series[2].y_at(k as f64).unwrap_or(f64::NAN);
        ratio_rows.push(vec![k.to_string(), fmt_f((ltnc / rlnc - 1.0) * 100.0, 1)]);
    }
    print_table("LTNC completion-time overhead vs RLNC (%)", &["k", "overhead %"], &ratio_rows);

    let refs: Vec<&TimeSeries> = series.iter().collect();
    print_series("Figure 7b data (k vs average time to complete)", &refs);
}
