//! Figure 7a: convergence — proportion of nodes that decoded the full content
//! as a function of time (gossip periods), for WC, LTNC and RLNC.
//!
//! Paper setting: N = 1000 nodes, k = 2048 packets of 256 KB. The quick mode
//! scales the network down so the three curves are produced in seconds; the
//! `--full` mode uses the paper-scale network (expect minutes).
//!
//! Expected shape (paper): RLNC converges first, LTNC slightly later (≈ 30 %
//! slower), WC clearly last — coding pays off, and LTNC keeps most of RLNC's
//! dissemination performance.

use ltnc_bench::{fmt_f, print_series, print_table, HarnessOptions};
use ltnc_metrics::TimeSeries;
use ltnc_sim::{Engine, SchemeKind, SimConfig};

fn config(options: &HarnessOptions, scheme: SchemeKind, seed: u64) -> SimConfig {
    let mut c = if options.full {
        SimConfig::paper_reference(scheme)
    } else {
        let mut c = SimConfig::quick(scheme);
        c.nodes = 100;
        c.code_length = 64;
        c.max_periods = 20_000;
        c
    };
    c.seed = seed;
    c
}

fn main() {
    let options = HarnessOptions::from_env();
    println!("Figure 7a — convergence (proportion of complete nodes vs gossip period)");
    println!(
        "mode: {} | runs per scheme: {}",
        if options.full { "full (paper scale)" } else { "quick (scaled down)" },
        options.runs
    );

    let mut curves: Vec<TimeSeries> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for scheme in SchemeKind::ALL {
        // The convergence curve is reported for a single representative run
        // (as in the paper); completion statistics are averaged over runs.
        let mut avg_completion = 0.0;
        let mut representative: Option<TimeSeries> = None;
        for run in 0..options.runs {
            let report = Engine::new(config(&options, scheme, options.seed + run as u64)).run();
            avg_completion += report.avg_time_to_complete;
            if run == 0 {
                representative = Some(report.convergence.clone());
            }
        }
        avg_completion /= options.runs as f64;
        let curve = representative.expect("at least one run");
        rows.push(vec![
            scheme.label().to_string(),
            fmt_f(avg_completion, 1),
            fmt_f(curve.first_x_reaching(50.0).unwrap_or(f64::NAN), 1),
            fmt_f(curve.first_x_reaching(100.0).unwrap_or(f64::NAN), 1),
        ]);
        curves.push(curve);
    }

    print_table(
        "Completion summary (gossip periods)",
        &["scheme", "avg time to complete", "50% of nodes", "100% of nodes"],
        &rows,
    );
    let refs: Vec<&TimeSeries> = curves.iter().collect();
    print_series("Figure 7a data (period vs % complete)", &refs);
}
