//! Figure-reproduction harness for the LTNC paper (ICDCS 2010).
//!
//! Every table and figure of the paper's evaluation has a dedicated binary in
//! `src/bin/` that regenerates it:
//!
//! | Binary              | Paper artifact | What it prints |
//! |----------------------|----------------|----------------|
//! | `fig2_soliton`       | Figure 2       | Robust Soliton pmf vs degree |
//! | `fig7a_convergence`  | Figure 7a      | % of complete nodes vs gossip period, WC/LTNC/RLNC |
//! | `fig7b_completion`   | Figure 7b      | average time to complete vs code length |
//! | `fig7c_overhead`     | Figure 7c      | communication overhead vs code length (LTNC) |
//! | `fig8_cost`          | Figure 8a–8d   | recoding/decoding cost, control/data, vs code length |
//! | `stats_recoding`     | §III-B/§III-C in-text numbers | degree-draw acceptance, build accuracy, occurrence spread, redundancy catches |
//! | `ablations`          | DESIGN.md §5   | refinement / redundancy-detection / feedback ablations |
//!
//! The Criterion benches in `benches/` measure wall-clock time of the same
//! operations (GF(2) primitives, Soliton sampling, recoding, decoding, one
//! full dissemination step) so that trends can also be checked against real
//! time rather than the operation-count cost model alone.
//!
//! All binaries accept `--quick` (default) or `--full`; `--full` uses the
//! paper-scale parameters (N = 1000, k = 2048) and takes correspondingly
//! longer. Output is plain text tables plus gnuplot-friendly TSV blocks, so
//! results can be diffed against `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;

use ltnc_metrics::TimeSeries;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Run the paper-scale configuration instead of the quick one.
    pub full: bool,
    /// Number of Monte-Carlo runs to average (the paper uses 25).
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions { full: false, runs: 3, seed: 42 }
    }
}

impl HarnessOptions {
    /// Parses options from an iterator of arguments (usually `std::env::args`).
    ///
    /// Recognised flags: `--full`, `--quick`, `--runs <n>`, `--seed <n>`.
    /// Unknown flags are ignored so binaries can add their own.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = HarnessOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => options.full = true,
                "--quick" => options.full = false,
                "--runs" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        options.runs = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        options.seed = v;
                    }
                }
                _ => {}
            }
        }
        options.runs = options.runs.max(1);
        options
    }

    /// Parses the options from the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(env::args().skip(1))
    }
}

/// Prints a table: a header row followed by aligned data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Prints one or more series as a gnuplot-friendly TSV block with a comment header.
pub fn print_series(title: &str, series: &[&TimeSeries]) {
    println!("\n# {title}");
    for s in series {
        println!("# series: {}", s.label());
        print!("{}", s.to_tsv());
        println!();
    }
}

/// Formats a float with a fixed number of decimals, for table cells.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// The code lengths swept by Figures 7b/7c (paper: 512 → 4096) scaled to the
/// harness mode.
#[must_use]
pub fn code_length_sweep(full: bool) -> Vec<usize> {
    if full {
        vec![512, 1024, 2048, 3072, 4096]
    } else {
        vec![16, 32, 64, 96, 128]
    }
}

/// The code lengths swept by Figure 8 (paper: 400 → 2000) scaled to the
/// harness mode.
#[must_use]
pub fn cost_code_length_sweep(full: bool) -> Vec<usize> {
    if full {
        vec![400, 800, 1200, 1600, 2000]
    } else {
        vec![32, 64, 96, 128, 160]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_quick() {
        let o = HarnessOptions::default();
        assert!(!o.full);
        assert!(o.runs >= 1);
    }

    #[test]
    fn parse_recognises_flags() {
        let o = HarnessOptions::parse(args(&["--full", "--runs", "25", "--seed", "7"]));
        assert!(o.full);
        assert_eq!(o.runs, 25);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parse_ignores_unknown_flags_and_clamps_runs() {
        let o = HarnessOptions::parse(args(&["--wat", "--runs", "0"]));
        assert!(!o.full);
        assert_eq!(o.runs, 1);
        let o = HarnessOptions::parse(args(&["--full", "--quick"]));
        assert!(!o.full);
    }

    #[test]
    fn sweeps_are_increasing_and_mode_dependent() {
        for sweep in [
            code_length_sweep(false),
            code_length_sweep(true),
            cost_code_length_sweep(false),
            cost_code_length_sweep(true),
        ] {
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(code_length_sweep(true).contains(&2048));
        assert!(cost_code_length_sweep(true).contains(&2000));
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 0), "2");
    }
}
