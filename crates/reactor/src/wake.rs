//! Cross-thread wakeups for a parked poller.
//!
//! A [`Waker`] is a self-connected nonblocking UDP socket: `wake()`
//! sends one byte to it, which makes the descriptor readable and pops
//! the owning worker out of `epoll_wait`. Wakeups **coalesce** — if the
//! socket buffer already holds undrained wake bytes, further sends may
//! fail with a full buffer, which is fine: a wakeup is already pending.
//! The worker calls [`Waker::drain`] once per loop iteration and then
//! checks its control queue, so N rapid `wake()` calls cost at most one
//! extra loop turn, never N.

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};

/// Wakes a parked poller by making a registered descriptor readable.
///
/// Cheap to clone via `Arc`; `wake()` is safe from any thread.
pub struct Waker {
    socket: UdpSocket,
}

impl Waker {
    /// Binds a loopback UDP socket connected to itself.
    ///
    /// # Errors
    ///
    /// Propagates bind/connect failures (e.g. no loopback interface).
    pub fn new() -> io::Result<Waker> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(socket.local_addr()?)?;
        socket.set_nonblocking(true)?;
        Ok(Waker { socket })
    }

    /// The descriptor to register with a [`crate::Poller`].
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.socket.as_raw_fd()
    }

    /// Makes the waker readable. Send errors are deliberately ignored:
    /// a full socket buffer means wake bytes are already queued, so the
    /// sleeper is guaranteed to wake anyway.
    pub fn wake(&self) {
        let _ = self.socket.send(&[1]);
    }

    /// Consumes all pending wake bytes. Returns how many wakeups had
    /// coalesced since the last drain.
    pub fn drain(&self) -> usize {
        let mut buf = [0u8; 64];
        let mut drained = 0;
        loop {
            match self.socket.recv(&mut buf) {
                Ok(n) => drained += n,
                Err(_) => return drained,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Event, Poller};
    use std::time::Duration;

    #[test]
    fn wake_makes_the_fd_readable_and_drain_clears_it() {
        let waker = Waker::new().expect("waker");
        let poller = Poller::new().expect("poller");
        poller.register(waker.fd(), 9).expect("register");

        waker.wake();
        let mut events: Vec<Event> = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !events.iter().any(|e| e.token == 9) && std::time::Instant::now() < deadline {
            poller.wait(&mut events, Some(Duration::from_millis(50))).expect("wait");
        }
        assert!(events.iter().any(|e| e.token == 9), "wake() must rouse the poller");
        assert!(waker.drain() >= 1, "the wake byte must be drained");
        assert_eq!(waker.drain(), 0, "a second drain finds nothing");
    }

    #[test]
    fn rapid_wakes_coalesce_into_bounded_bytes() {
        let waker = Waker::new().expect("waker");
        for _ in 0..10_000 {
            waker.wake();
        }
        // Coalescing: the socket buffer bounds the backlog; drain sees
        // at least one byte, far fewer than the wake() call count once
        // the buffer fills and sends start failing silently.
        let drained = waker.drain();
        assert!(drained >= 1, "at least one wake byte must be pending");
        assert_eq!(waker.drain(), 0);
    }
}
