//! Instrumentation hooks for the sharded scheduler.
//!
//! `ltnc-reactor` deliberately depends on nothing, so it cannot own
//! histograms or trace rings itself. Instead the worker loop reports
//! through this seam: a [`ShardObserver`] installed via
//! `Reactor::start_observed` receives every scheduler-level occurrence
//! (poll completions, dispatch latencies, timer lag, queue drains) and
//! the embedding crate turns them into whatever metrics family it
//! keeps. Every method has a no-op default, and the loop takes its
//! extra `Instant::now()` readings only when an observer is installed —
//! with `None` the instrumented loop compiles down to the bare one.
//!
//! Observer methods are called from worker threads, possibly several
//! concurrently (one per shard): implementations must be `Sync`, cheap
//! and non-blocking, exactly like a `TraceSink`.

use std::time::Duration;

/// The kind of callback a [`ShardObserver::dispatched`] measurement
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// A [`crate::Driven::on_readable`] callback (socket drain).
    Readable,
    /// A [`crate::Driven::on_timer`] callback (tick or release).
    Timer,
    /// A [`crate::Driven::on_control`] callback (injected message).
    Control,
}

impl Dispatch {
    /// Stable lowercase label (used in metric labels and reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dispatch::Readable => "readable",
            Dispatch::Timer => "timer",
            Dispatch::Control => "control",
        }
    }
}

/// Receives scheduler-level events from every worker of a `Reactor`.
///
/// `shard` is always the worker index (`0..workers`). All methods
/// default to no-ops so an observer implements only what it measures.
pub trait ShardObserver: Send + Sync + 'static {
    /// A poll completed: the shard waited `waited` in the poller and
    /// `events` readiness events came back (the waker's own event, when
    /// present, is included).
    fn poll_completed(&self, _shard: usize, _waited: Duration, _events: usize) {}

    /// The shard's waker drained `coalesced` wake bytes — cross-shard
    /// sends that collapsed into one readiness event.
    fn wakeups_drained(&self, _shard: usize, _coalesced: usize) {}

    /// The control queue yielded `messages` messages in one drain round.
    /// Only called for non-empty drains.
    fn control_drained(&self, _shard: usize, _messages: usize) {}

    /// One node callback of the given kind ran for `took`.
    fn dispatched(&self, _shard: usize, _kind: Dispatch, _took: Duration) {}

    /// A timer fired `lag` past its scheduled deadline (zero when the
    /// wheel was on time to its granularity).
    fn timer_lag(&self, _shard: usize, _lag: Duration) {}

    /// One loop turn (poll → dispatch → timers) ended with
    /// `timers_pending` timers still armed on the shard's wheel.
    fn turn_completed(&self, _shard: usize, _timers_pending: usize) {}
}
