//! Readiness polling: an `epoll` backend on Linux, a degraded portable
//! fallback elsewhere.
//!
//! The [`Poller`] watches a set of file descriptors for *read* readiness
//! and reports edges as [`Event`]s carrying the caller-chosen token. Two
//! properties every consumer must respect:
//!
//! * **Edge-triggered**: on Linux, readiness is reported once per edge
//!   (`EPOLLET`) — the handler must drain the descriptor to `WouldBlock`
//!   before returning, or it will never hear about the remainder.
//! * **Spurious wakeups are legal**: an [`Event`] is a *hint*, not a
//!   guarantee that a read will succeed. The fallback backend (non-Linux
//!   builds) reports every registered descriptor readable on a short
//!   cadence, so handlers built on nonblocking reads run correctly —
//!   just less efficiently — on any platform. Handlers must treat a read
//!   returning `WouldBlock` immediately as normal.
//!
//! The epoll bindings are hand-declared `extern "C"` symbols (the build
//! environment vendors no `libc` crate; std already links the C runtime
//! that provides them). All `unsafe` in this crate lives here, behind
//! this safe wrapper.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report: the token passed to [`Poller::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token identifying the ready descriptor.
    pub token: u64,
}

/// Caps a poll timeout at ~100ms so a waiter re-checks control state on
/// a bounded cadence even if a wakeup datagram is somehow lost.
pub(crate) const MAX_WAIT: Duration = Duration::from_millis(100);

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o200_0000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLET: u32 = 1 << 31;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// A safe owner of one epoll instance.
    pub struct Epoll {
        epfd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is reported through errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { epfd })
        }

        pub fn add(&self, fd: RawFd, token: u64, flags: u32) -> io::Result<()> {
            let mut event = EpollEvent { events: flags, data: token };
            // SAFETY: `event` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels require a non-null event pointer
            // even for EPOLL_CTL_DEL; passing one is always valid.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Waits up to `timeout_ms` (`-1` blocks) and appends the ready
        /// tokens to `out`. `EINTR` is reported as an empty wakeup.
        pub fn wait(&self, out: &mut Vec<u64>, timeout_ms: i32) -> io::Result<()> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: the buffer pointer and capacity describe a live,
            // properly sized array for the duration of the call.
            let rc = unsafe {
                epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for event in events.iter().take(rc as usize) {
                // Copy out of the (possibly packed) struct before use.
                let data = event.data;
                out.push(data);
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd is a descriptor this struct owns exclusively.
            let _ = unsafe { close(self.epfd) };
        }
    }
}

/// Watches registered descriptors for read readiness.
///
/// See the module docs for the edge-triggered and spurious-wakeup
/// contracts every consumer must honour.
pub struct Poller {
    #[cfg(target_os = "linux")]
    epoll: sys::Epoll,
    /// Registered `(fd, token)` pairs — the whole readiness state of the
    /// fallback backend (unused as such on Linux, where it only backs
    /// [`Poller::deregister`] bookkeeping symmetry).
    #[cfg(not(target_os = "linux"))]
    registered: std::sync::Mutex<Vec<(RawFd, u64)>>,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failures (Linux); infallible elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller { epoll: sys::Epoll::new()? })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller { registered: std::sync::Mutex::new(Vec::new()) })
        }
    }

    /// Starts watching `fd` for read readiness, reporting it as `token`.
    /// The descriptor must already be in nonblocking mode and must stay
    /// open until [`Poller::deregister`] or the poller is dropped.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (e.g. registering the same fd
    /// twice).
    pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            self.epoll.add(fd, token, sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLET)
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registered.lock().expect("poller registry poisoned").push((fd, token));
            Ok(())
        }
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (e.g. an fd that was never
    /// registered).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            self.epoll.del(fd)
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.registered.lock().expect("poller registry poisoned").retain(|&(f, _)| f != fd);
            Ok(())
        }
    }

    /// Blocks until at least one descriptor is ready or `timeout`
    /// elapses, appending ready tokens to `events` (cleared first). A
    /// timeout (or `EINTR`) leaves `events` empty — never an error. A
    /// `None` timeout waits the internal 100ms ceiling: the poller
    /// never parks unboundedly, so a lost wakeup costs a beat, not a
    /// hang.
    ///
    /// # Errors
    ///
    /// Propagates fatal `epoll_wait` failures.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout = timeout.unwrap_or(MAX_WAIT).min(MAX_WAIT);
        #[cfg(target_os = "linux")]
        {
            // Round sub-millisecond timeouts up, so short timer deadlines
            // wait (and then fire) instead of spinning at timeout 0.
            let millis = timeout.as_millis().try_into().unwrap_or(i32::MAX).max(1);
            let mut tokens = Vec::with_capacity(16);
            self.epoll.wait(&mut tokens, millis)?;
            events.extend(tokens.into_iter().map(|token| Event { token }));
            Ok(())
        }
        #[cfg(not(target_os = "linux"))]
        {
            // Degraded portable backend: sleep a short beat, then report
            // every registered descriptor readable. Pure spurious-wakeup
            // pressure — correct (handlers use nonblocking reads), just
            // not efficient. Linux builds never take this path.
            std::thread::sleep(timeout.min(Duration::from_millis(2)));
            let registered = self.registered.lock().expect("poller registry poisoned");
            events.extend(registered.iter().map(|&(_, token)| Event { token }));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_fires_on_datagram_arrival() {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(socket.as_raw_fd(), 42).expect("register");

        let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        sender.send_to(b"ping", socket.local_addr().expect("addr")).expect("send");

        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            poller.wait(&mut events, Some(Duration::from_millis(50))).expect("wait");
        }
        assert!(events.iter().any(|e| e.token == 42), "datagram arrival must wake the poller");
    }

    #[test]
    fn timeout_returns_empty_not_error() {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(socket.as_raw_fd(), 7).expect("register");
        let mut events = vec![Event { token: 99 }];
        poller.wait(&mut events, Some(Duration::from_millis(5))).expect("wait");
        // Linux: empty (nothing readable). Fallback: may spuriously
        // report token 7 — but never an error, and never a stale token.
        assert!(events.iter().all(|e| e.token == 7));
    }

    #[test]
    fn deregistered_fds_stop_reporting() {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller.register(socket.as_raw_fd(), 1).expect("register");
        poller.deregister(socket.as_raw_fd()).expect("deregister");

        let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        sender.send_to(b"ping", socket.local_addr().expect("addr")).expect("send");
        std::thread::sleep(Duration::from_millis(20));
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20))).expect("wait");
        assert!(events.is_empty(), "a deregistered fd must not wake the poller");
    }
}
