//! The sharded scheduler: M node state machines per worker thread.
//!
//! A [`Reactor`] partitions its nodes round-robin across worker threads
//! (node `i` lands on worker `i % workers`). Each worker owns one
//! [`crate::Poller`], one [`crate::TimerWheel`] and one [`crate::Waker`],
//! and runs a readiness loop: drain control messages, wait for readable
//! descriptors or the next timer deadline, dispatch
//! [`Driven::on_readable`] / [`Driven::on_timer`] callbacks. Nodes never
//! migrate between workers, so a node's callbacks are totally ordered —
//! a state machine needs no internal locking.
//!
//! Shutdown is graceful: each worker performs one final
//! readiness-independent [`Driven::on_readable`] sweep over its nodes
//! (catching datagrams that arrived after the last poll) before
//! collecting every node's [`Driven::finish`] output.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::observe::{Dispatch, ShardObserver};
use crate::poll::{Event, Poller, MAX_WAIT};
use crate::timer::{TimerId, TimerWheel};
use crate::wake::Waker;

/// Token reserved for the per-worker waker descriptor; node tokens are
/// their local indices, which stay far below this.
const WAKER_TOKEN: u64 = u64::MAX;

/// Timer granularity of each worker's wheel: fine enough for the 2ms
/// protocol tick, coarse enough to keep slot sweeps cheap.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(1);

/// Slots per wheel — a 512ms horizon before timers need extra rounds.
const WHEEL_SLOTS: usize = 512;

/// Per-worker scratch buffer size: one max-size UDP datagram.
const SCRATCH_LEN: usize = 64 * 1024;

/// A node state machine drivable by a [`Reactor`] worker.
///
/// All callbacks for one node run on the same worker thread, in a total
/// order; implementations need no synchronisation of their own state.
/// The descriptor returned by [`Driven::fd`] is registered
/// edge-triggered: `on_readable` must drain it to `WouldBlock` (spurious
/// calls with nothing readable are legal and must be tolerated).
pub trait Driven: Send + 'static {
    /// Message type the owner can inject via [`Reactor::send`].
    type Control: Send;
    /// Value produced when the node is torn down.
    type Output: Send;

    /// The (nonblocking) descriptor to watch for read readiness. Must
    /// stay stable and open for the node's lifetime.
    fn fd(&self) -> RawFd;

    /// Called once on the owning worker before the first poll — the
    /// place to arm initial timers and drain anything that arrived
    /// before registration.
    fn on_start(&mut self, cx: &mut Cx);

    /// The node's descriptor looks readable (possibly spuriously).
    fn on_readable(&mut self, cx: &mut Cx);

    /// A timer armed via [`Cx::arm`] with this `tag` fired.
    fn on_timer(&mut self, tag: u64, cx: &mut Cx);

    /// A control message sent via [`Reactor::send`] arrived.
    fn on_control(&mut self, msg: Self::Control, cx: &mut Cx);

    /// Tears the node down and extracts its output. Called exactly once
    /// per node, after the final shutdown sweep.
    fn finish(&mut self) -> Self::Output;
}

/// Per-dispatch context handed to every [`Driven`] callback: the
/// coarsened current time, timer arm/cancel for the node being
/// dispatched, and a shared scratch buffer for datagram reads.
pub struct Cx<'a> {
    now: Instant,
    node: usize,
    wheel: &'a mut TimerWheel,
    routes: &'a mut HashMap<TimerId, (usize, u64)>,
    scratch: &'a mut Vec<u8>,
}

impl Cx<'_> {
    /// The instant captured at the top of the current loop iteration —
    /// cheap, and consistent across every dispatch in the iteration.
    #[must_use]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Arms a timer that fires `after` from [`Cx::now`], delivering
    /// `tag` to this node's [`Driven::on_timer`]. Timers never fire
    /// early; they may fire up to a wheel granularity (~1ms) late.
    pub fn arm(&mut self, after: Duration, tag: u64) -> TimerId {
        let id = self.wheel.schedule_at(self.now + after);
        self.routes.insert(id, (self.node, tag));
        id
    }

    /// Cancels a previously armed timer. Returns `false` when it
    /// already fired or was already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.routes.remove(&id);
        self.wheel.cancel(id)
    }

    /// A worker-shared 64 KiB scratch buffer for datagram reads. The
    /// contents are only valid until the borrow ends — copy out what
    /// must survive the dispatch.
    pub fn scratch(&mut self) -> &mut [u8] {
        self.scratch.as_mut_slice()
    }
}

enum WorkerMsg<C> {
    Node(usize, C),
    Stop,
}

struct WorkerHandle<D: Driven> {
    tx: mpsc::Sender<WorkerMsg<D::Control>>,
    waker: Arc<Waker>,
    join: JoinHandle<Vec<D::Output>>,
}

/// Runs a fleet of [`Driven`] node state machines across worker threads.
pub struct Reactor<D: Driven> {
    workers: Vec<WorkerHandle<D>>,
    node_count: usize,
}

impl<D: Driven> Reactor<D> {
    /// Partitions `nodes` round-robin across `workers` threads,
    /// registers every descriptor, and starts the readiness loops.
    /// `on_start` runs for each node (in local order) before its worker
    /// polls. An empty node list is fine — workers idle until
    /// [`Reactor::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates poller/waker creation and descriptor registration
    /// failures; no threads are left running on error.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn start(nodes: Vec<D>, workers: usize) -> io::Result<Reactor<D>> {
        Reactor::start_observed(nodes, workers, None)
    }

    /// [`Reactor::start`] with an instrumentation observer installed:
    /// every worker reports its scheduler-level events (poll waits,
    /// dispatch latencies, timer lag, queue drains) to `observer`, which
    /// is shared by all shards and called with the worker index. Passing
    /// `None` is exactly [`Reactor::start`] — the loop takes no extra
    /// clock readings when nobody listens.
    ///
    /// # Errors
    ///
    /// Propagates poller/waker creation and descriptor registration
    /// failures; no threads are left running on error.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn start_observed(
        nodes: Vec<D>,
        workers: usize,
        observer: Option<Arc<dyn ShardObserver>>,
    ) -> io::Result<Reactor<D>> {
        assert!(workers > 0, "a reactor needs at least one worker");

        // Partition round-robin: global index g -> worker g % workers,
        // local index g / workers (so global = worker + local * workers).
        let node_count = nodes.len();
        let mut shards: Vec<Vec<D>> = (0..workers).map(|_| Vec::new()).collect();
        for (global, node) in nodes.into_iter().enumerate() {
            shards[global % workers].push(node);
        }

        // Create pollers and register descriptors *before* spawning, so
        // setup failures surface as io::Error instead of thread panics.
        let mut prepared = Vec::with_capacity(workers);
        for shard in shards {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            poller.register(waker.fd(), WAKER_TOKEN)?;
            for (local, node) in shard.iter().enumerate() {
                poller.register(node.fd(), local as u64)?;
            }
            prepared.push((poller, waker, shard));
        }

        let mut handles = Vec::with_capacity(workers);
        for (index, (poller, waker, shard)) in prepared.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<WorkerMsg<D::Control>>();
            let worker_waker = Arc::clone(&waker);
            let worker_observer = observer.clone();
            let join = std::thread::Builder::new()
                .name(format!("ltnc-reactor-{index}"))
                .spawn(move || {
                    worker_loop(poller, worker_waker, shard, &rx, index, worker_observer)
                })
                .expect("spawn reactor worker");
            handles.push(WorkerHandle { tx, waker, join });
        }
        Ok(Reactor { workers: handles, node_count })
    }

    /// Number of node state machines this reactor runs.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Delivers `msg` to node `node` (its original index in the vec
    /// passed to [`Reactor::start`]) and wakes the owning worker.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range or the owning worker has
    /// already stopped.
    pub fn send(&self, node: usize, msg: D::Control) {
        assert!(node < self.node_count, "node index {node} out of range");
        let worker = &self.workers[node % self.workers.len()];
        let local = node / self.workers.len();
        worker.tx.send(WorkerMsg::Node(local, msg)).expect("reactor worker stopped");
        worker.waker.wake();
    }

    /// Stops every worker, runs the graceful shutdown sweep, and
    /// returns each node's [`Driven::finish`] output in the order the
    /// nodes were originally passed to [`Reactor::start`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker thread's panic, if any.
    #[must_use]
    pub fn shutdown(self) -> Vec<D::Output> {
        for worker in &self.workers {
            // A worker that already panicked has dropped its receiver;
            // the failed send is fine — join below surfaces the panic.
            let _ = worker.tx.send(WorkerMsg::Stop);
            worker.waker.wake();
        }
        let worker_count = self.workers.len();
        let mut outputs: Vec<Option<D::Output>> = Vec::new();
        outputs.resize_with(self.node_count, || None);
        for (w, worker) in self.workers.into_iter().enumerate() {
            let locals = match worker.join.join() {
                Ok(locals) => locals,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            for (local, output) in locals.into_iter().enumerate() {
                outputs[w + local * worker_count] = Some(output);
            }
        }
        outputs.into_iter().map(|slot| slot.expect("worker returned every node")).collect()
    }
}

/// One worker's readiness loop; returns the finish outputs of its shard
/// in local order. `shard` is the worker index reported to `observer`;
/// with no observer installed the loop takes no instrumentation clock
/// readings at all.
fn worker_loop<D: Driven>(
    poller: Poller,
    waker: Arc<Waker>,
    mut nodes: Vec<D>,
    control: &mpsc::Receiver<WorkerMsg<D::Control>>,
    shard: usize,
    observer: Option<Arc<dyn ShardObserver>>,
) -> Vec<D::Output> {
    let mut wheel = TimerWheel::new(WHEEL_GRANULARITY, WHEEL_SLOTS, Instant::now());
    let mut routes: HashMap<TimerId, (usize, u64)> = HashMap::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut events: Vec<Event> = Vec::new();

    let mut start_now = Instant::now();
    for (local, node) in nodes.iter_mut().enumerate() {
        let mut cx = Cx {
            now: start_now,
            node: local,
            wheel: &mut wheel,
            routes: &mut routes,
            scratch: &mut scratch,
        };
        node.on_start(&mut cx);
        start_now = Instant::now();
    }

    let mut stop = false;
    while !stop {
        // Drain the control queue every iteration — not only after a
        // waker event — so a control message racing a timer-bound wait
        // is never delayed by a full poll cycle.
        let mut drained: usize = 0;
        loop {
            match control.try_recv() {
                Ok(WorkerMsg::Node(local, msg)) => {
                    let now = Instant::now();
                    let mut cx = Cx {
                        now,
                        node: local,
                        wheel: &mut wheel,
                        routes: &mut routes,
                        scratch: &mut scratch,
                    };
                    drained += 1;
                    let timed = observer.as_ref().map(|_| Instant::now());
                    nodes[local].on_control(msg, &mut cx);
                    if let (Some(obs), Some(started)) = (&observer, timed) {
                        obs.dispatched(shard, Dispatch::Control, started.elapsed());
                    }
                }
                Ok(WorkerMsg::Stop) => {
                    stop = true;
                    break;
                }
                Err(mpsc::TryRecvError::Empty | mpsc::TryRecvError::Disconnected) => break,
            }
        }
        if let Some(obs) = observer.as_ref().filter(|_| drained > 0) {
            obs.control_drained(shard, drained);
        }
        if stop {
            break;
        }

        let timeout = wheel
            .next_deadline()
            .map_or(MAX_WAIT, |at| at.saturating_duration_since(Instant::now()));
        let poll_started = observer.as_ref().map(|_| Instant::now());
        poller.wait(&mut events, Some(timeout)).expect("reactor poll failed");

        let now = Instant::now();
        if let (Some(obs), Some(started)) = (&observer, poll_started) {
            obs.poll_completed(shard, now.saturating_duration_since(started), events.len());
        }
        for event in &events {
            if event.token == WAKER_TOKEN {
                let coalesced = waker.drain();
                if let Some(obs) = &observer {
                    obs.wakeups_drained(shard, coalesced);
                }
                continue;
            }
            let local = usize::try_from(event.token).expect("node token fits usize");
            if local >= nodes.len() {
                continue;
            }
            let mut cx = Cx {
                now,
                node: local,
                wheel: &mut wheel,
                routes: &mut routes,
                scratch: &mut scratch,
            };
            let timed = observer.as_ref().map(|_| Instant::now());
            nodes[local].on_readable(&mut cx);
            if let (Some(obs), Some(started)) = (&observer, timed) {
                obs.dispatched(shard, Dispatch::Readable, started.elapsed());
            }
        }

        for (id, deadline) in wheel.poll_expired(now) {
            let Some((local, tag)) = routes.remove(&id) else { continue };
            if let Some(obs) = &observer {
                obs.timer_lag(shard, now.saturating_duration_since(deadline));
            }
            let mut cx = Cx {
                now,
                node: local,
                wheel: &mut wheel,
                routes: &mut routes,
                scratch: &mut scratch,
            };
            let timed = observer.as_ref().map(|_| Instant::now());
            nodes[local].on_timer(tag, &mut cx);
            if let (Some(obs), Some(started)) = (&observer, timed) {
                obs.dispatched(shard, Dispatch::Timer, started.elapsed());
            }
        }
        if let Some(obs) = &observer {
            obs.turn_completed(shard, wheel.len());
        }
    }

    // Graceful drain: one readiness-independent sweep so datagrams that
    // landed after the last poll still reach their state machines.
    let now = Instant::now();
    for (local, node) in nodes.iter_mut().enumerate() {
        let mut cx =
            Cx { now, node: local, wheel: &mut wheel, routes: &mut routes, scratch: &mut scratch };
        node.on_readable(&mut cx);
    }
    nodes.iter_mut().map(Driven::finish).collect()
}
