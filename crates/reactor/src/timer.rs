//! A hashed timer wheel for per-node deadlines (gossip ticks, pending
//! TTLs, held-datagram releases).
//!
//! The wheel trades exactness for O(1) schedule/cancel: deadlines are
//! bucketed into fixed-granularity slots, so a timer fires on the first
//! [`TimerWheel::poll_expired`] *at or after* its deadline — never
//! early, up to one granularity late (plus however long the caller
//! slept). Expirations are returned sorted by deadline, ties by
//! schedule order, so a burst of same-slot timers still fires in a
//! deterministic order.
//!
//! Cancellation is lazy: [`TimerWheel::cancel`] marks the id and the
//! entry is discarded when its slot drains, so cancelling never scans.

use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Handle to one scheduled timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// One scheduled entry, parked in the slot its deadline hashes to.
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: u64,
    deadline: Instant,
    /// Full wheel revolutions left before this entry is due (deadlines
    /// beyond the horizon park in their slot for multiple laps).
    rounds: usize,
}

/// A fixed-granularity hashed timer wheel.
pub struct TimerWheel {
    granularity: Duration,
    slots: Vec<Vec<Entry>>,
    /// Slot the cursor points at — the one `now` falls into.
    cursor: usize,
    /// Slot-aligned instant the cursor was last advanced to.
    now: Instant,
    next_id: u64,
    /// Ids scheduled and neither fired nor cancelled.
    live: HashSet<u64>,
    /// Ids cancelled but still parked in a slot (discarded on drain).
    cancelled: HashSet<u64>,
}

impl TimerWheel {
    /// A wheel of `slots` buckets of `granularity` each, anchored at
    /// `origin` (deadlines are measured against it; pass `Instant::now()`
    /// for wall-clock use, a fixed instant for deterministic tests).
    ///
    /// # Panics
    ///
    /// Panics when `granularity` is zero or `slots` is zero.
    #[must_use]
    pub fn new(granularity: Duration, slots: usize, origin: Instant) -> TimerWheel {
        assert!(!granularity.is_zero(), "timer wheel granularity must be non-zero");
        assert!(slots > 0, "timer wheel needs at least one slot");
        TimerWheel {
            granularity,
            slots: vec![Vec::new(); slots],
            cursor: 0,
            now: origin,
            next_id: 1,
            live: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Number of timers scheduled and not yet fired or cancelled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live timer is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules a timer due at `deadline`. Deadlines at or before the
    /// wheel's current position fire on the next
    /// [`TimerWheel::poll_expired`].
    pub fn schedule_at(&mut self, deadline: Instant) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id);
        // Round the displacement *up*: a timer must never fire before
        // its deadline, so it parks in the first slot whose aligned time
        // is >= deadline.
        let delta = deadline.saturating_duration_since(self.now);
        let gran = self.granularity.as_nanos().max(1);
        // ... and at least one slot ahead: a due/past deadline parks in
        // the next slot the cursor sweeps, not the slot it sits in (which
        // would strand it for a full revolution).
        let ticks = usize::try_from(delta.as_nanos().div_ceil(gran)).unwrap_or(usize::MAX).max(1);
        let slot = (self.cursor + ticks % self.slots.len()) % self.slots.len();
        // The cursor reaches `slot` for the first time on sweep
        // ((ticks - 1) % slots) + 1, so the entry must sit out
        // (ticks - 1) / slots revolutions — NOT ticks / slots, which for
        // exact multiples of the slot count would overshoot by one lap.
        let rounds = (ticks - 1) / self.slots.len();
        self.slots[slot].push(Entry { id, deadline, rounds });
        TimerId(id)
    }

    /// Schedules a timer due `after` from the wheel's current position
    /// (the last instant passed to [`TimerWheel::poll_expired`], slot
    /// aligned — not wall-clock now).
    pub fn schedule(&mut self, after: Duration) -> TimerId {
        self.schedule_at(self.now + after)
    }

    /// Cancels a scheduled timer. Returns `false` when the id already
    /// fired or was already cancelled — exactly one of fire/cancel wins.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            return true;
        }
        false
    }

    /// Advances the wheel to `now` and returns everything that became
    /// due, sorted by deadline (ties by schedule order). Cancelled
    /// entries are discarded silently.
    pub fn poll_expired(&mut self, now: Instant) -> Vec<(TimerId, Instant)> {
        let mut expired: Vec<Entry> = Vec::new();
        while self.now + self.granularity <= now {
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.now += self.granularity;
            let slot = &mut self.slots[self.cursor];
            let mut keep = Vec::new();
            for mut entry in slot.drain(..) {
                if self.cancelled.remove(&entry.id) {
                    continue;
                }
                if entry.rounds == 0 {
                    self.live.remove(&entry.id);
                    expired.push(entry);
                } else {
                    entry.rounds -= 1;
                    keep.push(entry);
                }
            }
            *slot = keep;
        }
        expired.sort_by_key(|entry| (entry.deadline, entry.id));
        expired.into_iter().map(|entry| (TimerId(entry.id), entry.deadline)).collect()
    }

    /// The earliest live deadline, or `None` when the wheel is empty —
    /// what a poll loop uses to bound its wait. O(entries), called once
    /// per loop iteration.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flatten()
            .filter(|entry| self.live.contains(&entry.id))
            .map(|entry| entry.deadline)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn wheel(origin: Instant) -> TimerWheel {
        TimerWheel::new(Duration::from_millis(1), 64, origin)
    }

    #[test]
    fn fires_in_deadline_order_never_early() {
        let origin = Instant::now();
        let mut w = wheel(origin);
        let late = w.schedule_at(origin + Duration::from_millis(30));
        let early = w.schedule_at(origin + Duration::from_millis(10));
        let mid = w.schedule_at(origin + Duration::from_millis(20));

        assert!(w.poll_expired(origin + Duration::from_millis(9)).is_empty(), "never early");
        let first = w.poll_expired(origin + Duration::from_millis(10));
        assert_eq!(first.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![early]);
        let rest = w.poll_expired(origin + Duration::from_millis(60));
        assert_eq!(rest.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![mid, late]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_burst_fires_in_schedule_order() {
        let origin = Instant::now();
        let mut w = wheel(origin);
        let at = origin + Duration::from_millis(5);
        let ids: Vec<TimerId> = (0..8).map(|_| w.schedule_at(at)).collect();
        let fired = w.poll_expired(origin + Duration::from_millis(6));
        assert_eq!(fired.iter().map(|&(id, _)| id).collect::<Vec<_>>(), ids);
    }

    #[test]
    fn cancellation_wins_exactly_once() {
        let origin = Instant::now();
        let mut w = wheel(origin);
        let id = w.schedule_at(origin + Duration::from_millis(5));
        assert!(w.cancel(id), "first cancel wins");
        assert!(!w.cancel(id), "second cancel is a no-op");
        assert!(w.poll_expired(origin + Duration::from_millis(10)).is_empty());
        assert!(w.is_empty());

        let id = w.schedule_at(origin + Duration::from_millis(12));
        assert_eq!(w.poll_expired(origin + Duration::from_millis(20)).len(), 1);
        assert!(!w.cancel(id), "cancelling a fired timer is a no-op");
    }

    #[test]
    fn deadlines_beyond_the_horizon_survive_full_revolutions() {
        let origin = Instant::now();
        let mut w = wheel(origin); // horizon = 64ms
        let far = w.schedule_at(origin + Duration::from_millis(200));
        // Sweep past the slot twice without reaching the deadline.
        assert!(w.poll_expired(origin + Duration::from_millis(130)).is_empty());
        assert_eq!(w.len(), 1, "far timer still parked");
        let fired = w.poll_expired(origin + Duration::from_millis(200));
        assert_eq!(fired.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![far]);
    }

    #[test]
    fn zero_and_past_deadlines_fire_on_the_next_poll() {
        let origin = Instant::now();
        let mut w = wheel(origin);
        let past = w.schedule_at(origin.checked_sub(Duration::from_millis(5)).unwrap_or(origin));
        let now = w.schedule_at(origin);
        let fired = w.poll_expired(origin + Duration::from_millis(1));
        assert_eq!(fired.len(), 2);
        assert_eq!(fired.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![past, now]);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_live_timer() {
        let origin = Instant::now();
        let mut w = wheel(origin);
        assert_eq!(w.next_deadline(), None);
        let a = w.schedule_at(origin + Duration::from_millis(40));
        let b = w.schedule_at(origin + Duration::from_millis(15));
        assert_eq!(w.next_deadline(), Some(origin + Duration::from_millis(15)));
        assert!(w.cancel(b));
        assert_eq!(w.next_deadline(), Some(origin + Duration::from_millis(40)));
        assert!(w.cancel(a));
        assert_eq!(w.next_deadline(), None);
    }

    proptest! {
        /// Random schedules and cancels: polling at T fires exactly the
        /// non-cancelled timers with deadline <= T, in deadline order.
        #[test]
        fn random_schedules_fire_exactly_once_in_order(
            delays in proptest::collection::vec(0u64..500, 1..40),
            cancel_mask in proptest::collection::vec(proptest::bool::ANY, 40),
        ) {
            let origin = Instant::now();
            let mut w = wheel(origin);
            let mut expected: Vec<(Instant, TimerId)> = Vec::new();
            for (i, &ms) in delays.iter().enumerate() {
                let deadline = origin + Duration::from_millis(ms);
                let id = w.schedule_at(deadline);
                if cancel_mask.get(i).copied().unwrap_or(false) {
                    prop_assert!(w.cancel(id));
                } else {
                    expected.push((deadline, id));
                }
            }
            let horizon = origin + Duration::from_millis(250);
            let fired = w.poll_expired(horizon);
            let mut due: Vec<(Instant, TimerId)> =
                expected.iter().copied().filter(|&(at, _)| at <= horizon).collect();
            due.sort_by_key(|&(at, id)| (at, id));
            prop_assert_eq!(
                fired.iter().map(|&(id, at)| (at, id)).collect::<Vec<_>>(),
                due
            );
            // The remainder fires on the next sweep, exactly once.
            let rest = w.poll_expired(origin + Duration::from_millis(600));
            prop_assert_eq!(rest.len(), expected.len() - fired.len());
            prop_assert!(w.is_empty());
        }
    }
}
