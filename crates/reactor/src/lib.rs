//! `ltnc-reactor`: a vendored mini-runtime for running many node state
//! machines on a few threads.
//!
//! The thread-per-node runtime in `ltnc-net` burns two blocking OS
//! threads per peer, which caps in-process swarms at a few hundred
//! nodes. This crate provides the event-driven alternative the larger
//! experiments need, with no external dependencies (crates.io is
//! offline in the build environment):
//!
//! * [`Poller`] — read-readiness polling: `epoll` (edge-triggered) on
//!   Linux, a degraded-but-correct spurious-wakeup backend elsewhere;
//! * [`TimerWheel`] — hashed wheel for protocol ticks and pending-TTL
//!   deadlines, never-early firing, lazy cancellation;
//! * [`Waker`] — cross-thread wakeup with coalescing, built on a
//!   self-connected loopback datagram socket;
//! * [`Reactor`] / [`Driven`] — the sharded scheduler: nodes are
//!   partitioned round-robin across worker threads and driven through
//!   poll/timer/control callbacks, with a graceful shutdown sweep that
//!   drains in-flight datagrams before collecting outputs;
//! * [`ShardObserver`] — the instrumentation seam: a dependency-free
//!   hook trait the worker loops report scheduler events through (poll
//!   waits, dispatch latencies, timer lag, queue drains), so embedding
//!   crates can keep histograms without this crate owning any.
//!
//! The crate is deliberately protocol-agnostic: `ltnc-net` ports its
//! `PeerNode` onto [`Driven`], but anything with a nonblocking
//! descriptor and a tick can ride the same loop.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod observe;
mod poll;
mod shard;
mod timer;
mod wake;

pub use observe::{Dispatch, ShardObserver};
pub use poll::{Event, Poller};
pub use shard::{Cx, Driven, Reactor};
pub use timer::{TimerId, TimerWheel};
pub use wake::Waker;
