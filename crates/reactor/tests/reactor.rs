//! Integration tests driving real UDP sockets through the sharded
//! reactor: cross-worker datagram exchange, control routing, graceful
//! shutdown draining, and spurious/zero-length readiness tolerance.

use std::net::{SocketAddr, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ltnc_reactor::{Cx, Driven, Reactor};

/// A minimal driven node: drains its socket, optionally sends a beacon
/// to one peer on a periodic timer, and records control tags.
struct TestNode {
    socket: UdpSocket,
    peer: Option<SocketAddr>,
    tick_every: Option<Duration>,
    /// Live mirror of the datagram count, observable mid-run.
    received: Arc<AtomicUsize>,
    datagrams: usize,
    bytes: usize,
    ticks: usize,
    tags: Vec<u64>,
}

impl TestNode {
    fn bind(tick_every: Option<Duration>) -> TestNode {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        socket.set_nonblocking(true).expect("nonblocking");
        TestNode {
            socket,
            peer: None,
            tick_every,
            received: Arc::new(AtomicUsize::new(0)),
            datagrams: 0,
            bytes: 0,
            ticks: 0,
            tags: Vec::new(),
        }
    }

    fn addr(&self) -> SocketAddr {
        self.socket.local_addr().expect("local addr")
    }

    fn drain(&mut self, cx: &mut Cx) {
        loop {
            let buf = cx.scratch();
            match self.socket.recv_from(buf) {
                Ok((n, _from)) => {
                    self.datagrams += 1;
                    self.bytes += n;
                    self.received.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => break,
            }
        }
    }
}

enum Ctl {
    Tag(u64),
}

#[derive(Debug)]
struct Summary {
    datagrams: usize,
    bytes: usize,
    ticks: usize,
    tags: Vec<u64>,
}

impl Driven for TestNode {
    type Control = Ctl;
    type Output = Summary;

    fn fd(&self) -> RawFd {
        self.socket.as_raw_fd()
    }

    fn on_start(&mut self, cx: &mut Cx) {
        if let Some(every) = self.tick_every {
            cx.arm(every, 0);
        }
        self.drain(cx);
    }

    fn on_readable(&mut self, cx: &mut Cx) {
        self.drain(cx);
    }

    fn on_timer(&mut self, _tag: u64, cx: &mut Cx) {
        self.ticks += 1;
        if let Some(peer) = self.peer {
            let _ = self.socket.send_to(b"beacon", peer);
        }
        if let Some(every) = self.tick_every {
            cx.arm(every, 0);
        }
    }

    fn on_control(&mut self, msg: Ctl, _cx: &mut Cx) {
        match msg {
            Ctl::Tag(tag) => self.tags.push(tag),
        }
    }

    fn finish(&mut self) -> Summary {
        Summary {
            datagrams: self.datagrams,
            bytes: self.bytes,
            ticks: self.ticks,
            tags: std::mem::take(&mut self.tags),
        }
    }
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn ring_of_nodes_exchanges_datagrams_across_two_workers() {
    let mut nodes: Vec<TestNode> =
        (0..4).map(|_| TestNode::bind(Some(Duration::from_millis(5)))).collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(TestNode::addr).collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        node.peer = Some(addrs[(i + 1) % addrs.len()]);
    }
    let counters: Vec<Arc<AtomicUsize>> = nodes.iter().map(|n| Arc::clone(&n.received)).collect();

    let reactor = Reactor::start(nodes, 2).expect("start");
    let all_heard = wait_until(Duration::from_secs(10), || {
        counters.iter().all(|c| c.load(Ordering::SeqCst) >= 3)
    });
    let outputs = reactor.shutdown();

    assert!(all_heard, "every node must receive beacons from its ring predecessor");
    assert_eq!(outputs.len(), 4);
    for (i, out) in outputs.iter().enumerate() {
        assert!(out.datagrams >= 3, "node {i} heard only {} datagrams", out.datagrams);
        assert!(out.ticks >= 3, "node {i} ticked only {} times", out.ticks);
        assert_eq!(out.bytes, out.datagrams * b"beacon".len());
    }
}

#[test]
fn control_messages_route_to_the_node_they_were_addressed_to() {
    // 5 nodes over 3 workers exercises the round-robin local-index math.
    let nodes: Vec<TestNode> = (0..5).map(|_| TestNode::bind(None)).collect();
    let reactor = Reactor::start(nodes, 3).expect("start");
    for i in 0..5 {
        reactor.send(i, Ctl::Tag(i as u64 * 10));
    }
    // Per-worker channels are FIFO, so the tags land before Stop does.
    let outputs = reactor.shutdown();
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(out.tags, vec![i as u64 * 10], "node {i} got the wrong control tags");
    }
}

#[test]
fn shutdown_sweep_drains_a_datagram_sent_moments_before() {
    let node = TestNode::bind(None);
    let addr = node.addr();
    let reactor = Reactor::start(vec![node], 1).expect("start");

    // Land a datagram and shut down immediately, without giving the
    // poll loop time to report readiness: the graceful sweep must still
    // deliver it to the state machine before finish().
    let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
    sender.send_to(b"last words", addr).expect("send");
    let outputs = reactor.shutdown();
    assert_eq!(outputs[0].datagrams, 1, "the in-flight datagram must be drained at shutdown");
    assert_eq!(outputs[0].bytes, b"last words".len());
}

#[test]
fn zero_length_datagrams_and_spurious_readiness_are_tolerated() {
    let node = TestNode::bind(None);
    let addr = node.addr();
    let counter = Arc::clone(&node.received);
    let reactor = Reactor::start(vec![node], 1).expect("start");

    let sender = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
    sender.send_to(&[], addr).expect("send empty");
    assert!(
        wait_until(Duration::from_secs(10), || counter.load(Ordering::SeqCst) >= 1),
        "a zero-length datagram still counts as readiness"
    );
    let outputs = reactor.shutdown();
    assert_eq!(outputs[0].datagrams, 1);
    assert_eq!(outputs[0].bytes, 0);
}

#[test]
fn an_empty_reactor_starts_and_shuts_down_cleanly() {
    let reactor: Reactor<TestNode> = Reactor::start(Vec::new(), 2).expect("start");
    assert_eq!(reactor.node_count(), 0);
    assert!(reactor.shutdown().is_empty());
}
