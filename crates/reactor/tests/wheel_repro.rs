//! Regression: a deadline an exact multiple of the wheel horizon must
//! not fire a full revolution late.

use std::time::{Duration, Instant};

use ltnc_reactor::TimerWheel;

#[test]
fn horizon_multiple_deadlines_fire_on_time_not_a_lap_late() {
    let origin = Instant::now();
    let mut w = TimerWheel::new(Duration::from_millis(1), 64, origin);
    // 64, 128, 192: ticks that are exact multiples of the slot count all
    // park on the cursor's own slot — the former overshoot-by-a-lap case.
    let ids: Vec<_> = [64u64, 128, 192, 205]
        .iter()
        .map(|&ms| w.schedule_at(origin + Duration::from_millis(ms)))
        .collect();
    let fired = w.poll_expired(origin + Duration::from_millis(250));
    assert_eq!(
        fired.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        vec![ids[0], ids[1], ids[2], ids[3]]
    );
    assert!(w.is_empty());
}
