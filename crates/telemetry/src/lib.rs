//! Observability for the LTNC reproduction: structured event tracing, a
//! labeled metrics registry, and a tiny TCP scrape endpoint.
//!
//! The transports (`ltnc-net`, `ltnc-serve`, `ltnc-topo`) account for
//! everything they do in plain counter structs (`WireCounters`,
//! `ServeCounters`, `StripeCounters`, `HopCounters`), but those are only
//! readable post-mortem from in-process reports. This crate adds the two
//! live views a running system needs:
//!
//! 1. **Events** — [`TraceEvent`] is the typed vocabulary of things that
//!    happen on the hot paths (offers, feedback, AIMD budget moves,
//!    injected faults, store hits, lease failovers, …). Components emit
//!    them through a [`Tracer`], a cheap optional handle around a
//!    [`TraceSink`]; with no sink installed the emission compiles down to
//!    a branch on `None` and the event is never even constructed.
//!    [`RingSink`] is the bundled recorder: a bounded ring buffer that
//!    stamps each event with a monotonic-clock offset.
//! 2. **Metrics** — a [`MetricsRegistry`] holds labeled [`Collector`]s
//!    (usually closures sampling a live counter struct), renders
//!    snapshots as Prometheus-style text or JSON, and computes interval
//!    deltas (generalizing `ServeCounters::snapshot_delta` to every
//!    family). [`ScrapeServer`] serves those snapshots over a
//!    thread-per-listener TCP endpoint with deadlines, so a slow or
//!    malformed scraper can never stall the instrumented process.
//!
//! The [`json`] module is a minimal JSON document builder shared by the
//! endpoint's JSON view and the examples' `--report` writers (the
//! workspace's vendored `serde` is an offline no-op facade, so JSON is
//! rendered by hand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod collectors;
mod registry;
mod scrape;
mod trace;

pub use collectors::{
    hop_latency_histograms, hop_samples, reactor_histograms, reactor_samples, serve_samples,
    stripe_samples, wire_samples,
};
pub use registry::{
    Collector, FamilySnapshot, HistogramCollector, HistogramSample, MetricsRegistry,
    MetricsSnapshot, Sample,
};
pub use scrape::{FlightHandler, ScrapeOptions, ScrapeServer};
pub use trace::{FaultKind, RingSink, TimedEvent, TraceEvent, TraceSink, Tracer};
