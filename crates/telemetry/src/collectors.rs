//! Adapters from the workspace's counter structs to registry samples.

use ltnc_metrics::{
    HopCounters, HopLatency, ReactorSnapshot, ServeCounters, StripeCounters, WireCounters,
};

use crate::registry::{HistogramSample, Sample};

/// Samples every field of a [`WireCounters`] (family `wire`).
#[must_use]
pub fn wire_samples(c: &WireCounters) -> Vec<Sample> {
    vec![
        Sample::plain("datagrams_sent", c.datagrams_sent),
        Sample::plain("datagrams_received", c.datagrams_received),
        Sample::plain("bytes_sent", c.bytes_sent),
        Sample::plain("bytes_received", c.bytes_received),
        Sample::plain("payload_bytes_sent", c.payload_bytes_sent),
        Sample::plain("transfers_offered", c.transfers_offered),
        Sample::plain("transfers_aborted", c.transfers_aborted),
        Sample::plain("transfers_delivered", c.transfers_delivered),
        Sample::plain("useful_deliveries", c.useful_deliveries),
        Sample::plain("decode_errors", c.decode_errors),
        Sample::plain("session_mismatches", c.session_mismatches),
        Sample::plain("inbound_dropped", c.inbound_dropped),
        Sample::plain("offer_timeouts", c.offer_timeouts),
        Sample::plain("budget_raises", c.budget_raises),
        Sample::plain("budget_cuts", c.budget_cuts),
    ]
}

/// Samples every field of a [`ServeCounters`] (family `serve`).
#[must_use]
pub fn serve_samples(c: &ServeCounters) -> Vec<Sample> {
    vec![
        Sample::plain("sessions_accepted", c.sessions_accepted),
        Sample::plain("sessions_rejected", c.sessions_rejected),
        Sample::plain("sessions_completed", c.sessions_completed),
        Sample::plain("bytes_out", c.bytes_out),
        Sample::plain("bytes_in", c.bytes_in),
        Sample::plain("transfers_offered", c.transfers_offered),
        Sample::plain("transfers_aborted", c.transfers_aborted),
        Sample::plain("transfers_delivered", c.transfers_delivered),
        Sample::plain("cache_hits", c.cache_hits),
        Sample::plain("cache_misses", c.cache_misses),
        Sample::plain("cache_evictions", c.cache_evictions),
    ]
}

/// Samples a [`StripeCounters`]: the scalar counters plus every replica
/// slot's fields under a `replica="<index>"` label (family `stripe`).
#[must_use]
pub fn stripe_samples(c: &StripeCounters) -> Vec<Sample> {
    let mut samples = vec![
        Sample::plain("failovers", c.failovers),
        Sample::plain("generations_releases", c.generations_releases),
    ];
    for (index, replica) in c.replicas.iter().enumerate() {
        let mut push = |name, value| {
            samples.push(Sample { name, labels: vec![("replica", index.to_string())], value });
        };
        push("offers_seen", replica.offers_seen);
        push("aborted", replica.aborted);
        push("delivered", replica.delivered);
        push("useful", replica.useful);
        push("duplicates", replica.duplicates);
        push("generations_completed", replica.generations_completed);
        push("bytes_in", replica.bytes_in);
        push("bytes_out", replica.bytes_out);
        push("failed", u64::from(replica.failed));
    }
    samples
}

/// Samples a [`HopCounters`]: every populated bucket's fields under a
/// `hop="<distance>"` label (family `hop`).
#[must_use]
pub fn hop_samples(c: &HopCounters) -> Vec<Sample> {
    let mut samples = Vec::new();
    for (distance, stats) in c.iter() {
        let mut push = |name, value| {
            samples.push(Sample { name, labels: vec![("hop", distance.to_string())], value });
        };
        push("nodes", stats.nodes);
        push("completed", stats.completed);
        push("recoding_ops", stats.recoding_ops);
        push("decoding_ops", stats.decoding_ops);
        push("useful_deliveries", stats.useful_deliveries);
        push("faults_injected", stats.faults_injected);
    }
    samples
}

/// Samples a [`HopLatency`] recorder as one `delivery_latency_us`
/// histogram per populated hop depth under a `hops="<links>"` label,
/// plus the merged distribution with no label (family decided by the
/// registration, typically `wire`).
#[must_use]
pub fn hop_latency_histograms(latency: &HopLatency) -> Vec<HistogramSample> {
    let mut samples = Vec::new();
    let total = latency.total();
    if !total.is_empty() {
        samples.push(HistogramSample::plain("delivery_latency_us", total));
    }
    for (hops, snapshot) in latency.snapshot() {
        samples.push(HistogramSample {
            name: "delivery_latency_us",
            labels: vec![("hops", hops.to_string())],
            snapshot,
        });
    }
    samples
}

/// Samples the scalar fields of a [`ReactorSnapshot`] (family
/// `reactor`; the per-shard label is the registration's job).
#[must_use]
pub fn reactor_samples(s: &ReactorSnapshot) -> Vec<Sample> {
    vec![
        Sample::plain("turns", s.turns),
        Sample::plain("polls", s.polls),
        Sample::plain("poll_events", s.poll_events),
        Sample::plain("wakeups", s.wakeups),
        Sample::plain("wakeup_rounds", s.wakeup_rounds),
        Sample::plain("control_messages", s.control_messages),
        Sample::plain("control_high_watermark", s.control_high_watermark),
        Sample::plain("readable_dispatches", s.readable_dispatches),
        Sample::plain("timer_dispatches", s.timer_dispatches),
        Sample::plain("control_dispatches", s.control_dispatches),
        Sample::plain("timers_fired", s.timers_fired),
        Sample::plain("wheel_depth", s.wheel_depth),
        Sample::plain("nodes", s.nodes),
    ]
}

/// Samples a [`ReactorSnapshot`]'s three scheduler histograms —
/// poll-wait, dispatch latency and tick lag (family `reactor`). Empty
/// histograms are omitted, matching [`hop_latency_histograms`].
#[must_use]
pub fn reactor_histograms(s: &ReactorSnapshot) -> Vec<HistogramSample> {
    let mut samples = Vec::new();
    if !s.poll_wait_us.is_empty() {
        samples.push(HistogramSample::plain("poll_wait_us", s.poll_wait_us.clone()));
    }
    if !s.dispatch_ns.is_empty() {
        samples.push(HistogramSample::plain("dispatch_ns", s.dispatch_ns.clone()));
    }
    if !s.tick_lag_us.is_empty() {
        samples.push(HistogramSample::plain("tick_lag_us", s.tick_lag_us.clone()));
    }
    samples
}

#[cfg(test)]
mod tests {
    use ltnc_metrics::{HopStats, ReplicaCounters};

    use super::*;

    #[test]
    fn wire_samples_cover_every_field() {
        let c = WireCounters { datagrams_sent: 3, budget_cuts: 2, ..WireCounters::new() };
        let samples = wire_samples(&c);
        assert_eq!(samples.len(), 15);
        assert!(samples.iter().any(|s| s.name == "datagrams_sent" && s.value == 3));
        assert!(samples.iter().any(|s| s.name == "budget_cuts" && s.value == 2));
    }

    #[test]
    fn serve_samples_cover_every_field() {
        let c = ServeCounters { cache_hits: 9, ..ServeCounters::new() };
        let samples = serve_samples(&c);
        assert_eq!(samples.len(), 11);
        assert!(samples.iter().any(|s| s.name == "cache_hits" && s.value == 9));
    }

    #[test]
    fn stripe_samples_label_replicas() {
        let mut c = StripeCounters::new(2);
        c.replicas[1] = ReplicaCounters { delivered: 4, failed: true, ..Default::default() };
        c.failovers = 1;
        let samples = stripe_samples(&c);
        assert!(samples.iter().any(|s| s.name == "failovers" && s.value == 1));
        let delivered: Vec<&Sample> = samples.iter().filter(|s| s.name == "delivered").collect();
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[1].labels, vec![("replica", "1".to_string())]);
        assert_eq!(delivered[1].value, 4);
        assert!(samples.iter().any(|s| s.name == "failed"
            && s.value == 1
            && s.labels == vec![("replica", "1".to_string())]));
    }

    #[test]
    fn hop_latency_histograms_label_depths_and_merge_total() {
        let latency = HopLatency::new();
        assert!(hop_latency_histograms(&latency).is_empty());
        latency.record(1, 50);
        latency.record(3, 700);
        let samples = hop_latency_histograms(&latency);
        assert_eq!(samples.len(), 3);
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[0].snapshot.count(), 2);
        assert!(samples
            .iter()
            .any(|s| s.labels == vec![("hops", "1".to_string())] && s.snapshot.count() == 1));
        assert!(samples
            .iter()
            .any(|s| s.labels == vec![("hops", "3".to_string())] && s.snapshot.max == 700));
    }

    #[test]
    fn reactor_samples_cover_the_scalar_fields() {
        let mut s = ReactorSnapshot::new();
        s.turns = 4;
        s.wheel_depth = 11;
        s.nodes = 250;
        let samples = reactor_samples(&s);
        assert_eq!(samples.len(), 13);
        assert!(samples.iter().any(|x| x.name == "turns" && x.value == 4));
        assert!(samples.iter().any(|x| x.name == "wheel_depth" && x.value == 11));
        assert!(samples.iter().any(|x| x.name == "nodes" && x.value == 250));
    }

    #[test]
    fn reactor_histograms_omit_empty_families() {
        let counters = ltnc_metrics::ReactorCounters::new();
        assert!(reactor_histograms(&counters.snapshot()).is_empty());
        counters.record_poll(120, 1);
        counters.record_timer_lag(40);
        let samples = reactor_histograms(&counters.snapshot());
        let names: Vec<&str> = samples.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["poll_wait_us", "tick_lag_us"], "dispatch_ns stays empty");
        assert_eq!(samples[0].snapshot.count(), 1);
    }

    #[test]
    fn hop_samples_label_distances() {
        let mut c = HopCounters::new();
        c.record(2, &HopStats { nodes: 3, useful_deliveries: 8, ..HopStats::default() });
        let samples = hop_samples(&c);
        assert!(samples.iter().any(|s| s.name == "useful_deliveries"
            && s.value == 8
            && s.labels == vec![("hop", "2".to_string())]));
    }
}
