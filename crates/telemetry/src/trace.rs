use core::fmt;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The kind of datagram fault a [`TraceEvent::FaultInjected`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The datagram was silently discarded.
    Drop,
    /// The datagram was delivered twice.
    Duplicate,
    /// The datagram was held back and released out of order.
    Reorder,
    /// The datagram was delivered after an artificial delay.
    Delay,
}

impl FaultKind {
    /// Stable lowercase label (used in metric labels and reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
        }
    }
}

/// One typed occurrence on a hot path of the system.
///
/// The vocabulary spans both transports: the UDP gossip plane (offers,
/// feedback, pacing, faults), the TCP serving plane (sessions, store,
/// striped leases), and the overlay harness (relay recoding). Variants
/// carry just enough identity to attribute the event (peer address,
/// generation, replica index) — payloads never travel through the trace.
/// See `docs/OBSERVABILITY.md` for the full catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A `DATA-HEADER` probe was sent to `peer` (handshake opened).
    OfferSent {
        /// Destination of the offer.
        peer: SocketAddr,
        /// Generation the offered symbol belongs to.
        generation: u32,
    },
    /// Binary feedback for an outstanding offer arrived from `peer`.
    FeedbackReceived {
        /// Sender of the feedback.
        peer: SocketAddr,
        /// `true` = SEND (payload wanted), `false` = ABORT.
        accept: bool,
        /// Offer-to-feedback round-trip time.
        rtt: Duration,
    },
    /// An outstanding offer reached its TTL without feedback — the loss
    /// signal adaptive pacing reacts to.
    OfferTimedOut {
        /// Peer that never answered.
        peer: SocketAddr,
    },
    /// A payload arrived and was handed to the decoder.
    PayloadDelivered {
        /// Generation of the payload.
        generation: u32,
        /// Whether the symbol advanced the decoder's rank.
        useful: bool,
    },
    /// A generation reached full rank and was decoded.
    GenerationDecoded {
        /// The completed generation.
        generation: u32,
    },
    /// Every generation decoded — the node holds the whole object.
    ObjectDecoded,
    /// A relay emitted a symbol recoded from its partial decoder state
    /// (the paper's in-network recoding step).
    RelayRecode {
        /// Generation the recoded symbol belongs to.
        generation: u32,
    },
    /// Adaptive pacing raised `peer`'s in-flight budget (additive
    /// increase on observed feedback).
    BudgetRaised {
        /// Peer whose budget moved.
        peer: SocketAddr,
        /// The new whole-offer budget.
        budget: u64,
    },
    /// Adaptive pacing cut `peer`'s in-flight budget (multiplicative
    /// decrease after offer timeouts).
    BudgetCut {
        /// Peer whose budget moved.
        peer: SocketAddr,
        /// The new whole-offer budget.
        budget: u64,
    },
    /// The fault harness injected a datagram fault on this socket.
    FaultInjected {
        /// What the fault did to the datagram.
        kind: FaultKind,
        /// `true` when injected on the receive path, `false` on send.
        inbound: bool,
        /// The remote link endpoint, when attributable.
        peer: Option<SocketAddr>,
    },
    /// A serving connection was accepted by the TCP listener.
    ConnectionOpened {
        /// The client's address, when the socket reports one.
        peer: Option<SocketAddr>,
    },
    /// A serving connection ended (either side closed, or an error).
    ConnectionClosed {
        /// The client's address, when the socket reports one.
        peer: Option<SocketAddr>,
    },
    /// A fetch session was admitted for `object`.
    SessionAccepted {
        /// Object id requested.
        object: u64,
    },
    /// A fetch session was refused (unknown object or invalid request).
    SessionRejected {
        /// Object id requested.
        object: u64,
    },
    /// A fetch session acknowledged full delivery of `object`.
    SessionCompleted {
        /// Object id served.
        object: u64,
    },
    /// A symbol request was answered from the warm generation cache.
    StoreHit {
        /// Object id.
        object: u64,
        /// Generation index within the object.
        generation: u32,
    },
    /// A symbol request had to re-encode (cold cache).
    StoreMiss {
        /// Object id.
        object: u64,
        /// Generation index within the object.
        generation: u32,
    },
    /// A warm generation was evicted to admit another.
    StoreEvicted {
        /// Object id evicted.
        object: u64,
        /// Generation index evicted.
        generation: u32,
    },
    /// A striped-fetch replica stream was declared dead (error or
    /// progress-watermark stall).
    ReplicaFailover {
        /// Index of the dead replica.
        replica: u64,
    },
    /// A generation lease moved from a dead replica to a survivor.
    LeaseReassigned {
        /// The re-leased generation.
        generation: u32,
        /// Replica the lease was taken from.
        from: u64,
        /// Replica the lease now belongs to.
        to: u64,
    },
    /// One scheduler turn (poll → dispatch → timers) completed on a
    /// sharded-runtime worker — the flight recorder's heartbeat.
    ShardTick {
        /// Worker index of the shard.
        shard: u64,
        /// Timers still armed on the shard's wheel after the turn.
        wheel_depth: u64,
    },
    /// A reactor timer fired noticeably past its deadline (emission is
    /// thresholded by the recorder so on-time ticks do not flood the
    /// ring).
    TimerFired {
        /// Worker index of the shard.
        shard: u64,
        /// Microseconds past the scheduled deadline.
        lag_us: u64,
    },
    /// A shard's waker drained cross-shard wakeups.
    Wakeup {
        /// Worker index of the shard.
        shard: u64,
        /// Wake bytes that coalesced into this drain.
        coalesced: u64,
    },
    /// A shard's control queue yielded its deepest drain so far.
    QueueHighWatermark {
        /// Worker index of the shard.
        shard: u64,
        /// Messages drained in the record-setting round.
        depth: u64,
    },
    /// The stall watchdog saw a no-progress window: no node decoded
    /// anything new for longer than the configured stall window.
    StallDetected {
        /// Worker index of the shard this event was recorded on.
        shard: u64,
        /// How long the swarm had made no progress, in milliseconds.
        idle_ms: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the variant (used in reports and tests).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::OfferSent { .. } => "offer_sent",
            TraceEvent::FeedbackReceived { .. } => "feedback_received",
            TraceEvent::OfferTimedOut { .. } => "offer_timed_out",
            TraceEvent::PayloadDelivered { .. } => "payload_delivered",
            TraceEvent::GenerationDecoded { .. } => "generation_decoded",
            TraceEvent::ObjectDecoded => "object_decoded",
            TraceEvent::RelayRecode { .. } => "relay_recode",
            TraceEvent::BudgetRaised { .. } => "budget_raised",
            TraceEvent::BudgetCut { .. } => "budget_cut",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::ConnectionOpened { .. } => "connection_opened",
            TraceEvent::ConnectionClosed { .. } => "connection_closed",
            TraceEvent::SessionAccepted { .. } => "session_accepted",
            TraceEvent::SessionRejected { .. } => "session_rejected",
            TraceEvent::SessionCompleted { .. } => "session_completed",
            TraceEvent::StoreHit { .. } => "store_hit",
            TraceEvent::StoreMiss { .. } => "store_miss",
            TraceEvent::StoreEvicted { .. } => "store_evicted",
            TraceEvent::ReplicaFailover { .. } => "replica_failover",
            TraceEvent::LeaseReassigned { .. } => "lease_reassigned",
            TraceEvent::ShardTick { .. } => "shard_tick",
            TraceEvent::TimerFired { .. } => "timer_fired",
            TraceEvent::Wakeup { .. } => "wakeup",
            TraceEvent::QueueHighWatermark { .. } => "queue_high_watermark",
            TraceEvent::StallDetected { .. } => "stall_detected",
        }
    }
}

/// A [`TraceEvent`] stamped with its monotonic-clock offset.
///
/// `at` is the elapsed time since the recording sink was created, from
/// [`Instant`] — monotonic, never wall-clock, so event ordering within
/// one sink is trustworthy even across system clock adjustments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Monotonic offset from the sink's creation.
    pub at: Duration,
    /// The event itself.
    pub event: TraceEvent,
}

/// Receives events emitted from instrumented hot paths.
///
/// Implementations must be cheap and non-blocking: `record` is called
/// from socket and actor threads. The bundled [`RingSink`] takes one
/// short mutex; a custom sink could count events in atomics or forward
/// them to a channel.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ltnc_telemetry::{TraceEvent, TraceSink, Tracer};
///
/// /// Counts events, keeps nothing.
/// #[derive(Default)]
/// struct CountSink(AtomicU64);
/// impl TraceSink for CountSink {
///     fn record(&self, _event: TraceEvent) {
///         self.0.fetch_add(1, Ordering::Relaxed);
///     }
/// }
///
/// let sink = std::sync::Arc::new(CountSink::default());
/// let tracer = Tracer::new(sink.clone());
/// tracer.emit(|| TraceEvent::ObjectDecoded);
/// assert_eq!(sink.0.load(Ordering::Relaxed), 1);
/// ```
pub trait TraceSink: Send + Sync {
    /// Accepts one event. Timestamping is the sink's job (the emitting
    /// hot path should not pay for a clock read when nobody listens).
    fn record(&self, event: TraceEvent);
}

/// A bounded ring-buffer [`TraceSink`] with monotonic timestamps.
///
/// Keeps the most recent `capacity` events; older ones are discarded and
/// counted in [`RingSink::dropped`]. Each recorded event is stamped with
/// the elapsed time since the sink's creation (one `Instant::now()` per
/// event, inside the sink).
///
/// ```
/// use std::sync::Arc;
/// use ltnc_telemetry::{RingSink, TraceEvent, Tracer};
///
/// let sink = Arc::new(RingSink::new(2));
/// let tracer = Tracer::new(sink.clone());
/// for generation in 0..3 {
///     tracer.emit(|| TraceEvent::GenerationDecoded { generation });
/// }
/// let events = sink.drain();
/// assert_eq!(events.len(), 2); // bounded: the oldest was dropped
/// assert_eq!(sink.dropped(), 1);
/// assert!(events[0].at <= events[1].at); // monotonic stamps
/// ```
pub struct RingSink {
    start: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TimedEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A sink keeping at most `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            start: Instant::now(),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().map(|ring| ring.len()).unwrap_or(0)
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the buffered events, oldest first, leaving them in place.
    #[must_use]
    pub fn events(&self) -> Vec<TimedEvent> {
        self.ring.lock().map(|ring| ring.iter().copied().collect()).unwrap_or_default()
    }

    /// Removes and returns the buffered events, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TimedEvent> {
        self.ring.lock().map(|mut ring| ring.drain(..).collect()).unwrap_or_default()
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let at = self.start.elapsed();
        if let Ok(mut ring) = self.ring.lock() {
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(TimedEvent { at, event });
        }
    }
}

impl fmt::Debug for RingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingSink")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// A cheap, cloneable handle hot paths emit through.
///
/// Wraps an optional shared [`TraceSink`]. The disabled handle
/// ([`Tracer::off`], also `Default`) makes [`Tracer::emit`] a single
/// branch on `None`: the closure building the event is never called, so
/// instrumentation costs nothing when tracing is not requested.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl Tracer {
    /// A tracer forwarding to `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    /// The disabled tracer; every `emit` is a no-op.
    #[must_use]
    pub fn off() -> Tracer {
        Tracer { sink: None }
    }

    /// A tracer from an optional sink (`None` disables).
    #[must_use]
    pub fn from_option(sink: Option<Arc<dyn TraceSink>>) -> Tracer {
        Tracer { sink }
    }

    /// `true` when a sink is installed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `make` — or does nothing, without
    /// calling `make`, when no sink is installed.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let sink = RingSink::new(3);
        for generation in 0..5 {
            sink.record(TraceEvent::GenerationDecoded { generation });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let events = sink.events();
        assert_eq!(sink.len(), 3, "events() leaves the ring intact");
        // The survivors are the most recent three, in order.
        let generations: Vec<u32> = events
            .iter()
            .map(|e| match e.event {
                TraceEvent::GenerationDecoded { generation } => generation,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(generations, vec![2, 3, 4]);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "timestamps are monotone");
        assert_eq!(sink.drain().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let sink = RingSink::new(0);
        sink.record(TraceEvent::ObjectDecoded);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn disabled_tracer_never_builds_the_event() {
        let tracer = Tracer::off();
        assert!(!tracer.is_enabled());
        tracer.emit(|| panic!("must not be called"));
    }

    #[test]
    fn tracer_forwards_to_sink() {
        let sink = Arc::new(RingSink::new(8));
        let tracer = Tracer::new(sink.clone());
        assert!(tracer.is_enabled());
        tracer.emit(|| TraceEvent::ObjectDecoded);
        let tracer2 = tracer.clone();
        tracer2.emit(|| TraceEvent::GenerationDecoded { generation: 1 });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].event.name(), "object_decoded");
    }

    #[test]
    fn fault_kind_labels_are_stable() {
        assert_eq!(FaultKind::Drop.label(), "drop");
        assert_eq!(FaultKind::Duplicate.label(), "duplicate");
        assert_eq!(FaultKind::Reorder.label(), "reorder");
        assert_eq!(FaultKind::Delay.label(), "delay");
    }
}
