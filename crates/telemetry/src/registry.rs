use core::fmt;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::json::JsonValue;

/// One counter value sampled from a live source.
///
/// `name` is the counter's snake_case field name within its family;
/// `labels` carries sample-level dimensions (for example `replica="2"` or
/// `hop="3"`) on top of whatever labels the family was registered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Counter name within the family (for example `bytes_sent`).
    pub name: &'static str,
    /// Extra label dimensions specific to this sample.
    pub labels: Vec<(&'static str, String)>,
    /// The current cumulative value.
    pub value: u64,
}

impl Sample {
    /// A label-less sample.
    #[must_use]
    pub fn plain(name: &'static str, value: u64) -> Sample {
        Sample { name, labels: Vec::new(), value }
    }
}

/// Samples one family of counters from a live source.
///
/// Implemented for any `Fn() -> Vec<Sample> + Send + Sync`, so the usual
/// collector is a closure over a shared handle to live counters:
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ltnc_telemetry::{MetricsRegistry, Sample};
///
/// let served = Arc::new(AtomicU64::new(0));
/// let registry = MetricsRegistry::new();
/// let source = served.clone();
/// registry.register("serve", &[("server", "a".to_string())], move || {
///     vec![Sample::plain("sessions", source.load(Ordering::Relaxed))]
/// });
///
/// served.store(3, Ordering::Relaxed);
/// let text = registry.snapshot().to_prometheus();
/// assert!(text.contains(r#"ltnc_serve_sessions{server="a"} 3"#));
/// ```
pub trait Collector: Send + Sync {
    /// Reads the current cumulative values.
    fn samples(&self) -> Vec<Sample>;
}

impl<F> Collector for F
where
    F: Fn() -> Vec<Sample> + Send + Sync,
{
    fn samples(&self) -> Vec<Sample> {
        self()
    }
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    collector: Box<dyn Collector>,
    /// Values at the previous `interval_delta` call, keyed by the fully
    /// rendered metric identity.
    last: HashMap<String, u64>,
}

/// A set of labeled counter families, sampled on demand.
///
/// The registry unifies the workspace's counter structs behind one
/// scrapeable surface: each registration pairs a family name and fixed
/// labels with a [`Collector`] that reads the live values. Snapshots are
/// cumulative; [`MetricsRegistry::interval_delta`] returns only what
/// changed since the previous delta call, generalizing the
/// `snapshot_delta` pattern of the counter structs to every family at
/// once.
///
/// ```
/// use ltnc_telemetry::{wire_samples, MetricsRegistry};
/// use ltnc_metrics::WireCounters;
/// use std::sync::{Arc, Mutex};
///
/// let live = Arc::new(Mutex::new(WireCounters::new()));
/// let registry = MetricsRegistry::new();
/// let source = live.clone();
/// registry.register("wire", &[("node", "n0".to_string())], move || {
///     wire_samples(&source.lock().unwrap())
/// });
///
/// live.lock().unwrap().datagrams_sent = 7;
/// assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 7);
/// live.lock().unwrap().datagrams_sent = 10;
/// assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 3);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds a counter family. `family` becomes the metric-name prefix
    /// (`ltnc_<family>_<counter>`), `labels` are attached to every sample
    /// the collector produces.
    pub fn register(
        &self,
        family: &str,
        labels: &[(&str, String)],
        collector: impl Collector + 'static,
    ) {
        let entry = Entry {
            family: family.to_string(),
            labels: labels.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            collector: Box::new(collector),
            last: HashMap::new(),
        };
        if let Ok(mut entries) = self.entries.lock() {
            entries.push(entry);
        }
    }

    /// Number of registered families.
    #[must_use]
    pub fn families(&self) -> usize {
        self.entries.lock().map(|entries| entries.len()).unwrap_or(0)
    }

    /// Samples every collector and returns the cumulative values.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.collect(false)
    }

    /// Samples every collector and returns only the change since the
    /// previous `interval_delta` call (the first call returns everything,
    /// matching `snapshot_delta` against a zero baseline). Values that
    /// went backwards saturate at zero.
    #[must_use]
    pub fn interval_delta(&self) -> MetricsSnapshot {
        self.collect(true)
    }

    fn collect(&self, delta: bool) -> MetricsSnapshot {
        let mut families = Vec::new();
        let Ok(mut entries) = self.entries.lock() else {
            return MetricsSnapshot { families };
        };
        for entry in entries.iter_mut() {
            let mut samples = entry.collector.samples();
            if delta {
                for sample in &mut samples {
                    let key = metric_key(sample.name, &sample.labels);
                    let prev = entry.last.insert(key, sample.value).unwrap_or(0);
                    sample.value = sample.value.saturating_sub(prev);
                }
            }
            families.push(FamilySnapshot {
                family: entry.family.clone(),
                labels: entry.labels.clone(),
                samples,
            });
        }
        MetricsSnapshot { families }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry").field("families", &self.families()).finish()
    }
}

fn metric_key(name: &str, labels: &[(&'static str, String)]) -> String {
    let mut key = name.to_string();
    for (k, v) in labels {
        key.push('\u{1f}');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

/// One registered family's samples within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// The family name the collector was registered under.
    pub family: String,
    /// The fixed labels of the registration.
    pub labels: Vec<(String, String)>,
    /// The sampled counters.
    pub samples: Vec<Sample>,
}

/// A point-in-time sampling of every family in a registry, renderable as
/// Prometheus-style text or JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One entry per registered family, in registration order.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// `true` when no family produced any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.samples.is_empty())
    }

    /// Sum of every sample named `name` in families named `family`
    /// (0 when absent) — a convenience for tests and report code.
    #[must_use]
    pub fn value(&self, family: &str, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.family == family)
            .flat_map(|f| &f.samples)
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `ltnc_<family>_<name>{labels} value` line per sample, with a
    /// `# TYPE … counter` header per distinct metric name.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for family in &self.families {
            for sample in &family.samples {
                let metric = format!("ltnc_{}_{}", family.family, sample.name);
                if !typed.contains(&metric) {
                    out.push_str("# TYPE ");
                    out.push_str(&metric);
                    out.push_str(" counter\n");
                    typed.push(metric.clone());
                }
                out.push_str(&metric);
                let mut labels: Vec<(&str, &str)> =
                    family.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                labels.extend(sample.labels.iter().map(|(k, v)| (*k, v.as_str())));
                if !labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(k);
                        out.push_str("=\"");
                        out.push_str(&escape_label(v));
                        out.push('"');
                    }
                    out.push('}');
                }
                out.push(' ');
                out.push_str(&sample.value.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document (families in registration
    /// order, each with its labels and samples).
    #[must_use]
    pub fn to_json(&self) -> String {
        let families = self
            .families
            .iter()
            .map(|family| {
                let mut labels = JsonValue::object();
                for (k, v) in &family.labels {
                    labels = labels.field(k, v.as_str());
                }
                let samples = family
                    .samples
                    .iter()
                    .map(|sample| {
                        let mut doc = JsonValue::object().field("name", sample.name);
                        if !sample.labels.is_empty() {
                            let mut extra = JsonValue::object();
                            for (k, v) in &sample.labels {
                                extra = extra.field(k, v.as_str());
                            }
                            doc = doc.field("labels", extra);
                        }
                        doc.field("value", sample.value)
                    })
                    .collect();
                JsonValue::object()
                    .field("family", family.family.as_str())
                    .field("labels", labels)
                    .field("samples", JsonValue::array(samples))
            })
            .collect();
        JsonValue::object().field("families", JsonValue::array(families)).render()
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;

    fn counter_registry() -> (MetricsRegistry, Arc<AtomicU64>) {
        let live = Arc::new(AtomicU64::new(0));
        let registry = MetricsRegistry::new();
        let source = live.clone();
        registry.register("wire", &[("node", "n0".to_string())], move || {
            vec![Sample::plain("datagrams_sent", source.load(Ordering::Relaxed))]
        });
        (registry, live)
    }

    #[test]
    fn snapshot_is_cumulative_delta_is_interval() {
        let (registry, live) = counter_registry();
        live.store(5, Ordering::Relaxed);
        assert_eq!(registry.snapshot().value("wire", "datagrams_sent"), 5);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 5);
        live.store(8, Ordering::Relaxed);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 3);
        // Unchanged interval → zero; snapshot stays cumulative.
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 0);
        assert_eq!(registry.snapshot().value("wire", "datagrams_sent"), 8);
        // A counter that went backwards saturates at zero.
        live.store(2, Ordering::Relaxed);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 0);
    }

    #[test]
    fn prometheus_text_has_types_labels_and_values() {
        let (registry, live) = counter_registry();
        live.store(7, Ordering::Relaxed);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ltnc_wire_datagrams_sent counter"));
        assert!(text.contains("ltnc_wire_datagrams_sent{node=\"n0\"} 7"));
    }

    #[test]
    fn sample_labels_merge_after_family_labels() {
        let registry = MetricsRegistry::new();
        registry.register("stripe", &[("fetch", "f1".to_string())], move || {
            vec![Sample { name: "delivered", labels: vec![("replica", "2".to_string())], value: 9 }]
        });
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("ltnc_stripe_delivered{fetch=\"f1\",replica=\"2\"} 9"));
        // Deltas keyed per label set: same name, distinct replica labels
        // do not collide.
        assert_eq!(registry.interval_delta().value("stripe", "delivered"), 9);
        assert_eq!(registry.interval_delta().value("stripe", "delivered"), 0);
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let (registry, live) = counter_registry();
        live.store(4, Ordering::Relaxed);
        let json = registry.snapshot().to_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"family\":\"wire\""));
        assert!(json.contains("\"name\":\"datagrams_sent\""));
        assert!(json.contains("\"value\":4"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.register("serve", &[("path", "a\"b\\c".to_string())], move || {
            vec![Sample::plain("hits", 1)]
        });
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains(r#"path="a\"b\\c""#));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let registry = MetricsRegistry::new();
        let snap = registry.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_prometheus(), "");
        assert_eq!(snap.to_json(), "{\"families\":[]}");
    }
}
