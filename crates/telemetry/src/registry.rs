use core::fmt;
use std::collections::HashMap;
use std::sync::Mutex;

use ltnc_metrics::{bucket_bound, LogHistogramSnapshot, LOG_BUCKETS};

use crate::json::JsonValue;

/// One counter value sampled from a live source.
///
/// `name` is the counter's snake_case field name within its family;
/// `labels` carries sample-level dimensions (for example `replica="2"` or
/// `hop="3"`) on top of whatever labels the family was registered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Counter name within the family (for example `bytes_sent`).
    pub name: &'static str,
    /// Extra label dimensions specific to this sample.
    pub labels: Vec<(&'static str, String)>,
    /// The current cumulative value.
    pub value: u64,
}

impl Sample {
    /// A label-less sample.
    #[must_use]
    pub fn plain(name: &'static str, value: u64) -> Sample {
        Sample { name, labels: Vec::new(), value }
    }
}

/// Samples one family of counters from a live source.
///
/// Implemented for any `Fn() -> Vec<Sample> + Send + Sync`, so the usual
/// collector is a closure over a shared handle to live counters:
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use ltnc_telemetry::{MetricsRegistry, Sample};
///
/// let served = Arc::new(AtomicU64::new(0));
/// let registry = MetricsRegistry::new();
/// let source = served.clone();
/// registry.register("serve", &[("server", "a".to_string())], move || {
///     vec![Sample::plain("sessions", source.load(Ordering::Relaxed))]
/// });
///
/// served.store(3, Ordering::Relaxed);
/// let text = registry.snapshot().to_prometheus();
/// assert!(text.contains(r#"ltnc_serve_sessions{server="a"} 3"#));
/// ```
pub trait Collector: Send + Sync {
    /// Reads the current cumulative values.
    fn samples(&self) -> Vec<Sample>;
}

impl<F> Collector for F
where
    F: Fn() -> Vec<Sample> + Send + Sync,
{
    fn samples(&self) -> Vec<Sample> {
        self()
    }
}

/// One histogram distribution sampled from a live source, carrying a
/// full [`LogHistogramSnapshot`] instead of a single counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Histogram name within the family (for example
    /// `delivery_latency_us`).
    pub name: &'static str,
    /// Extra label dimensions specific to this sample (for example
    /// `hops="3"`).
    pub labels: Vec<(&'static str, String)>,
    /// The current cumulative distribution.
    pub snapshot: LogHistogramSnapshot,
}

impl HistogramSample {
    /// A label-less histogram sample.
    #[must_use]
    pub fn plain(name: &'static str, snapshot: LogHistogramSnapshot) -> HistogramSample {
        HistogramSample { name, labels: Vec::new(), snapshot }
    }
}

/// Samples one family of histograms from a live source; implemented for
/// any `Fn() -> Vec<HistogramSample> + Send + Sync`, mirroring
/// [`Collector`].
pub trait HistogramCollector: Send + Sync {
    /// Reads the current cumulative distributions.
    fn histograms(&self) -> Vec<HistogramSample>;
}

impl<F> HistogramCollector for F
where
    F: Fn() -> Vec<HistogramSample> + Send + Sync,
{
    fn histograms(&self) -> Vec<HistogramSample> {
        self()
    }
}

/// What a registered entry samples: plain counters or histograms.
enum Source {
    Counters(Box<dyn Collector>),
    Histograms(Box<dyn HistogramCollector>),
}

struct Entry {
    family: String,
    labels: Vec<(String, String)>,
    source: Source,
    /// Values at the previous `interval_delta` call, keyed by the fully
    /// rendered metric identity.
    last: HashMap<String, u64>,
    /// Histogram snapshots at the previous `interval_delta` call.
    last_hist: HashMap<String, LogHistogramSnapshot>,
}

/// A set of labeled counter families, sampled on demand.
///
/// The registry unifies the workspace's counter structs behind one
/// scrapeable surface: each registration pairs a family name and fixed
/// labels with a [`Collector`] that reads the live values. Snapshots are
/// cumulative; [`MetricsRegistry::interval_delta`] returns only what
/// changed since the previous delta call, generalizing the
/// `snapshot_delta` pattern of the counter structs to every family at
/// once.
///
/// ```
/// use ltnc_telemetry::{wire_samples, MetricsRegistry};
/// use ltnc_metrics::WireCounters;
/// use std::sync::{Arc, Mutex};
///
/// let live = Arc::new(Mutex::new(WireCounters::new()));
/// let registry = MetricsRegistry::new();
/// let source = live.clone();
/// registry.register("wire", &[("node", "n0".to_string())], move || {
///     wire_samples(&source.lock().unwrap())
/// });
///
/// live.lock().unwrap().datagrams_sent = 7;
/// assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 7);
/// live.lock().unwrap().datagrams_sent = 10;
/// assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 3);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds a counter family. `family` becomes the metric-name prefix
    /// (`ltnc_<family>_<counter>`), `labels` are attached to every sample
    /// the collector produces.
    pub fn register(
        &self,
        family: &str,
        labels: &[(&str, String)],
        collector: impl Collector + 'static,
    ) {
        self.push_entry(family, labels, Source::Counters(Box::new(collector)));
    }

    /// Adds a histogram family. Rendered in the Prometheus exposition as
    /// cumulative `ltnc_<family>_<name>_bucket{le="…"}` series plus
    /// `_sum` and `_count`, and in JSON with the percentile summary.
    pub fn register_histograms(
        &self,
        family: &str,
        labels: &[(&str, String)],
        collector: impl HistogramCollector + 'static,
    ) {
        self.push_entry(family, labels, Source::Histograms(Box::new(collector)));
    }

    fn push_entry(&self, family: &str, labels: &[(&str, String)], source: Source) {
        let entry = Entry {
            family: family.to_string(),
            labels: labels.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            source,
            last: HashMap::new(),
            last_hist: HashMap::new(),
        };
        if let Ok(mut entries) = self.entries.lock() {
            entries.push(entry);
        }
    }

    /// Number of registered families.
    #[must_use]
    pub fn families(&self) -> usize {
        self.entries.lock().map(|entries| entries.len()).unwrap_or(0)
    }

    /// Samples every collector and returns the cumulative values.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.collect(false)
    }

    /// Samples every collector and returns only the change since the
    /// previous `interval_delta` call (the first call returns everything,
    /// matching `snapshot_delta` against a zero baseline). Values that
    /// went backwards saturate at zero.
    #[must_use]
    pub fn interval_delta(&self) -> MetricsSnapshot {
        self.collect(true)
    }

    fn collect(&self, delta: bool) -> MetricsSnapshot {
        let mut families = Vec::new();
        let Ok(mut entries) = self.entries.lock() else {
            return MetricsSnapshot { families };
        };
        for entry in entries.iter_mut() {
            let mut samples = Vec::new();
            let mut histograms = Vec::new();
            match &entry.source {
                Source::Counters(collector) => {
                    samples = collector.samples();
                    if delta {
                        for sample in &mut samples {
                            let key = metric_key(sample.name, &sample.labels);
                            let prev = entry.last.insert(key, sample.value).unwrap_or(0);
                            sample.value = sample.value.saturating_sub(prev);
                        }
                    }
                }
                Source::Histograms(collector) => {
                    histograms = collector.histograms();
                    if delta {
                        for sample in &mut histograms {
                            let key = metric_key(sample.name, &sample.labels);
                            let prev = entry.last_hist.insert(key, sample.snapshot.clone());
                            if let Some(prev) = prev {
                                sample.snapshot = sample.snapshot.since(&prev);
                            }
                        }
                    }
                }
            }
            families.push(FamilySnapshot {
                family: entry.family.clone(),
                labels: entry.labels.clone(),
                samples,
                histograms,
            });
        }
        MetricsSnapshot { families }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry").field("families", &self.families()).finish()
    }
}

fn metric_key(name: &str, labels: &[(&'static str, String)]) -> String {
    let mut key = name.to_string();
    for (k, v) in labels {
        key.push('\u{1f}');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

/// One registered family's samples within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// The family name the collector was registered under.
    pub family: String,
    /// The fixed labels of the registration.
    pub labels: Vec<(String, String)>,
    /// The sampled counters (empty for histogram families).
    pub samples: Vec<Sample>,
    /// The sampled histograms (empty for counter families).
    pub histograms: Vec<HistogramSample>,
}

/// A point-in-time sampling of every family in a registry, renderable as
/// Prometheus-style text or JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One entry per registered family, in registration order.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// `true` when no family produced any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.iter().all(|f| f.samples.is_empty() && f.histograms.is_empty())
    }

    /// Sum of every sample named `name` in families named `family`
    /// (0 when absent) — a convenience for tests and report code.
    #[must_use]
    pub fn value(&self, family: &str, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.family == family)
            .flat_map(|f| &f.samples)
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Every histogram sample named `name` in families named `family`,
    /// merged into one distribution (empty when absent).
    #[must_use]
    pub fn histogram(&self, family: &str, name: &str) -> LogHistogramSnapshot {
        let mut merged = LogHistogramSnapshot::empty();
        for sample in self
            .families
            .iter()
            .filter(|f| f.family == family)
            .flat_map(|f| &f.histograms)
            .filter(|h| h.name == name)
        {
            merged.merge(&sample.snapshot);
        }
        merged
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `ltnc_<family>_<name>{labels} value` line per counter sample
    /// with a `# TYPE … counter` header per distinct metric name, and
    /// for each histogram sample the standard histogram series —
    /// cumulative `_bucket{…,le="bound"}` lines (power-of-two bounds up
    /// to the highest occupied bucket, then `le="+Inf"`), `_sum`, and
    /// `_count`, under a `# TYPE … histogram` header.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for family in &self.families {
            for sample in &family.samples {
                let metric = format!("ltnc_{}_{}", family.family, sample.name);
                if !typed.contains(&metric) {
                    out.push_str("# TYPE ");
                    out.push_str(&metric);
                    out.push_str(" counter\n");
                    typed.push(metric.clone());
                }
                out.push_str(&metric);
                push_labels(&mut out, &family.labels, &sample.labels, None);
                out.push(' ');
                out.push_str(&sample.value.to_string());
                out.push('\n');
            }
            for sample in &family.histograms {
                let metric = format!("ltnc_{}_{}", family.family, sample.name);
                if !typed.contains(&metric) {
                    out.push_str("# TYPE ");
                    out.push_str(&metric);
                    out.push_str(" histogram\n");
                    typed.push(metric.clone());
                }
                let snapshot = &sample.snapshot;
                let highest = snapshot
                    .buckets
                    .iter()
                    .rposition(|&count| count > 0)
                    // The last bucket's bound is u64::MAX; `+Inf` already
                    // covers it, so finite lines stop one short.
                    .map(|index| index.min(LOG_BUCKETS - 2));
                let mut cumulative = 0u64;
                if let Some(highest) = highest {
                    for index in 0..=highest {
                        cumulative += snapshot.buckets[index];
                        out.push_str(&metric);
                        out.push_str("_bucket");
                        let le = bucket_bound(index).to_string();
                        push_labels(&mut out, &family.labels, &sample.labels, Some(&le));
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                }
                let count = snapshot.count();
                out.push_str(&metric);
                out.push_str("_bucket");
                push_labels(&mut out, &family.labels, &sample.labels, Some("+Inf"));
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
                out.push_str(&metric);
                out.push_str("_sum");
                push_labels(&mut out, &family.labels, &sample.labels, None);
                out.push(' ');
                out.push_str(&snapshot.sum.to_string());
                out.push('\n');
                out.push_str(&metric);
                out.push_str("_count");
                push_labels(&mut out, &family.labels, &sample.labels, None);
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document (families in registration
    /// order, each with its labels and samples).
    #[must_use]
    pub fn to_json(&self) -> String {
        let families = self
            .families
            .iter()
            .map(|family| {
                let mut labels = JsonValue::object();
                for (k, v) in &family.labels {
                    labels = labels.field(k, v.as_str());
                }
                let samples = family
                    .samples
                    .iter()
                    .map(|sample| {
                        let mut doc = JsonValue::object().field("name", sample.name);
                        if !sample.labels.is_empty() {
                            let mut extra = JsonValue::object();
                            for (k, v) in &sample.labels {
                                extra = extra.field(k, v.as_str());
                            }
                            doc = doc.field("labels", extra);
                        }
                        doc.field("value", sample.value)
                    })
                    .collect();
                let histograms: Vec<JsonValue> = family
                    .histograms
                    .iter()
                    .map(|sample| {
                        let mut doc = JsonValue::object().field("name", sample.name);
                        if !sample.labels.is_empty() {
                            let mut extra = JsonValue::object();
                            for (k, v) in &sample.labels {
                                extra = extra.field(k, v.as_str());
                            }
                            doc = doc.field("labels", extra);
                        }
                        let snapshot = &sample.snapshot;
                        let mut cumulative = 0u64;
                        let buckets = snapshot
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &count)| count > 0)
                            .map(|(index, &count)| {
                                cumulative += count;
                                JsonValue::object()
                                    .field("le", bucket_bound(index))
                                    .field("cumulative", cumulative)
                            })
                            .collect();
                        doc.field("count", snapshot.count())
                            .field("sum", snapshot.sum)
                            .field("max", snapshot.max)
                            .field("p50", snapshot.p50())
                            .field("p90", snapshot.p90())
                            .field("p99", snapshot.p99())
                            .field("buckets", JsonValue::array(buckets))
                    })
                    .collect();
                let mut doc = JsonValue::object()
                    .field("family", family.family.as_str())
                    .field("labels", labels)
                    .field("samples", JsonValue::array(samples));
                if !histograms.is_empty() {
                    doc = doc.field("histograms", JsonValue::array(histograms));
                }
                doc
            })
            .collect();
        JsonValue::object().field("families", JsonValue::array(families)).render()
    }
}

/// Renders a `{k="v",…}` label block from the family labels, the
/// sample's own labels, and (for histogram bucket lines) a trailing
/// `le` bound. Writes nothing when every source is empty.
fn push_labels(
    out: &mut String,
    family_labels: &[(String, String)],
    sample_labels: &[(&'static str, String)],
    le: Option<&str>,
) {
    let mut labels: Vec<(&str, &str)> =
        family_labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    labels.extend(sample_labels.iter().map(|(k, v)| (*k, v.as_str())));
    if let Some(le) = le {
        labels.push(("le", le));
    }
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;

    fn counter_registry() -> (MetricsRegistry, Arc<AtomicU64>) {
        let live = Arc::new(AtomicU64::new(0));
        let registry = MetricsRegistry::new();
        let source = live.clone();
        registry.register("wire", &[("node", "n0".to_string())], move || {
            vec![Sample::plain("datagrams_sent", source.load(Ordering::Relaxed))]
        });
        (registry, live)
    }

    #[test]
    fn snapshot_is_cumulative_delta_is_interval() {
        let (registry, live) = counter_registry();
        live.store(5, Ordering::Relaxed);
        assert_eq!(registry.snapshot().value("wire", "datagrams_sent"), 5);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 5);
        live.store(8, Ordering::Relaxed);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 3);
        // Unchanged interval → zero; snapshot stays cumulative.
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 0);
        assert_eq!(registry.snapshot().value("wire", "datagrams_sent"), 8);
        // A counter that went backwards saturates at zero.
        live.store(2, Ordering::Relaxed);
        assert_eq!(registry.interval_delta().value("wire", "datagrams_sent"), 0);
    }

    #[test]
    fn prometheus_text_has_types_labels_and_values() {
        let (registry, live) = counter_registry();
        live.store(7, Ordering::Relaxed);
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ltnc_wire_datagrams_sent counter"));
        assert!(text.contains("ltnc_wire_datagrams_sent{node=\"n0\"} 7"));
    }

    #[test]
    fn sample_labels_merge_after_family_labels() {
        let registry = MetricsRegistry::new();
        registry.register("stripe", &[("fetch", "f1".to_string())], move || {
            vec![Sample { name: "delivered", labels: vec![("replica", "2".to_string())], value: 9 }]
        });
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("ltnc_stripe_delivered{fetch=\"f1\",replica=\"2\"} 9"));
        // Deltas keyed per label set: same name, distinct replica labels
        // do not collide.
        assert_eq!(registry.interval_delta().value("stripe", "delivered"), 9);
        assert_eq!(registry.interval_delta().value("stripe", "delivered"), 0);
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let (registry, live) = counter_registry();
        live.store(4, Ordering::Relaxed);
        let json = registry.snapshot().to_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.contains("\"family\":\"wire\""));
        assert!(json.contains("\"name\":\"datagrams_sent\""));
        assert!(json.contains("\"value\":4"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.register("serve", &[("path", "a\"b\\c".to_string())], move || {
            vec![Sample::plain("hits", 1)]
        });
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains(r#"path="a\"b\\c""#));
    }

    #[test]
    fn empty_registry_renders_empty() {
        let registry = MetricsRegistry::new();
        let snap = registry.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.to_prometheus(), "");
        assert_eq!(snap.to_json(), "{\"families\":[]}");
    }

    fn histogram_registry() -> (MetricsRegistry, Arc<ltnc_metrics::LogHistogram>) {
        let live = Arc::new(ltnc_metrics::LogHistogram::new());
        let registry = MetricsRegistry::new();
        let source = Arc::clone(&live);
        registry.register_histograms("wire", &[("node", "n0".to_string())], move || {
            vec![HistogramSample::plain("delivery_latency_us", source.snapshot())]
        });
        (registry, live)
    }

    /// Extracts `(le, value)` pairs from the rendered `_bucket` lines of
    /// one metric, in exposition order.
    fn bucket_lines(text: &str, metric: &str) -> Vec<(String, u64)> {
        text.lines()
            .filter(|line| line.starts_with(&format!("{metric}_bucket{{")))
            .map(|line| {
                let le_start = line.find("le=\"").expect("bucket line without le") + 4;
                let le_end = line[le_start..].find('"').unwrap() + le_start;
                let value = line.rsplit(' ').next().unwrap().parse().unwrap();
                (line[le_start..le_end].to_string(), value)
            })
            .collect()
    }

    #[test]
    fn histogram_exposition_buckets_are_cumulative_and_end_at_inf() {
        let (registry, live) = histogram_registry();
        for v in [1u64, 3, 3, 90, 4_000, 4_000, 4_001] {
            live.record(v);
        }
        let text = registry.snapshot().to_prometheus();
        let metric = "ltnc_wire_delivery_latency_us";
        assert!(text.contains(&format!("# TYPE {metric} histogram")));

        let buckets = bucket_lines(&text, metric);
        assert!(buckets.len() >= 2, "expected finite buckets plus +Inf: {text}");
        // Cumulative: non-decreasing along the le sequence.
        for pair in buckets.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "buckets not cumulative: {buckets:?}");
        }
        // The final bucket is +Inf and equals _count.
        let (last_le, last_value) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf");
        assert_eq!(*last_value, 7);
        assert!(text.contains(&format!("{metric}_count{{node=\"n0\"}} 7")));
        assert!(text.contains(&format!("{metric}_sum{{node=\"n0\"}} {}", 1 + 3 + 3 + 90 + 12_001)));
        // Finite bounds are powers of two minus one, strictly increasing.
        let mut prev = None;
        for (le, _) in &buckets[..buckets.len() - 1] {
            let bound: u64 = le.parse().expect("finite le bound");
            assert!((bound + 1).is_power_of_two(), "bound {bound} not 2^n - 1");
            assert!(prev.is_none_or(|p| bound > p));
            prev = Some(bound);
        }
    }

    #[test]
    fn histogram_count_equals_sum_of_bucket_increments() {
        let (registry, live) = histogram_registry();
        for v in [2u64, 5, 9, 1_000_000] {
            live.record(v);
        }
        let snap = registry.snapshot();
        let merged = snap.histogram("wire", "delivery_latency_us");
        assert_eq!(merged.count(), merged.buckets.iter().sum::<u64>());
        assert_eq!(merged.count(), 4);

        // The same invariant through the text exposition: each bucket's
        // increment over its predecessor sums to _count.
        let text = snap.to_prometheus();
        let buckets = bucket_lines(&text, "ltnc_wire_delivery_latency_us");
        let mut prev = 0;
        let mut increments = 0;
        for (_, cumulative) in &buckets[..buckets.len() - 1] {
            increments += cumulative - prev;
            prev = *cumulative;
        }
        let inf = buckets.last().unwrap().1;
        increments += inf - prev;
        assert_eq!(increments, 4);
        assert_eq!(inf, 4);
    }

    #[test]
    fn empty_histogram_still_renders_inf_sum_count() {
        let (registry, _live) = histogram_registry();
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("ltnc_wire_delivery_latency_us_bucket{node=\"n0\",le=\"+Inf\"} 0"));
        assert!(text.contains("ltnc_wire_delivery_latency_us_sum{node=\"n0\"} 0"));
        assert!(text.contains("ltnc_wire_delivery_latency_us_count{node=\"n0\"} 0"));
    }

    #[test]
    fn histogram_interval_delta_subtracts_buckets() {
        let (registry, live) = histogram_registry();
        live.record(10);
        live.record(20);
        assert_eq!(registry.interval_delta().histogram("wire", "delivery_latency_us").count(), 2);
        live.record(30);
        let delta = registry.interval_delta().histogram("wire", "delivery_latency_us");
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum, 30);
        // Cumulative snapshot unaffected by delta bookkeeping.
        assert_eq!(registry.snapshot().histogram("wire", "delivery_latency_us").count(), 3);
    }

    #[test]
    fn histogram_json_carries_percentiles() {
        let (registry, live) = histogram_registry();
        for _ in 0..100 {
            live.record(100);
        }
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"histograms\":["));
        assert!(json.contains("\"name\":\"delivery_latency_us\""));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"p50\":100"));
        assert!(json.contains("\"p99\":100"));
        assert!(json.contains("\"buckets\":[{\"le\":127,\"cumulative\":100}]"));
    }
}
