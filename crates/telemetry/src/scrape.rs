use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::MetricsRegistry;

/// Limits protecting a [`ScrapeServer`] from slow or malformed clients.
///
/// A scraper that connects and never sends a request, trickles bytes, or
/// never reads the response holds exactly one connection for at most
/// `read_deadline + write_deadline`; it can never stall the instrumented
/// process, whose hot paths only share the registry's short mutex.
///
/// ```
/// use std::time::Duration;
/// use ltnc_telemetry::ScrapeOptions;
///
/// let options = ScrapeOptions {
///     read_deadline: Duration::from_millis(200),
///     ..ScrapeOptions::default()
/// };
/// assert!(options.read_deadline < ScrapeOptions::default().read_deadline);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeOptions {
    /// Total time allowed for a client to deliver its request head
    /// (default 1s).
    pub read_deadline: Duration,
    /// Socket write timeout for the response; a client that stops
    /// reading gets disconnected (default 2s).
    pub write_deadline: Duration,
    /// Maximum accepted request-head size; anything longer is rejected
    /// as malformed (default 4096 bytes).
    pub max_request_bytes: usize,
}

impl Default for ScrapeOptions {
    fn default() -> ScrapeOptions {
        ScrapeOptions {
            read_deadline: Duration::from_secs(1),
            write_deadline: Duration::from_secs(2),
            max_request_bytes: 4096,
        }
    }
}

/// Builds the on-demand flight-recorder document served at `/flight`
/// (see [`ScrapeServer::spawn_with_flight`]). Called on the listener
/// thread per request; must be cheap and non-blocking.
pub type FlightHandler = dyn Fn() -> String + Send + Sync;

/// A thread-per-listener TCP endpoint serving metric snapshots.
///
/// Speaks just enough HTTP/1.0 for `curl` and a Prometheus scraper:
///
/// * `GET /metrics` — Prometheus text exposition (cumulative values),
/// * `GET /metrics.json` — the same snapshot as a JSON document,
/// * `GET /healthz` — cheap liveness probe (`200 ok`, no snapshot taken),
/// * `GET /flight` — the live flight-recorder dump, when a
///   [`FlightHandler`] was installed ([`ScrapeServer::spawn_with_flight`]);
///   `404` otherwise,
/// * anything else — `404`; malformed or oversized requests — `400`.
///
/// One dedicated OS thread accepts and serves connections sequentially;
/// every connection is bounded by [`ScrapeOptions`] deadlines, so the
/// endpoint needs no connection pool and cannot accumulate stuck
/// sockets.
///
/// ```no_run
/// use std::sync::Arc;
/// use ltnc_telemetry::{MetricsRegistry, ScrapeOptions, ScrapeServer, Sample};
///
/// let registry = Arc::new(MetricsRegistry::new());
/// registry.register("serve", &[], || vec![Sample::plain("sessions_accepted", 1)]);
/// let server = ScrapeServer::spawn(
///     "127.0.0.1:0".parse().unwrap(),
///     registry,
///     ScrapeOptions::default(),
/// ).unwrap();
/// println!("scrape me at http://{}/metrics", server.local_addr());
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct ScrapeServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (port 0 picks a free port — see
    /// [`ScrapeServer::local_addr`]) and starts the listener thread.
    pub fn spawn(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        options: ScrapeOptions,
    ) -> std::io::Result<ScrapeServer> {
        ScrapeServer::spawn_inner(addr, registry, options, None)
    }

    /// [`ScrapeServer::spawn`] with a flight-recorder handler installed:
    /// `GET /flight` answers with whatever JSON document `flight`
    /// renders at request time (an on-demand post-mortem of a live
    /// system). Without this constructor the route is a `404`.
    pub fn spawn_with_flight(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        options: ScrapeOptions,
        flight: Arc<FlightHandler>,
    ) -> std::io::Result<ScrapeServer> {
        ScrapeServer::spawn_inner(addr, registry, options, Some(flight))
    }

    fn spawn_inner(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        options: ScrapeOptions,
        flight: Option<Arc<FlightHandler>>,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept so the thread notices `stop` promptly.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread =
            std::thread::Builder::new().name("ltnc-scrape".to_string()).spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            serve_client(stream, &registry, &options, flight.as_deref());
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(ScrapeServer { local_addr, stop, thread: Some(thread) })
    }

    /// The bound address (resolves a port-0 bind).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request head within the deadlines and answers it. All
/// errors are per-connection: the listener thread survives anything a
/// client does.
fn serve_client(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    options: &ScrapeOptions,
    flight: Option<&FlightHandler>,
) {
    // Per-read timeout, bounded overall by the deadline loop below.
    let _ = stream.set_read_timeout(Some(options.read_deadline.max(Duration::from_millis(1))));
    let _ = stream.set_write_timeout(Some(options.write_deadline.max(Duration::from_millis(1))));

    let started = Instant::now();
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let request_line = loop {
        if started.elapsed() > options.read_deadline || head.len() > options.max_request_bytes {
            respond(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Client closed before completing a request head.
                return;
            }
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > options.max_request_bytes {
                    respond(&mut stream, 400, "text/plain", "bad request\n");
                    return;
                }
                if let Some(end) = find_head_end(&head) {
                    match parse_request_line(&head[..end]) {
                        Some(path) => break path,
                        None => {
                            respond(&mut stream, 400, "text/plain", "bad request\n");
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                respond(&mut stream, 400, "text/plain", "bad request\n");
                return;
            }
            Err(_) => return,
        }
    };

    match request_line.as_str() {
        "/metrics" => {
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                &registry.snapshot().to_prometheus(),
            );
        }
        "/metrics.json" => {
            respond(&mut stream, 200, "application/json", &registry.snapshot().to_json());
        }
        // Liveness probe: answers without touching the registry, so a
        // harness can poll for "the endpoint is up" without paying for
        // (or parsing) a full scrape.
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        // On-demand flight-recorder dump, when a handler is installed.
        "/flight" => match flight {
            Some(dump) => respond(&mut stream, 200, "application/json", &dump()),
            None => respond(&mut stream, 404, "text/plain", "not found\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// End of the request head: bare `\n\n` also accepted (lenient parse).
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| head.windows(2).position(|w| w == b"\n\n"))
}

/// Extracts the path from `GET <path> HTTP/1.x`; `None` on anything else.
fn parse_request_line(head: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    // Ignore a query string; scrape paths carry no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Bounded by the socket write timeout; a client that stops reading
    // just loses its response.
    if stream.write_all(head.as_bytes()).is_ok() {
        let _ = stream.write_all(body.as_bytes());
    }
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Sample;

    fn test_server(options: ScrapeOptions) -> ScrapeServer {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register("serve", &[("server", "t".to_string())], || {
            vec![Sample::plain("sessions_accepted", 2)]
        });
        ScrapeServer::spawn("127.0.0.1:0".parse().unwrap(), registry, options).unwrap()
    }

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        let server = test_server(ScrapeOptions::default());
        let addr = server.local_addr();
        let text = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(text.starts_with("HTTP/1.0 200"));
        assert!(text.contains("ltnc_serve_sessions_accepted{server=\"t\"} 2"));
        let json = get(addr, "GET /metrics.json HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(json.starts_with("HTTP/1.0 200"));
        assert!(json.contains("\"family\":\"serve\""));
        let missing = get(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"));
        server.shutdown();
    }

    #[test]
    fn flight_route_serves_the_handler_or_404() {
        let server = test_server(ScrapeOptions::default());
        let missing = get(server.local_addr(), "GET /flight HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "no handler installed means 404");
        server.shutdown();

        let registry = Arc::new(MetricsRegistry::new());
        let server = ScrapeServer::spawn_with_flight(
            "127.0.0.1:0".parse().unwrap(),
            registry,
            ScrapeOptions::default(),
            Arc::new(|| "{\"reason\":\"demand\"}".to_string()),
        )
        .unwrap();
        let dump = get(server.local_addr(), "GET /flight HTTP/1.0\r\n\r\n");
        assert!(dump.starts_with("HTTP/1.0 200"));
        assert!(dump.contains("application/json"));
        assert!(dump.ends_with("{\"reason\":\"demand\"}"));
        server.shutdown();
    }

    #[test]
    fn healthz_answers_ok_without_a_scrape() {
        let server = test_server(ScrapeOptions::default());
        let addr = server.local_addr();
        let health = get(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(health.starts_with("HTTP/1.0 200"));
        assert!(health.ends_with("ok\n"));
        // No metric lines ride along on the probe.
        assert!(!health.contains("ltnc_"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_do_not_stall() {
        let options =
            ScrapeOptions { read_deadline: Duration::from_millis(300), ..ScrapeOptions::default() };
        let server = test_server(options);
        let addr = server.local_addr();
        let bad = get(addr, "BLAH blah\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.0 400"));
        // A well-formed scrape right after is still answered.
        let ok = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200"));
        server.shutdown();
    }

    #[test]
    fn silent_client_is_cut_at_the_read_deadline() {
        let options =
            ScrapeOptions { read_deadline: Duration::from_millis(200), ..ScrapeOptions::default() };
        let server = test_server(options);
        let addr = server.local_addr();
        // Connect, send nothing: within ~the deadline the server must
        // move on and answer the next client.
        let silent = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        let ok = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200"));
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "a silent client stalled the endpoint for {:?}",
            started.elapsed()
        );
        drop(silent);
        server.shutdown();
    }

    #[test]
    fn oversized_request_heads_are_rejected() {
        let options = ScrapeOptions { max_request_bytes: 64, ..ScrapeOptions::default() };
        let server = test_server(options);
        let addr = server.local_addr();
        let huge = format!("GET /metrics{} HTTP/1.0\r\n\r\n", "x".repeat(512));
        let out = get(addr, &huge);
        assert!(out.starts_with("HTTP/1.0 400"));
        server.shutdown();
    }
}
