//! A minimal JSON document builder.
//!
//! The workspace's vendored `serde` is an offline no-op facade (see
//! `vendor/README.md`), so machine-readable output is rendered by hand.
//! [`JsonValue`] covers exactly what the scrape endpoint and the
//! examples' `--report` writers need: objects, arrays, strings, numbers
//! and booleans, with correct string escaping and deterministic member
//! order (members render in insertion order).
//!
//! ```
//! use ltnc_telemetry::json::JsonValue;
//!
//! let doc = JsonValue::object()
//!     .field("scheme", "ltnc")
//!     .field("bytes_sent", 1024u64)
//!     .field("bit_exact", true);
//! assert_eq!(doc.render(), r#"{"scheme":"ltnc","bytes_sent":1024,"bit_exact":true}"#);
//! ```

use core::fmt;

/// One JSON value; build with the constructors, render with
/// [`JsonValue::render`] (or `Display`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter in the workspace).
    Int(i64),
    /// A finite float, rendered with enough precision to round-trip;
    /// non-finite values render as `null` per JSON's limits.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered list.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    #[must_use]
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An array of already-built values.
    #[must_use]
    pub fn array(items: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(items)
    }

    /// Appends a member to an object (panics if `self` is not an
    /// object — builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(members) => members.push((key.to_string(), value.into())),
            _ => panic!("JsonValue::field on a non-object"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                out.push_str(&i.to_string());
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a fractional part ("1.0", not "1") and
                    // round-trips f64.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        // Counters beyond i64::MAX do not occur in practice; clamp rather
        // than emit JSON many parsers reject.
        JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Int(i64::from(v))
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::from(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object()
            .field("name", "run")
            .field("ok", true)
            .field("none", JsonValue::Null)
            .field("hops", JsonValue::array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]))
            .field("nested", JsonValue::object().field("rate", 0.25));
        assert_eq!(
            doc.render(),
            r#"{"name":"run","ok":true,"none":null,"hops":[1,2],"nested":{"rate":0.25}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        assert_eq!(JsonValue::from(1.0).render(), "1.0");
        assert_eq!(JsonValue::from(0.1).render(), "0.1");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn u64_clamps_to_i64() {
        assert_eq!(JsonValue::from(u64::MAX).render(), i64::MAX.to_string());
    }
}
