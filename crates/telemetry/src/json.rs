//! A minimal JSON document builder.
//!
//! The workspace's vendored `serde` is an offline no-op facade (see
//! `vendor/README.md`), so machine-readable output is rendered by hand.
//! [`JsonValue`] covers exactly what the scrape endpoint and the
//! examples' `--report` writers need: objects, arrays, strings, numbers
//! and booleans, with correct string escaping and deterministic member
//! order (members render in insertion order).
//!
//! ```
//! use ltnc_telemetry::json::JsonValue;
//!
//! let doc = JsonValue::object()
//!     .field("scheme", "ltnc")
//!     .field("bytes_sent", 1024u64)
//!     .field("bit_exact", true);
//! assert_eq!(doc.render(), r#"{"scheme":"ltnc","bytes_sent":1024,"bit_exact":true}"#);
//! ```

use core::fmt;

/// Schema version stamped as the top-level `schema_version` member of
/// every machine-readable run report in the workspace — the examples'
/// `--report` JSON and the bench-report pipeline's
/// `BENCH_<scenario>.json`. Consumers (the CI regression compare, any
/// dashboard ingesting the artifacts) should check it before reading
/// other members; bump it on any breaking change to the member layout.
/// Version history: 1 — initial layout; 2 — the `gf2_kernel` scenario
/// joined the bench-report set (baselines regenerated).
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// One JSON value; build with the constructors, render with
/// [`JsonValue::render`] (or `Display`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter in the workspace).
    Int(i64),
    /// A finite float, rendered with enough precision to round-trip;
    /// non-finite values render as `null` per JSON's limits.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered list.
    Array(Vec<JsonValue>),
    /// An object; members keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    #[must_use]
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An array of already-built values.
    #[must_use]
    pub fn array(items: Vec<JsonValue>) -> JsonValue {
        JsonValue::Array(items)
    }

    /// Appends a member to an object (panics if `self` is not an
    /// object — builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(members) => members.push((key.to_string(), value.into())),
            _ => panic!("JsonValue::field on a non-object"),
        }
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a JSON document (the inverse of [`JsonValue::render`], used
    /// by the bench-report regression compare to read committed baseline
    /// files back). Strict enough for machine-written JSON: no comments,
    /// no trailing commas; numbers with a fraction or exponent become
    /// [`JsonValue::Float`], bare integers [`JsonValue::Int`].
    ///
    /// # Errors
    ///
    /// A static description of the first syntax problem encountered.
    pub fn parse(text: &str) -> Result<JsonValue, &'static str> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err("trailing characters after the document");
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Float` (`None` otherwise).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The integer value of an `Int` (`None` otherwise).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The borrowed string of a `Str` (`None` otherwise).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The items of an `Array` (`None` otherwise).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                out.push_str(&i.to_string());
            }
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a fractional part ("1.0", not "1") and
                    // round-trips f64.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the document bytes. Depth is bounded
/// by the recursion limit of the caller's stack; the machine-written
/// documents this reads nest a handful of levels.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), &'static str> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err("unexpected character")
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, &'static str> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<JsonValue, &'static str> {
        match self.peek().ok_or("unexpected end of document")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err("unexpected character"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, &'static str> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, &'static str> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, &'static str> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by the
                            // writer; map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("unknown escape"),
                    }
                    self.pos += 1;
                }
                first => {
                    // Multi-byte UTF-8 sequences pass through verbatim:
                    // the input is a &str, so they are already valid.
                    let start = self.pos;
                    let len = match first {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(start..start + len).ok_or("truncated string")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, &'static str> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if float {
            text.parse::<f64>().map(JsonValue::Float).map_err(|_| "bad number")
        } else {
            text.parse::<i64>().map(JsonValue::Int).map_err(|_| "bad number")
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        // Counters beyond i64::MAX do not occur in practice; clamp rather
        // than emit JSON many parsers reject.
        JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Int(i64::from(v))
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::from(v as u64)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object()
            .field("name", "run")
            .field("ok", true)
            .field("none", JsonValue::Null)
            .field("hops", JsonValue::array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]))
            .field("nested", JsonValue::object().field("rate", 0.25));
        assert_eq!(
            doc.render(),
            r#"{"name":"run","ok":true,"none":null,"hops":[1,2],"nested":{"rate":0.25}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(doc.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        assert_eq!(JsonValue::from(1.0).render(), "1.0");
        assert_eq!(JsonValue::from(0.1).render(), "0.1");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn u64_clamps_to_i64() {
        assert_eq!(JsonValue::from(u64::MAX).render(), i64::MAX.to_string());
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = JsonValue::object()
            .field("name", "run \"x\"\n")
            .field("ok", true)
            .field("none", JsonValue::Null)
            .field("n", -42i64)
            .field("rate", 0.25)
            .field("hops", JsonValue::array(vec![JsonValue::from(1u64), JsonValue::from(2u64)]))
            .field("nested", JsonValue::object().field("goodput", 123456.5));
        let parsed = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("n").and_then(JsonValue::as_i64), Some(-42));
        assert_eq!(
            parsed.get("nested").and_then(|n| n.get("goodput")).and_then(JsonValue::as_f64),
            Some(123456.5)
        );
        assert_eq!(parsed.get("hops").and_then(JsonValue::as_array).map(<[_]>::len), Some(2));
        assert_eq!(parsed.get("name").and_then(JsonValue::as_str), Some("run \"x\"\n"));
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        let parsed = JsonValue::parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").unwrap();
        let items = parsed.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0], JsonValue::Int(1));
        assert_eq!(items[1], JsonValue::Float(25.0));
        assert_eq!(items[2], JsonValue::Str("A".to_string()));

        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted invalid JSON: {bad:?}");
        }
    }
}
