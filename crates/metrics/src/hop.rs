use core::fmt;

use serde::{Deserialize, Serialize};

use crate::Histogram;

/// Aggregate statistics of the nodes at one hop distance from the source.
///
/// A multi-hop run buckets every node by its overlay distance to the
/// source (0 = the source itself, 1 = its direct neighbours, …) and sums
/// each bucket's coding work, delivery outcomes and injected link faults
/// into one of these. The interesting shape is how the columns fall off
/// with distance: in-network recoding keeps `useful_deliveries` (and
/// completion) high at the far end of a lossy path, while the recoding
/// cost concentrates on the interior relays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopStats {
    /// Nodes at this hop distance.
    pub nodes: u64,
    /// Nodes at this distance that decoded the full object.
    pub completed: u64,
    /// Recoding operations performed by these nodes (relay emissions; for
    /// the source, encoding).
    pub recoding_ops: u64,
    /// Decoding operations performed by these nodes.
    pub decoding_ops: u64,
    /// Payload deliveries that were innovative at these nodes.
    pub useful_deliveries: u64,
    /// Datagram faults injected on these nodes' sockets (their inbound
    /// links, in a per-link topology run).
    pub faults_injected: u64,
}

impl HopStats {
    /// Adds every field of `other` into `self`.
    pub fn merge(&mut self, other: &HopStats) {
        self.nodes += other.nodes;
        self.completed += other.completed;
        self.recoding_ops += other.recoding_ops;
        self.decoding_ops += other.decoding_ops;
        self.useful_deliveries += other.useful_deliveries;
        self.faults_injected += other.faults_injected;
    }

    /// Everything that happened since `earlier`, field by field
    /// (saturating at zero).
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &HopStats) -> HopStats {
        HopStats {
            nodes: self.nodes.saturating_sub(earlier.nodes),
            completed: self.completed.saturating_sub(earlier.completed),
            recoding_ops: self.recoding_ops.saturating_sub(earlier.recoding_ops),
            decoding_ops: self.decoding_ops.saturating_sub(earlier.decoding_ops),
            useful_deliveries: self.useful_deliveries.saturating_sub(earlier.useful_deliveries),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
        }
    }
}

/// Per-hop-distance rollup of a multi-hop dissemination.
///
/// Bucket `d` aggregates every node whose overlay distance to the source
/// is `d` hops. Built by the topology harness (`ltnc-topo`) from the
/// per-node reports of a swarm run; merging two `HopCounters` merges
/// bucket-by-bucket, so repeated runs aggregate naturally.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopCounters {
    buckets: Vec<HopStats>,
}

impl HopCounters {
    /// An empty rollup.
    #[must_use]
    pub fn new() -> Self {
        HopCounters::default()
    }

    /// Adds `stats` into the bucket at `distance` hops, growing the
    /// bucket array as needed.
    pub fn record(&mut self, distance: usize, stats: &HopStats) {
        if distance >= self.buckets.len() {
            self.buckets.resize(distance + 1, HopStats::default());
        }
        self.buckets[distance].merge(stats);
    }

    /// The bucket at `distance` hops (all-zero when never recorded).
    #[must_use]
    pub fn get(&self, distance: usize) -> HopStats {
        self.buckets.get(distance).copied().unwrap_or_default()
    }

    /// The farthest hop distance with any nodes, or `None` when empty.
    #[must_use]
    pub fn max_distance(&self) -> Option<usize> {
        self.buckets.iter().rposition(|b| b.nodes > 0)
    }

    /// Iterates over `(distance, stats)` for buckets with nodes.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &HopStats)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, b)| b.nodes > 0)
    }

    /// Merges another rollup into this one, bucket by bucket.
    pub fn merge(&mut self, other: &HopCounters) {
        for (distance, stats) in other.buckets.iter().enumerate() {
            self.record(distance, stats);
        }
    }

    /// Everything that happened since `earlier`, bucket by bucket
    /// (saturating at zero per field). Buckets only present now pass
    /// through whole; `earlier`'s extra buckets are ignored, matching the
    /// scalar saturation rule.
    ///
    /// ```
    /// use ltnc_metrics::{HopCounters, HopStats};
    ///
    /// let mut earlier = HopCounters::new();
    /// earlier.record(1, &HopStats { nodes: 2, useful_deliveries: 10, ..HopStats::default() });
    /// let mut now = earlier.clone();
    /// now.record(1, &HopStats { useful_deliveries: 5, ..HopStats::default() });
    /// assert_eq!(now.snapshot_delta(&earlier).get(1).useful_deliveries, 5);
    /// ```
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &HopCounters) -> HopCounters {
        let blank = HopStats::default();
        HopCounters {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(d, bucket)| bucket.snapshot_delta(earlier.buckets.get(d).unwrap_or(&blank)))
                .collect(),
        }
    }

    /// The hop-distance-to-source histogram: one observation per node at
    /// its distance.
    #[must_use]
    pub fn distance_histogram(&self) -> Histogram {
        let mut histogram = Histogram::new();
        for (distance, stats) in self.iter() {
            histogram.record_n(distance, stats.nodes);
        }
        histogram
    }

    /// Every bucket summed into one `HopStats`.
    #[must_use]
    pub fn total(&self) -> HopStats {
        let mut total = HopStats::default();
        for bucket in &self.buckets {
            total.merge(bucket);
        }
        total
    }

    /// `true` when no node was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.nodes == 0)
    }
}

impl fmt::Display for HopCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (distance, stats) in self.iter() {
            writeln!(
                f,
                "hop {distance}: {}/{} complete, {} recode ops, {} decode ops, \
                 {} useful, {} faults",
                stats.completed,
                stats.nodes,
                stats.recoding_ops,
                stats.decoding_ops,
                stats.useful_deliveries,
                stats.faults_injected,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(nodes: u64, completed: u64) -> HopStats {
        HopStats { nodes, completed, recoding_ops: 10 * nodes, ..HopStats::default() }
    }

    #[test]
    fn empty_rollup() {
        let h = HopCounters::new();
        assert!(h.is_empty());
        assert_eq!(h.max_distance(), None);
        assert_eq!(h.get(3), HopStats::default());
        assert!(h.distance_histogram().is_empty());
        assert_eq!(h.to_string(), "");
    }

    #[test]
    fn record_grows_and_merges_buckets() {
        let mut h = HopCounters::new();
        h.record(0, &stats(1, 1));
        h.record(2, &stats(4, 3));
        h.record(2, &stats(1, 1));
        assert_eq!(h.get(0).nodes, 1);
        assert_eq!(h.get(1), HopStats::default());
        assert_eq!(h.get(2).nodes, 5);
        assert_eq!(h.get(2).completed, 4);
        assert_eq!(h.get(2).recoding_ops, 50);
        assert_eq!(h.max_distance(), Some(2));
    }

    #[test]
    fn iter_skips_nodeless_buckets() {
        let mut h = HopCounters::new();
        h.record(1, &stats(2, 2));
        h.record(3, &stats(1, 0));
        let distances: Vec<usize> = h.iter().map(|(d, _)| d).collect();
        assert_eq!(distances, vec![1, 3]);
    }

    #[test]
    fn merge_is_bucketwise() {
        let mut a = HopCounters::new();
        a.record(1, &stats(1, 1));
        let mut b = HopCounters::new();
        b.record(1, &stats(2, 1));
        b.record(4, &stats(1, 1));
        a.merge(&b);
        assert_eq!(a.get(1).nodes, 3);
        assert_eq!(a.get(4).nodes, 1);
        assert_eq!(a.total().nodes, 4);
        assert_eq!(a.total().completed, 3);
    }

    #[test]
    fn snapshot_delta_is_bucketwise_and_saturating() {
        let mut earlier = HopCounters::new();
        earlier.record(0, &stats(1, 1));
        earlier.record(1, &stats(2, 1));
        let mut now = earlier.clone();
        now.record(1, &HopStats { completed: 1, useful_deliveries: 7, ..HopStats::default() });
        now.record(2, &stats(3, 2));

        let delta = now.snapshot_delta(&earlier);
        assert_eq!(delta.get(0), HopStats::default());
        assert_eq!(delta.get(1).completed, 1);
        assert_eq!(delta.get(1).useful_deliveries, 7);
        assert_eq!(delta.get(1).nodes, 0);
        // A bucket that only exists now passes through whole.
        assert_eq!(delta.get(2).nodes, 3);
        // Re-accumulating the delta onto the earlier snapshot round-trips.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, now);
        // Saturation against a "later" snapshot.
        assert!(earlier.snapshot_delta(&now).total() == HopStats::default());
    }

    #[test]
    fn distance_histogram_counts_nodes() {
        let mut h = HopCounters::new();
        h.record(0, &stats(1, 1));
        h.record(2, &stats(3, 3));
        let histogram = h.distance_histogram();
        assert_eq!(histogram.total(), 4);
        assert_eq!(histogram.count(2), 3);
        assert!((histogram.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_one_line_per_hop() {
        let mut h = HopCounters::new();
        h.record(0, &stats(1, 1));
        h.record(1, &stats(2, 1));
        let s = h.to_string();
        assert!(s.contains("hop 0: 1/1 complete"));
        assert!(s.contains("hop 1: 1/2 complete"));
    }
}
