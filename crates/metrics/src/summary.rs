use serde::{Deserialize, Serialize};

/// Streaming summary statistics (Welford's online algorithm).
///
/// Used throughout the evaluation harness: the relative standard deviation of
/// native-packet occurrences (§III-B.3 reports ≈ 0.1 %), the average number of
/// degree-draw retries (§III-B.1 reports ≈ 1.02), completion times across
/// Monte-Carlo runs, etc.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation of an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Builds a summary from an iterator of observations.
    ///
    /// Not the `FromIterator` trait method: this inherent constructor keeps
    /// `Summary::from_iter(xs)` call sites working without a `use`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut s = Summary::new();
        s.record_all(values);
        s
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative standard deviation (std-dev / mean), or 0 when the mean is 0.
    ///
    /// This is the statistic the paper reports for the spread of native-packet
    /// occurrences after refinement.
    #[must_use]
    pub fn relative_std_dev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.relative_std_dev(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_iter([5.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn known_mean_and_variance() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.relative_std_dev() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let data_a = [1.0, 2.0, 3.0, 4.0];
        let data_b = [10.0, 20.0, 30.0];
        let mut a = Summary::from_iter(data_a);
        let b = Summary::from_iter(data_b);
        a.merge(&b);
        let all = Summary::from_iter(data_a.into_iter().chain(data_b));
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_iter([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_mean_is_bounded_by_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_iter(values.iter().copied());
            let min = s.min().unwrap();
            let max = s.max().unwrap();
            prop_assert!(s.mean() >= min - 1e-9);
            prop_assert!(s.mean() <= max + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_merge_equals_single_pass(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut left = Summary::from_iter(a.iter().copied());
            left.merge(&Summary::from_iter(b.iter().copied()));
            let full = Summary::from_iter(a.iter().copied().chain(b.iter().copied()));
            prop_assert_eq!(left.count(), full.count());
            prop_assert!((left.mean() - full.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - full.variance()).abs() < 1e-4);
        }
    }
}
