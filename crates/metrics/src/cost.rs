use serde::{Deserialize, Serialize};

use crate::{OpCounters, OpKind};

/// Estimated cycle cost split into control-plane and data-plane work.
///
/// Mirrors the four panels of Figure 8 in the paper: recoding/decoding ×
/// control/data. The data cost is additionally reported per payload byte
/// (`cycles per byte`, the unit of Figures 8c and 8d).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Estimated cycles spent on control structures.
    pub control_cycles: f64,
    /// Estimated cycles spent on payload data.
    pub data_cycles: f64,
    /// Payload size `m` in bytes used for the per-byte normalisation.
    pub payload_bytes: usize,
}

impl CostBreakdown {
    /// Total estimated cycles (control + data).
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.control_cycles + self.data_cycles
    }

    /// Data-plane cycles per payload byte (Figures 8c/8d). Zero when `m = 0`.
    #[must_use]
    pub fn data_cycles_per_byte(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.data_cycles / self.payload_bytes as f64
        }
    }
}

/// Translates [`OpCounters`] into estimated CPU cycles.
///
/// The weights are deliberately simple and documented; they model a scalar
/// 64-bit core XOR-ing one word per cycle plus fixed per-operation overheads.
/// Absolute values are not the point — the reproduction compares *ratios and
/// trends* against the paper (LTNC decode ≪ RLNC decode, the gap widening with
/// `k`, recode-control higher for LTNC, recode-data lower for LTNC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Code length `k` (bits per code vector).
    pub code_length: usize,
    /// Payload size `m` in bytes.
    pub payload_bytes: usize,
    /// Cycles to XOR one 8-byte word of payload.
    pub cycles_per_payload_word: f64,
    /// Cycles to XOR one 64-bit word of a code vector / matrix row.
    pub cycles_per_vector_word: f64,
    /// Fixed overhead per Tanner-graph edge update.
    pub cycles_per_tanner_edge: f64,
    /// Fixed overhead per auxiliary index update.
    pub cycles_per_index_update: f64,
    /// Fixed overhead per degree draw.
    pub cycles_per_degree_draw: f64,
    /// Fixed overhead per build-candidate examination (includes the
    /// code-vector popcount performed to evaluate the collision condition).
    pub cycles_per_build_candidate: f64,
    /// Fixed overhead per refinement step.
    pub cycles_per_refine_step: f64,
    /// Fixed overhead per redundancy check.
    pub cycles_per_redundancy_check: f64,
}

impl CostModel {
    /// A cost model for the given code length and payload size with default
    /// per-operation weights.
    #[must_use]
    pub fn new(code_length: usize, payload_bytes: usize) -> Self {
        CostModel {
            code_length,
            payload_bytes,
            // One 64-bit XOR + load/store per 8 payload bytes ≈ 3 cycles.
            cycles_per_payload_word: 3.0,
            // Same word cost for bitmap rows.
            cycles_per_vector_word: 3.0,
            // Pointer chasing + bookkeeping per Tanner edge.
            cycles_per_tanner_edge: 20.0,
            cycles_per_index_update: 15.0,
            cycles_per_degree_draw: 50.0,
            cycles_per_build_candidate: 30.0,
            cycles_per_refine_step: 40.0,
            cycles_per_redundancy_check: 25.0,
        }
    }

    /// Number of 64-bit words in one code vector.
    #[must_use]
    fn vector_words(&self) -> f64 {
        (self.code_length as f64 / 64.0).ceil()
    }

    /// Number of 8-byte words in one payload.
    #[must_use]
    fn payload_words(&self) -> f64 {
        (self.payload_bytes as f64 / 8.0).ceil()
    }

    /// Estimated cycles for a single operation of the given kind.
    #[must_use]
    pub fn cycles_for(&self, kind: OpKind) -> f64 {
        match kind {
            OpKind::PayloadXor => self.cycles_per_payload_word * self.payload_words(),
            OpKind::VectorXor | OpKind::RowReduction => {
                self.cycles_per_vector_word * self.vector_words()
            }
            OpKind::TannerEdgeUpdate => self.cycles_per_tanner_edge,
            OpKind::IndexUpdate => self.cycles_per_index_update,
            OpKind::DegreeDraw => self.cycles_per_degree_draw,
            OpKind::BuildCandidate => {
                // Each candidate evaluation XORs/popcounts one code vector.
                self.cycles_per_build_candidate + self.cycles_per_vector_word * self.vector_words()
            }
            OpKind::RefineStep => self.cycles_per_refine_step,
            OpKind::RedundancyCheck => self.cycles_per_redundancy_check,
        }
    }

    /// Folds a counter set into a control/data cycle estimate.
    #[must_use]
    pub fn evaluate(&self, counters: &OpCounters) -> CostBreakdown {
        let mut control = 0.0;
        let mut data = 0.0;
        for kind in OpKind::ALL {
            let count = counters.get(kind) as f64;
            if count == 0.0 {
                continue;
            }
            let cycles = count * self.cycles_for(kind);
            if kind.is_data() {
                data += cycles;
            } else {
                control += cycles;
            }
        }
        CostBreakdown {
            control_cycles: control,
            data_cycles: data,
            payload_bytes: self.payload_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counters_cost_nothing() {
        let model = CostModel::new(2048, 1024);
        let b = model.evaluate(&OpCounters::new());
        assert_eq!(b.total_cycles(), 0.0);
        assert_eq!(b.data_cycles_per_byte(), 0.0);
    }

    #[test]
    fn payload_xor_is_data_cost() {
        let model = CostModel::new(1024, 256);
        let mut c = OpCounters::new();
        c.add(OpKind::PayloadXor, 10);
        let b = model.evaluate(&c);
        assert_eq!(b.control_cycles, 0.0);
        assert!(b.data_cycles > 0.0);
        // 256 bytes = 32 words, 3 cycles/word, 10 ops.
        assert_eq!(b.data_cycles, 10.0 * 32.0 * 3.0);
        assert!((b.data_cycles_per_byte() - (10.0 * 32.0 * 3.0) / 256.0).abs() < 1e-9);
    }

    #[test]
    fn vector_ops_scale_with_code_length() {
        let small = CostModel::new(512, 0);
        let large = CostModel::new(4096, 0);
        assert!(large.cycles_for(OpKind::VectorXor) > small.cycles_for(OpKind::VectorXor));
        assert_eq!(large.cycles_for(OpKind::VectorXor) / small.cycles_for(OpKind::VectorXor), 8.0);
    }

    #[test]
    fn control_and_data_are_separated() {
        let model = CostModel::new(1024, 64);
        let mut c = OpCounters::new();
        c.add(OpKind::PayloadXor, 1);
        c.add(OpKind::RowReduction, 1);
        let b = model.evaluate(&c);
        assert!(b.control_cycles > 0.0);
        assert!(b.data_cycles > 0.0);
        assert_eq!(b.total_cycles(), b.control_cycles + b.data_cycles);
    }

    #[test]
    fn per_byte_normalisation_handles_zero_payload() {
        let model = CostModel::new(1024, 0);
        let mut c = OpCounters::new();
        c.add(OpKind::PayloadXor, 5);
        assert_eq!(model.evaluate(&c).data_cycles_per_byte(), 0.0);
    }

    #[test]
    fn every_op_kind_has_positive_cost() {
        let model = CostModel::new(2048, 4096);
        for kind in OpKind::ALL {
            assert!(model.cycles_for(kind) > 0.0, "{kind} has zero cost");
        }
    }
}
