//! Scheduler-level accounting for one reactor shard.
//!
//! The sharded runtime multiplexes hundreds of nodes onto a few worker
//! threads; when a swarm misbehaves the question is no longer "what did
//! node 417 do" but "what was *shard 2* doing" — was it parked in
//! `epoll_wait`, grinding through dispatches, or running its timers
//! late? [`ReactorCounters`] answers that with lock-free atomics the
//! worker loop bumps in-line and a scrape or watchdog thread reads
//! concurrently:
//!
//! * **poll** — how often the shard polled, how long it waited, how many
//!   readiness events each poll returned;
//! * **dispatch** — per-callback latencies split by kind (readable /
//!   timer / control), which is where a slow state machine shows up;
//! * **tick lag** — deadline-vs-actual expiry of every timer, the
//!   direct measure of scheduler overload;
//! * **queues** — wakeup coalescing, control-queue drains and their
//!   high-watermark, and the timer-wheel depth after each turn.
//!
//! [`ReactorSnapshot`] is the owned plain view with the same
//! `merge`/`snapshot_delta` algebra as the counter families
//! ([`crate::WireCounters`], [`crate::HopCounters`]), so swarm-level
//! rollups and interval scrapes compose the same way.

use crate::loghist::{LogHistogram, LogHistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free scheduler counters for one reactor shard.
///
/// Recording methods are called from the shard's worker thread;
/// [`ReactorCounters::snapshot`] from anywhere. All counters are
/// monotone except the two gauges ([`wheel depth`](ReactorSnapshot::wheel_depth)
/// is last-observed, [`nodes`](ReactorSnapshot::nodes) is set once).
///
/// ```
/// use ltnc_metrics::ReactorCounters;
///
/// let shard = ReactorCounters::new();
/// shard.set_nodes(250);
/// shard.record_poll(120, 3); // waited 120us, 3 events ready
/// shard.record_dispatch_readable(850); // dispatch took 850ns
/// shard.record_timer_lag(40); // timer fired 40us past its deadline
/// shard.record_turn(17); // 17 timers still armed after the turn
/// let snap = shard.snapshot();
/// assert_eq!(snap.polls, 1);
/// assert_eq!(snap.poll_events, 3);
/// assert_eq!(snap.wheel_depth, 17);
/// assert_eq!(snap.dispatch_ns.count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ReactorCounters {
    turns: AtomicU64,
    polls: AtomicU64,
    poll_events: AtomicU64,
    wakeups: AtomicU64,
    wakeup_rounds: AtomicU64,
    control_messages: AtomicU64,
    control_high_watermark: AtomicU64,
    readable_dispatches: AtomicU64,
    timer_dispatches: AtomicU64,
    control_dispatches: AtomicU64,
    timers_fired: AtomicU64,
    wheel_depth: AtomicU64,
    nodes: AtomicU64,
    poll_wait_us: LogHistogram,
    dispatch_ns: LogHistogram,
    tick_lag_us: LogHistogram,
}

impl ReactorCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> ReactorCounters {
        ReactorCounters::default()
    }

    /// Publishes how many nodes the shard schedules (set once at start).
    pub fn set_nodes(&self, nodes: u64) {
        self.nodes.store(nodes, Ordering::Relaxed);
    }

    /// One poll completed: the shard waited `waited_us` microseconds and
    /// `events` readiness events came back.
    pub fn record_poll(&self, waited_us: u64, events: u64) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.poll_events.fetch_add(events, Ordering::Relaxed);
        self.poll_wait_us.record(waited_us);
    }

    /// The waker drained `coalesced` wake bytes in one round (cross-shard
    /// sends that collapsed into a single readiness event).
    pub fn record_wakeups(&self, coalesced: u64) {
        self.wakeups.fetch_add(coalesced, Ordering::Relaxed);
        self.wakeup_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// The control queue yielded `messages` messages in one drain.
    /// Returns `true` when this drain set a new high-watermark — the
    /// caller may want to trace that edge.
    pub fn record_control_drain(&self, messages: u64) -> bool {
        self.control_messages.fetch_add(messages, Ordering::Relaxed);
        self.control_high_watermark.fetch_max(messages, Ordering::Relaxed) < messages
    }

    /// One readable-socket callback took `ns` nanoseconds.
    pub fn record_dispatch_readable(&self, ns: u64) {
        self.readable_dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatch_ns.record(ns);
    }

    /// One timer callback took `ns` nanoseconds.
    pub fn record_dispatch_timer(&self, ns: u64) {
        self.timer_dispatches.fetch_add(1, Ordering::Relaxed);
        self.timers_fired.fetch_add(1, Ordering::Relaxed);
        self.dispatch_ns.record(ns);
    }

    /// One control-message callback took `ns` nanoseconds.
    pub fn record_dispatch_control(&self, ns: u64) {
        self.control_dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatch_ns.record(ns);
    }

    /// A timer fired `lag_us` microseconds past its deadline.
    pub fn record_timer_lag(&self, lag_us: u64) {
        self.tick_lag_us.record(lag_us);
    }

    /// One loop turn ended with `wheel_depth` timers still armed.
    pub fn record_turn(&self, wheel_depth: u64) {
        self.turns.fetch_add(1, Ordering::Relaxed);
        self.wheel_depth.store(wheel_depth, Ordering::Relaxed);
    }

    /// An owned, immutable copy of the current counts.
    #[must_use]
    pub fn snapshot(&self) -> ReactorSnapshot {
        ReactorSnapshot {
            turns: self.turns.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            poll_events: self.poll_events.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            wakeup_rounds: self.wakeup_rounds.load(Ordering::Relaxed),
            control_messages: self.control_messages.load(Ordering::Relaxed),
            control_high_watermark: self.control_high_watermark.load(Ordering::Relaxed),
            readable_dispatches: self.readable_dispatches.load(Ordering::Relaxed),
            timer_dispatches: self.timer_dispatches.load(Ordering::Relaxed),
            control_dispatches: self.control_dispatches.load(Ordering::Relaxed),
            timers_fired: self.timers_fired.load(Ordering::Relaxed),
            wheel_depth: self.wheel_depth.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
            poll_wait_us: self.poll_wait_us.snapshot(),
            dispatch_ns: self.dispatch_ns.snapshot(),
            tick_lag_us: self.tick_lag_us.snapshot(),
        }
    }
}

/// An immutable view of a shard's [`ReactorCounters`]: plain counts plus
/// the three scheduler histograms, with the counter families'
/// `merge`/`snapshot_delta` algebra so swarm rollups and interval
/// scrapes compose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// Worker-loop turns completed (poll → dispatch → timers).
    pub turns: u64,
    /// Times the shard entered its poller.
    pub polls: u64,
    /// Readiness events returned across all polls.
    pub poll_events: u64,
    /// Wake bytes drained from the loopback waker (each byte one
    /// cross-shard send that requested a wakeup).
    pub wakeups: u64,
    /// Drain rounds in which at least one wake byte arrived — `wakeups /
    /// wakeup_rounds` is the coalescing factor.
    pub wakeup_rounds: u64,
    /// Control messages drained from the shard's queue.
    pub control_messages: u64,
    /// Largest single control drain observed (gauge; max survives
    /// `merge`, interval deltas keep the lifetime value).
    pub control_high_watermark: u64,
    /// Readable-socket callbacks dispatched.
    pub readable_dispatches: u64,
    /// Timer callbacks dispatched.
    pub timer_dispatches: u64,
    /// Control-message callbacks dispatched.
    pub control_dispatches: u64,
    /// Timers that expired and were routed to their node.
    pub timers_fired: u64,
    /// Timers still armed after the most recent turn (gauge).
    pub wheel_depth: u64,
    /// Nodes the shard schedules (gauge, set once at start).
    pub nodes: u64,
    /// Time spent waiting in the poller, microseconds per poll.
    pub poll_wait_us: LogHistogramSnapshot,
    /// Per-callback dispatch latency, nanoseconds (all kinds merged).
    pub dispatch_ns: LogHistogramSnapshot,
    /// Timer lateness: actual expiry minus deadline, microseconds.
    pub tick_lag_us: LogHistogramSnapshot,
}

impl ReactorSnapshot {
    /// All-zero snapshot.
    #[must_use]
    pub fn new() -> ReactorSnapshot {
        ReactorSnapshot::default()
    }

    /// Folds another shard's snapshot into this one: counters and
    /// histograms add, gauges take the max (a rollup's "depth" is the
    /// deepest shard) and `nodes` adds (a rollup schedules the union).
    pub fn merge(&mut self, other: &ReactorSnapshot) {
        self.turns += other.turns;
        self.polls += other.polls;
        self.poll_events += other.poll_events;
        self.wakeups += other.wakeups;
        self.wakeup_rounds += other.wakeup_rounds;
        self.control_messages += other.control_messages;
        self.control_high_watermark = self.control_high_watermark.max(other.control_high_watermark);
        self.readable_dispatches += other.readable_dispatches;
        self.timer_dispatches += other.timer_dispatches;
        self.control_dispatches += other.control_dispatches;
        self.timers_fired += other.timers_fired;
        self.wheel_depth = self.wheel_depth.max(other.wheel_depth);
        self.nodes += other.nodes;
        self.poll_wait_us.merge(&other.poll_wait_us);
        self.dispatch_ns.merge(&other.dispatch_ns);
        self.tick_lag_us.merge(&other.tick_lag_us);
    }

    /// Everything that happened since `earlier`, field by field
    /// (saturating, like every counter family's `snapshot_delta`).
    /// Gauges keep their current value: an interval has no meaningful
    /// "delta wheel depth".
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &ReactorSnapshot) -> ReactorSnapshot {
        ReactorSnapshot {
            turns: self.turns.saturating_sub(earlier.turns),
            polls: self.polls.saturating_sub(earlier.polls),
            poll_events: self.poll_events.saturating_sub(earlier.poll_events),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            wakeup_rounds: self.wakeup_rounds.saturating_sub(earlier.wakeup_rounds),
            control_messages: self.control_messages.saturating_sub(earlier.control_messages),
            control_high_watermark: self.control_high_watermark,
            readable_dispatches: self
                .readable_dispatches
                .saturating_sub(earlier.readable_dispatches),
            timer_dispatches: self.timer_dispatches.saturating_sub(earlier.timer_dispatches),
            control_dispatches: self.control_dispatches.saturating_sub(earlier.control_dispatches),
            timers_fired: self.timers_fired.saturating_sub(earlier.timers_fired),
            wheel_depth: self.wheel_depth,
            nodes: self.nodes,
            poll_wait_us: self.poll_wait_us.snapshot_delta(&earlier.poll_wait_us),
            dispatch_ns: self.dispatch_ns.snapshot_delta(&earlier.dispatch_ns),
            tick_lag_us: self.tick_lag_us.snapshot_delta(&earlier.tick_lag_us),
        }
    }

    /// True when nothing has been recorded (gauges ignored).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.turns == 0
            && self.polls == 0
            && self.readable_dispatches == 0
            && self.timer_dispatches == 0
            && self.control_dispatches == 0
            && self.wakeup_rounds == 0
            && self.control_messages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_lands_in_every_family() {
        let c = ReactorCounters::new();
        c.set_nodes(10);
        c.record_poll(50, 2);
        c.record_poll(1_000, 0);
        c.record_wakeups(3);
        c.record_dispatch_readable(400);
        c.record_dispatch_timer(900);
        c.record_dispatch_control(100);
        c.record_timer_lag(25);
        c.record_turn(7);
        let s = c.snapshot();
        assert_eq!(s.turns, 1);
        assert_eq!(s.polls, 2);
        assert_eq!(s.poll_events, 2);
        assert_eq!(s.wakeups, 3);
        assert_eq!(s.wakeup_rounds, 1);
        assert_eq!(s.readable_dispatches, 1);
        assert_eq!(s.timer_dispatches, 1);
        assert_eq!(s.control_dispatches, 1);
        assert_eq!(s.timers_fired, 1);
        assert_eq!(s.wheel_depth, 7);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.poll_wait_us.count(), 2);
        assert_eq!(s.dispatch_ns.count(), 3);
        assert_eq!(s.tick_lag_us.max, 25);
        assert!(!s.is_empty());
        assert!(ReactorSnapshot::new().is_empty());
    }

    #[test]
    fn control_drain_reports_new_watermarks_once() {
        let c = ReactorCounters::new();
        assert!(c.record_control_drain(4), "first drain is a new watermark");
        assert!(!c.record_control_drain(4), "matching the mark is not a new one");
        assert!(!c.record_control_drain(2));
        assert!(c.record_control_drain(9));
        let s = c.snapshot();
        assert_eq!(s.control_messages, 19);
        assert_eq!(s.control_high_watermark, 9);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let a = ReactorCounters::new();
        a.set_nodes(3);
        a.record_poll(10, 1);
        a.record_turn(5);
        let b = ReactorCounters::new();
        b.set_nodes(4);
        b.record_poll(20, 2);
        b.record_poll(30, 0);
        b.record_turn(9);
        let mut rollup = a.snapshot();
        rollup.merge(&b.snapshot());
        assert_eq!(rollup.polls, 3);
        assert_eq!(rollup.poll_events, 3);
        assert_eq!(rollup.turns, 2);
        assert_eq!(rollup.nodes, 7, "a rollup schedules the union of nodes");
        assert_eq!(rollup.wheel_depth, 9, "gauges take the deepest shard");
        assert_eq!(rollup.poll_wait_us.count(), 3);
    }

    #[test]
    fn snapshot_delta_diffs_counters_and_keeps_gauges() {
        let c = ReactorCounters::new();
        c.set_nodes(2);
        c.record_poll(10, 1);
        c.record_turn(3);
        let earlier = c.snapshot();
        c.record_poll(20, 4);
        c.record_dispatch_timer(500);
        c.record_turn(8);
        let delta = c.snapshot().snapshot_delta(&earlier);
        assert_eq!(delta.polls, 1);
        assert_eq!(delta.poll_events, 4);
        assert_eq!(delta.turns, 1);
        assert_eq!(delta.timer_dispatches, 1);
        assert_eq!(delta.wheel_depth, 8, "gauge keeps its current value");
        assert_eq!(delta.nodes, 2);
        assert_eq!(delta.poll_wait_us.count(), 1);
        assert_eq!(delta.dispatch_ns.count(), 1);
        // A stale earlier saturates instead of wrapping.
        assert_eq!(earlier.snapshot_delta(&c.snapshot()).polls, 0);
    }
}
