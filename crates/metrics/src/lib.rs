//! Cost accounting and statistics for the LTNC reproduction.
//!
//! The paper's Figure 8 reports CPU cycles split along two axes:
//!
//! * **recoding vs decoding** — the operation being performed, and
//! * **control vs data** — whether the work touches the control structures
//!   (code vectors, Tanner graph, code matrix, indexes) or the `m`-byte
//!   payloads themselves.
//!
//! We do not have the authors' Xeon testbed, so this crate provides two
//! complementary ways to reproduce those figures:
//!
//! 1. [`OpCounters`] — deterministic counts of the elementary operations each
//!    scheme performs (payload XORs, code-vector XORs, row reductions, index
//!    updates, …). These are platform independent and are what the simulator
//!    records per node.
//! 2. [`CostModel`] — a translation of those counts into estimated cycles,
//!    using per-operation weights calibrated to a commodity x86 core. The
//!    absolute numbers are not meaningful; the *ratios* (LTNC vs RLNC, control
//!    vs data, scaling with `k`) are what the reproduction compares against the
//!    paper.
//!
//! The crate also contains small statistics helpers ([`Summary`], [`Histogram`],
//! [`TimeSeries`]) used by the simulator and the figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod counters;
mod histogram;
mod hop;
mod loghist;
mod reactor;
mod series;
mod serve;
mod stripe;
mod summary;
mod wire;

pub use cost::{CostBreakdown, CostModel};
pub use counters::{OpCounters, OpKind};
pub use histogram::Histogram;
pub use hop::{HopCounters, HopStats};
pub use loghist::{
    bucket_bound, HopLatency, LogHistogram, LogHistogramSnapshot, LOG_BUCKETS, MAX_LATENCY_HOPS,
};
pub use reactor::{ReactorCounters, ReactorSnapshot};
pub use series::TimeSeries;
pub use serve::ServeCounters;
pub use stripe::{ReplicaCounters, StripeCounters};
pub use summary::Summary;
pub use wire::WireCounters;
