use serde::{Deserialize, Serialize};

/// A labelled `(x, y)` series, used by the figure harness to collect and print
/// the curves of Figures 7 and 8.
///
/// The series keeps insertion order; `x` values are typically gossip periods
/// (Figure 7a), code lengths (Figures 7b/7c/8), or degrees (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    label: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries { label: label.into(), points: Vec::new() }
    }

    /// The series label (e.g. `"LTNC"`, `"RLNC"`, `"WC"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The recorded points, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `y` value recorded for the given `x`, if present (exact match).
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|&&(px, _)| px == x).map(|&(_, y)| y)
    }

    /// Linear interpolation of `y` at `x`; clamps outside the recorded range.
    /// Requires points sorted by increasing `x`. Returns `None` when empty.
    #[must_use]
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let first = self.points[0];
        let last = *self.points.last().expect("non-empty");
        if x <= first.0 {
            return Some(first.1);
        }
        if x >= last.0 {
            return Some(last.1);
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x >= x0 && x <= x1 {
                if x1 == x0 {
                    return Some(y0);
                }
                let t = (x - x0) / (x1 - x0);
                return Some(y0 + t * (y1 - y0));
            }
        }
        Some(last.1)
    }

    /// First `x` at which the series reaches at least `threshold` (assumes `y`
    /// is non-decreasing, like a convergence curve). `None` if never reached.
    #[must_use]
    pub fn first_x_reaching(&self, threshold: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, y)| y >= threshold).map(|&(x, _)| x)
    }

    /// Renders the series as tab-separated `x<TAB>y` lines (gnuplot-friendly).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("LTNC");
        s.push(0.0, 0.0);
        s.push(10.0, 50.0);
        s.push(20.0, 100.0);
        s
    }

    #[test]
    fn label_and_points() {
        let s = series();
        assert_eq!(s.label(), "LTNC");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.points()[1], (10.0, 50.0));
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.interpolate(1.0), None);
        assert_eq!(s.first_x_reaching(0.5), None);
        assert_eq!(s.y_at(0.0), None);
    }

    #[test]
    fn y_at_exact_match() {
        let s = series();
        assert_eq!(s.y_at(10.0), Some(50.0));
        assert_eq!(s.y_at(15.0), None);
    }

    #[test]
    fn interpolation_midpoint_and_clamping() {
        let s = series();
        assert_eq!(s.interpolate(5.0), Some(25.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0));
        assert_eq!(s.interpolate(99.0), Some(100.0));
        assert_eq!(s.interpolate(20.0), Some(100.0));
    }

    #[test]
    fn first_x_reaching_threshold() {
        let s = series();
        assert_eq!(s.first_x_reaching(50.0), Some(10.0));
        assert_eq!(s.first_x_reaching(75.0), Some(20.0));
        assert_eq!(s.first_x_reaching(100.1), None);
    }

    #[test]
    fn tsv_rendering() {
        let s = series();
        let tsv = s.to_tsv();
        assert!(tsv.contains("10\t50"));
        assert_eq!(tsv.lines().count(), 3);
    }
}
