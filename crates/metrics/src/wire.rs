use core::fmt;

use serde::{Deserialize, Serialize};

/// Transport-level traffic accounting for one endpoint.
///
/// Where [`crate::OpCounters`] counts *coding* work (XORs, row reductions),
/// `WireCounters` counts what actually crosses the network: datagrams and
/// bytes, split into control (envelopes, code-vector headers, feedback) and
/// data (payload bytes), plus the outcomes of the paper's binary feedback
/// channel — transfers aborted after the header never cost payload bytes,
/// which is exactly the saving the feedback channel exists to provide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Datagrams handed to the socket.
    pub datagrams_sent: u64,
    /// Datagrams received and decoded successfully.
    pub datagrams_received: u64,
    /// Total bytes handed to the socket (envelope + body).
    pub bytes_sent: u64,
    /// Total bytes received in decodable datagrams.
    pub bytes_received: u64,
    /// Bytes of payload data sent (the data-plane share of `bytes_sent`).
    pub payload_bytes_sent: u64,
    /// Header-probe transfers offered to peers (one per `DATA-HEADER`).
    pub transfers_offered: u64,
    /// Transfers a peer aborted after seeing only the header.
    pub transfers_aborted: u64,
    /// Transfers that carried their payload to acceptance.
    pub transfers_delivered: u64,
    /// Payload deliveries that turned out useful (innovative) at the receiver.
    pub useful_deliveries: u64,
    /// Datagrams that failed envelope or frame decoding.
    pub decode_errors: u64,
    /// Well-formed datagrams discarded for belonging to another session or
    /// scheme (not corruption: e.g. a stale peer from a previous run).
    pub session_mismatches: u64,
    /// Inbound datagrams dropped because the actor's bounded queue was full.
    pub inbound_dropped: u64,
    /// Offers that never received feedback and were forgotten at their TTL
    /// — the loss signal the adaptive pacing budget reacts to.
    pub offer_timeouts: u64,
    /// Times an adaptive in-flight budget crossed up to the next integer
    /// (additive increase on observed feedback).
    pub budget_raises: u64,
    /// Times an adaptive in-flight budget was cut (multiplicative decrease
    /// after offer timeouts).
    pub budget_cuts: u64,
}

impl WireCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        WireCounters::default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &WireCounters) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.payload_bytes_sent += other.payload_bytes_sent;
        self.transfers_offered += other.transfers_offered;
        self.transfers_aborted += other.transfers_aborted;
        self.transfers_delivered += other.transfers_delivered;
        self.useful_deliveries += other.useful_deliveries;
        self.decode_errors += other.decode_errors;
        self.session_mismatches += other.session_mismatches;
        self.inbound_dropped += other.inbound_dropped;
        self.offer_timeouts += other.offer_timeouts;
        self.budget_raises += other.budget_raises;
        self.budget_cuts += other.budget_cuts;
    }

    /// Everything that happened since `earlier`, field by field.
    ///
    /// The interval-delta counterpart of [`WireCounters::merge`]: sampling
    /// a live endpoint's counters at two instants and diffing yields the
    /// traffic of that interval alone, so a periodic scraper can report
    /// rates without the endpoint ever resetting its counters. Saturates
    /// at zero per field, so a stale `earlier` from a previous endpoint
    /// incarnation degrades to the full current value instead of wrapping.
    ///
    /// ```
    /// use ltnc_metrics::WireCounters;
    ///
    /// let earlier = WireCounters { datagrams_sent: 40, bytes_sent: 4_000, ..WireCounters::new() };
    /// let now = WireCounters { datagrams_sent: 65, bytes_sent: 6_500, ..WireCounters::new() };
    /// let delta = now.snapshot_delta(&earlier);
    /// assert_eq!(delta.datagrams_sent, 25);
    /// assert_eq!(delta.bytes_sent, 2_500);
    /// ```
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &WireCounters) -> WireCounters {
        WireCounters {
            datagrams_sent: self.datagrams_sent.saturating_sub(earlier.datagrams_sent),
            datagrams_received: self.datagrams_received.saturating_sub(earlier.datagrams_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            payload_bytes_sent: self.payload_bytes_sent.saturating_sub(earlier.payload_bytes_sent),
            transfers_offered: self.transfers_offered.saturating_sub(earlier.transfers_offered),
            transfers_aborted: self.transfers_aborted.saturating_sub(earlier.transfers_aborted),
            transfers_delivered: self
                .transfers_delivered
                .saturating_sub(earlier.transfers_delivered),
            useful_deliveries: self.useful_deliveries.saturating_sub(earlier.useful_deliveries),
            decode_errors: self.decode_errors.saturating_sub(earlier.decode_errors),
            session_mismatches: self.session_mismatches.saturating_sub(earlier.session_mismatches),
            inbound_dropped: self.inbound_dropped.saturating_sub(earlier.inbound_dropped),
            offer_timeouts: self.offer_timeouts.saturating_sub(earlier.offer_timeouts),
            budget_raises: self.budget_raises.saturating_sub(earlier.budget_raises),
            budget_cuts: self.budget_cuts.saturating_sub(earlier.budget_cuts),
        }
    }

    /// Fraction of offered transfers that timed out without any feedback,
    /// in `[0, 1]`; `0` when nothing was offered. This is the endpoint's
    /// aggregate view of the loss estimate each peer budget tracks.
    #[must_use]
    pub fn timeout_rate(&self) -> f64 {
        if self.transfers_offered == 0 {
            0.0
        } else {
            self.offer_timeouts as f64 / self.transfers_offered as f64
        }
    }

    /// Control-plane share of the bytes sent (everything except payloads).
    #[must_use]
    pub fn control_bytes_sent(&self) -> u64 {
        self.bytes_sent.saturating_sub(self.payload_bytes_sent)
    }

    /// Fraction of offered transfers the feedback channel aborted, in
    /// `[0, 1]`; `0` when nothing was offered.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.transfers_offered == 0 {
            0.0
        } else {
            self.transfers_aborted as f64 / self.transfers_offered as f64
        }
    }
}

impl fmt::Display for WireCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} dgrams / {} B ({} B payload), recv {} dgrams / {} B, \
             transfers {} offered / {} aborted / {} delivered ({} useful) / {} timed out, \
             {} decode errors, {} foreign-session, {} dropped, \
             budget {} raises / {} cuts",
            self.datagrams_sent,
            self.bytes_sent,
            self.payload_bytes_sent,
            self.datagrams_received,
            self.bytes_received,
            self.transfers_offered,
            self.transfers_aborted,
            self.transfers_delivered,
            self.useful_deliveries,
            self.offer_timeouts,
            self.decode_errors,
            self.session_mismatches,
            self.inbound_dropped,
            self.budget_raises,
            self.budget_cuts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = WireCounters { datagrams_sent: 1, bytes_sent: 100, ..WireCounters::new() };
        let b = WireCounters {
            datagrams_sent: 2,
            bytes_sent: 50,
            payload_bytes_sent: 30,
            transfers_aborted: 4,
            ..WireCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.datagrams_sent, 3);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.control_bytes_sent(), 120);
        assert_eq!(a.transfers_aborted, 4);
    }

    #[test]
    fn abort_rate_handles_zero_offers() {
        assert_eq!(WireCounters::new().abort_rate(), 0.0);
        let c = WireCounters { transfers_offered: 8, transfers_aborted: 2, ..WireCounters::new() };
        assert!((c.abort_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pacing_counters_merge_and_rate() {
        assert_eq!(WireCounters::new().timeout_rate(), 0.0);
        let mut a = WireCounters {
            transfers_offered: 10,
            offer_timeouts: 2,
            budget_raises: 3,
            ..WireCounters::new()
        };
        let b = WireCounters { offer_timeouts: 1, budget_cuts: 4, ..WireCounters::new() };
        a.merge(&b);
        assert_eq!(a.offer_timeouts, 3);
        assert_eq!(a.budget_raises, 3);
        assert_eq!(a.budget_cuts, 4);
        assert!((a.timeout_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn snapshot_delta_diffs_every_field_and_saturates() {
        let earlier = WireCounters {
            datagrams_sent: 10,
            datagrams_received: 9,
            bytes_sent: 1_000,
            bytes_received: 900,
            payload_bytes_sent: 600,
            transfers_offered: 8,
            transfers_aborted: 1,
            transfers_delivered: 6,
            useful_deliveries: 5,
            decode_errors: 1,
            session_mismatches: 2,
            inbound_dropped: 3,
            offer_timeouts: 1,
            budget_raises: 2,
            budget_cuts: 1,
        };
        let now = WireCounters {
            datagrams_sent: 25,
            datagrams_received: 20,
            bytes_sent: 2_600,
            bytes_received: 2_000,
            payload_bytes_sent: 1_700,
            transfers_offered: 20,
            transfers_aborted: 3,
            transfers_delivered: 15,
            useful_deliveries: 12,
            decode_errors: 1,
            session_mismatches: 2,
            inbound_dropped: 4,
            offer_timeouts: 3,
            budget_raises: 6,
            budget_cuts: 2,
        };
        let delta = now.snapshot_delta(&earlier);
        assert_eq!(
            delta,
            WireCounters {
                datagrams_sent: 15,
                datagrams_received: 11,
                bytes_sent: 1_600,
                bytes_received: 1_100,
                payload_bytes_sent: 1_100,
                transfers_offered: 12,
                transfers_aborted: 2,
                transfers_delivered: 9,
                useful_deliveries: 7,
                decode_errors: 0,
                session_mismatches: 0,
                inbound_dropped: 1,
                offer_timeouts: 2,
                budget_raises: 4,
                budget_cuts: 1,
            }
        );
        // Re-accumulating the delta onto the earlier snapshot round-trips.
        let mut rebuilt = earlier;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, now);
        // A counter that went "backwards" (stale earlier) saturates at 0.
        assert_eq!(earlier.snapshot_delta(&now).datagrams_sent, 0);
    }

    #[test]
    fn display_is_stable() {
        let c = WireCounters::new();
        let s = c.to_string();
        assert!(s.contains("0 dgrams"));
        assert!(s.contains("0 aborted"));
    }
}
