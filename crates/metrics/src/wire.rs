use core::fmt;

use serde::{Deserialize, Serialize};

/// Transport-level traffic accounting for one endpoint.
///
/// Where [`crate::OpCounters`] counts *coding* work (XORs, row reductions),
/// `WireCounters` counts what actually crosses the network: datagrams and
/// bytes, split into control (envelopes, code-vector headers, feedback) and
/// data (payload bytes), plus the outcomes of the paper's binary feedback
/// channel — transfers aborted after the header never cost payload bytes,
/// which is exactly the saving the feedback channel exists to provide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounters {
    /// Datagrams handed to the socket.
    pub datagrams_sent: u64,
    /// Datagrams received and decoded successfully.
    pub datagrams_received: u64,
    /// Total bytes handed to the socket (envelope + body).
    pub bytes_sent: u64,
    /// Total bytes received in decodable datagrams.
    pub bytes_received: u64,
    /// Bytes of payload data sent (the data-plane share of `bytes_sent`).
    pub payload_bytes_sent: u64,
    /// Header-probe transfers offered to peers (one per `DATA-HEADER`).
    pub transfers_offered: u64,
    /// Transfers a peer aborted after seeing only the header.
    pub transfers_aborted: u64,
    /// Transfers that carried their payload to acceptance.
    pub transfers_delivered: u64,
    /// Payload deliveries that turned out useful (innovative) at the receiver.
    pub useful_deliveries: u64,
    /// Datagrams that failed envelope or frame decoding.
    pub decode_errors: u64,
    /// Well-formed datagrams discarded for belonging to another session or
    /// scheme (not corruption: e.g. a stale peer from a previous run).
    pub session_mismatches: u64,
    /// Inbound datagrams dropped because the actor's bounded queue was full.
    pub inbound_dropped: u64,
    /// Offers that never received feedback and were forgotten at their TTL
    /// — the loss signal the adaptive pacing budget reacts to.
    pub offer_timeouts: u64,
    /// Times an adaptive in-flight budget crossed up to the next integer
    /// (additive increase on observed feedback).
    pub budget_raises: u64,
    /// Times an adaptive in-flight budget was cut (multiplicative decrease
    /// after offer timeouts).
    pub budget_cuts: u64,
}

impl WireCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        WireCounters::default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &WireCounters) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.payload_bytes_sent += other.payload_bytes_sent;
        self.transfers_offered += other.transfers_offered;
        self.transfers_aborted += other.transfers_aborted;
        self.transfers_delivered += other.transfers_delivered;
        self.useful_deliveries += other.useful_deliveries;
        self.decode_errors += other.decode_errors;
        self.session_mismatches += other.session_mismatches;
        self.inbound_dropped += other.inbound_dropped;
        self.offer_timeouts += other.offer_timeouts;
        self.budget_raises += other.budget_raises;
        self.budget_cuts += other.budget_cuts;
    }

    /// Fraction of offered transfers that timed out without any feedback,
    /// in `[0, 1]`; `0` when nothing was offered. This is the endpoint's
    /// aggregate view of the loss estimate each peer budget tracks.
    #[must_use]
    pub fn timeout_rate(&self) -> f64 {
        if self.transfers_offered == 0 {
            0.0
        } else {
            self.offer_timeouts as f64 / self.transfers_offered as f64
        }
    }

    /// Control-plane share of the bytes sent (everything except payloads).
    #[must_use]
    pub fn control_bytes_sent(&self) -> u64 {
        self.bytes_sent.saturating_sub(self.payload_bytes_sent)
    }

    /// Fraction of offered transfers the feedback channel aborted, in
    /// `[0, 1]`; `0` when nothing was offered.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.transfers_offered == 0 {
            0.0
        } else {
            self.transfers_aborted as f64 / self.transfers_offered as f64
        }
    }
}

impl fmt::Display for WireCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} dgrams / {} B ({} B payload), recv {} dgrams / {} B, \
             transfers {} offered / {} aborted / {} delivered ({} useful) / {} timed out, \
             {} decode errors, {} foreign-session, {} dropped, \
             budget {} raises / {} cuts",
            self.datagrams_sent,
            self.bytes_sent,
            self.payload_bytes_sent,
            self.datagrams_received,
            self.bytes_received,
            self.transfers_offered,
            self.transfers_aborted,
            self.transfers_delivered,
            self.useful_deliveries,
            self.offer_timeouts,
            self.decode_errors,
            self.session_mismatches,
            self.inbound_dropped,
            self.budget_raises,
            self.budget_cuts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = WireCounters { datagrams_sent: 1, bytes_sent: 100, ..WireCounters::new() };
        let b = WireCounters {
            datagrams_sent: 2,
            bytes_sent: 50,
            payload_bytes_sent: 30,
            transfers_aborted: 4,
            ..WireCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.datagrams_sent, 3);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.control_bytes_sent(), 120);
        assert_eq!(a.transfers_aborted, 4);
    }

    #[test]
    fn abort_rate_handles_zero_offers() {
        assert_eq!(WireCounters::new().abort_rate(), 0.0);
        let c = WireCounters { transfers_offered: 8, transfers_aborted: 2, ..WireCounters::new() };
        assert!((c.abort_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pacing_counters_merge_and_rate() {
        assert_eq!(WireCounters::new().timeout_rate(), 0.0);
        let mut a = WireCounters {
            transfers_offered: 10,
            offer_timeouts: 2,
            budget_raises: 3,
            ..WireCounters::new()
        };
        let b = WireCounters { offer_timeouts: 1, budget_cuts: 4, ..WireCounters::new() };
        a.merge(&b);
        assert_eq!(a.offer_timeouts, 3);
        assert_eq!(a.budget_raises, 3);
        assert_eq!(a.budget_cuts, 4);
        assert!((a.timeout_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_is_stable() {
        let c = WireCounters::new();
        let s = c.to_string();
        assert!(s.contains("0 dgrams"));
        assert!(s.contains("0 aborted"));
    }
}
