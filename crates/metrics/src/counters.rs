use core::fmt;

use serde::{Deserialize, Serialize};

/// The elementary operations the coding schemes perform.
///
/// Each variant is charged to either the *control* plane (code vectors, Tanner
/// graph, code matrix, auxiliary indexes) or the *data* plane (XOR of `m`-byte
/// payloads), matching the split used in Figure 8 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// XOR of two `m`-byte payloads (data plane).
    PayloadXor,
    /// XOR of two code vectors / bitmap rows of length `k` bits (control plane).
    VectorXor,
    /// One Gaussian row-reduction step on the code matrix (control plane).
    RowReduction,
    /// One Tanner-graph edge update during belief propagation (control plane).
    TannerEdgeUpdate,
    /// One update of an auxiliary LTNC structure: degree index, connected
    /// components, occurrence counts (control plane).
    IndexUpdate,
    /// One degree draw from the Robust Soliton distribution, including retries
    /// (control plane).
    DegreeDraw,
    /// One candidate examination in the greedy build step, Algorithm 1
    /// (control plane).
    BuildCandidate,
    /// One substitution attempt in the refinement step, Algorithm 2
    /// (control plane).
    RefineStep,
    /// One redundancy check, Algorithm 3 (control plane).
    RedundancyCheck,
}

impl OpKind {
    /// All operation kinds, in a stable order (useful for reports).
    pub const ALL: [OpKind; 9] = [
        OpKind::PayloadXor,
        OpKind::VectorXor,
        OpKind::RowReduction,
        OpKind::TannerEdgeUpdate,
        OpKind::IndexUpdate,
        OpKind::DegreeDraw,
        OpKind::BuildCandidate,
        OpKind::RefineStep,
        OpKind::RedundancyCheck,
    ];

    /// Whether this operation touches packet data (`true`) or only control
    /// structures (`false`).
    #[must_use]
    pub fn is_data(self) -> bool {
        matches!(self, OpKind::PayloadXor)
    }

    /// A short stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpKind::PayloadXor => "payload_xor",
            OpKind::VectorXor => "vector_xor",
            OpKind::RowReduction => "row_reduction",
            OpKind::TannerEdgeUpdate => "tanner_edge_update",
            OpKind::IndexUpdate => "index_update",
            OpKind::DegreeDraw => "degree_draw",
            OpKind::BuildCandidate => "build_candidate",
            OpKind::RefineStep => "refine_step",
            OpKind::RedundancyCheck => "redundancy_check",
        }
    }

    fn slot(self) -> usize {
        match self {
            OpKind::PayloadXor => 0,
            OpKind::VectorXor => 1,
            OpKind::RowReduction => 2,
            OpKind::TannerEdgeUpdate => 3,
            OpKind::IndexUpdate => 4,
            OpKind::DegreeDraw => 5,
            OpKind::BuildCandidate => 6,
            OpKind::RefineStep => 7,
            OpKind::RedundancyCheck => 8,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic counts of elementary operations.
///
/// Counters are cheap to copy and add; the simulator keeps one per node and
/// per phase (recoding / decoding), then folds them through a [`crate::CostModel`]
/// to produce the Figure 8 series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    counts: [u64; 9],
}

impl OpCounters {
    /// Creates a zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` occurrences of an operation.
    pub fn add(&mut self, kind: OpKind, n: u64) {
        self.counts[kind.slot()] += n;
    }

    /// Records a single occurrence of an operation.
    pub fn incr(&mut self, kind: OpKind) {
        self.add(kind, 1);
    }

    /// Number of recorded occurrences of `kind`.
    #[must_use]
    pub fn get(&self, kind: OpKind) -> u64 {
        self.counts[kind.slot()]
    }

    /// Sum of all data-plane operations (payload XORs).
    #[must_use]
    pub fn data_ops(&self) -> u64 {
        OpKind::ALL.iter().filter(|k| k.is_data()).map(|&k| self.get(k)).sum()
    }

    /// Sum of all control-plane operations.
    #[must_use]
    pub fn control_ops(&self) -> u64 {
        OpKind::ALL.iter().filter(|k| !k.is_data()).map(|&k| self.get(k)).sum()
    }

    /// Total number of operations of any kind.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Adds every count of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &OpCounters) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// Returns the element-wise difference `self - other`, saturating at zero.
    ///
    /// Useful to isolate the cost of a single operation from cumulative
    /// counters: snapshot before, subtract after.
    #[must_use]
    pub fn since(&self, other: &OpCounters) -> OpCounters {
        let mut out = OpCounters::new();
        for (i, slot) in out.counts.iter_mut().enumerate() {
            *slot = self.counts[i].saturating_sub(other.counts[i]);
        }
        out
    }

    /// Iterates over `(kind, count)` pairs for non-zero counters.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, u64)> + '_ {
        OpKind::ALL.iter().map(|&k| (k, self.get(k))).filter(|&(_, c)| c > 0)
    }
}

impl core::ops::Add for OpCounters {
    type Output = OpCounters;

    fn add(mut self, rhs: OpCounters) -> OpCounters {
        self.merge(&rhs);
        self
    }
}

impl core::iter::Sum for OpCounters {
    fn sum<I: Iterator<Item = OpCounters>>(iter: I) -> Self {
        iter.fold(OpCounters::new(), |acc, c| acc + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counters_are_empty() {
        let c = OpCounters::new();
        assert!(c.is_empty());
        assert_eq!(c.total_ops(), 0);
        assert_eq!(c.data_ops(), 0);
        assert_eq!(c.control_ops(), 0);
    }

    #[test]
    fn incr_and_get() {
        let mut c = OpCounters::new();
        c.incr(OpKind::PayloadXor);
        c.add(OpKind::RowReduction, 5);
        assert_eq!(c.get(OpKind::PayloadXor), 1);
        assert_eq!(c.get(OpKind::RowReduction), 5);
        assert_eq!(c.get(OpKind::VectorXor), 0);
        assert!(!c.is_empty());
    }

    #[test]
    fn data_vs_control_split() {
        let mut c = OpCounters::new();
        c.add(OpKind::PayloadXor, 10);
        c.add(OpKind::VectorXor, 3);
        c.add(OpKind::IndexUpdate, 2);
        assert_eq!(c.data_ops(), 10);
        assert_eq!(c.control_ops(), 5);
        assert_eq!(c.total_ops(), 15);
    }

    #[test]
    fn only_payload_xor_is_data() {
        for k in OpKind::ALL {
            assert_eq!(k.is_data(), k == OpKind::PayloadXor, "{k}");
        }
    }

    #[test]
    fn merge_and_add_agree() {
        let mut a = OpCounters::new();
        a.add(OpKind::DegreeDraw, 2);
        let mut b = OpCounters::new();
        b.add(OpKind::DegreeDraw, 3);
        b.add(OpKind::RefineStep, 1);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, a + b);
        assert_eq!(merged.get(OpKind::DegreeDraw), 5);
        assert_eq!(merged.get(OpKind::RefineStep), 1);
    }

    #[test]
    fn since_isolates_a_window() {
        let mut c = OpCounters::new();
        c.add(OpKind::PayloadXor, 4);
        let snapshot = c;
        c.add(OpKind::PayloadXor, 3);
        c.add(OpKind::VectorXor, 2);
        let delta = c.since(&snapshot);
        assert_eq!(delta.get(OpKind::PayloadXor), 3);
        assert_eq!(delta.get(OpKind::VectorXor), 2);
    }

    #[test]
    fn since_saturates_at_zero() {
        let mut big = OpCounters::new();
        big.add(OpKind::PayloadXor, 4);
        let small = OpCounters::new();
        assert_eq!(small.since(&big).get(OpKind::PayloadXor), 0);
    }

    #[test]
    fn sum_folds_counters() {
        let counters: Vec<OpCounters> = (0..4)
            .map(|i| {
                let mut c = OpCounters::new();
                c.add(OpKind::TannerEdgeUpdate, i);
                c
            })
            .collect();
        let total: OpCounters = counters.into_iter().sum();
        assert_eq!(total.get(OpKind::TannerEdgeUpdate), 6);
    }

    #[test]
    fn iter_skips_zero_counts() {
        let mut c = OpCounters::new();
        c.add(OpKind::RedundancyCheck, 7);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(OpKind::RedundancyCheck, 7)]);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = OpKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OpKind::ALL.len());
    }
}
