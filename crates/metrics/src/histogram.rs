use serde::{Deserialize, Serialize};

/// An integer-bucket histogram.
///
/// Used to record degree distributions of sent packets (to check the Robust
/// Soliton shape empirically) and distributions of native-packet occurrences
/// (to check the near-Dirac property maintained by the refinement step).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Creates a histogram with `buckets` pre-allocated buckets (0..buckets).
    #[must_use]
    pub fn with_buckets(buckets: usize) -> Self {
        Histogram { counts: vec![0; buckets], total: 0 }
    }

    /// Records one observation of `value`, growing the bucket array as needed.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += n;
        self.total += n;
    }

    /// Number of observations equal to `value`.
    #[must_use]
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empirical probability of `value` (0 when the histogram is empty).
    #[must_use]
    pub fn probability(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self.counts.iter().enumerate().map(|(v, &c)| v as f64 * c as f64).sum();
        weighted / self.total as f64
    }

    /// Largest recorded value, or `None` when empty.
    #[must_use]
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Empirical cumulative probability `P(X <= value)`.
    #[must_use]
    pub fn cdf(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts.iter().take(value + 1).sum();
        cum as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(v, &c)| (v, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (value, count) in other.iter() {
            self.record_n(value, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.probability(3), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.cdf(10), 0.0);
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(3);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.max_value(), Some(3));
    }

    #[test]
    fn probability_and_cdf() {
        let mut h = Histogram::with_buckets(8);
        h.record_n(1, 5);
        h.record_n(2, 3);
        h.record_n(4, 2);
        assert!((h.probability(1) - 0.5).abs() < 1e-12);
        assert!((h.cdf(2) - 0.8).abs() < 1e-12);
        assert!((h.cdf(4) - 1.0).abs() < 1e-12);
        assert!((h.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_weighted() {
        let mut h = Histogram::new();
        h.record_n(2, 2);
        h.record_n(8, 2);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(5, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record_n(1, 2);
        let mut b = Histogram::new();
        b.record_n(1, 3);
        b.record_n(7, 1);
        a.merge(&b);
        assert_eq!(a.count(1), 5);
        assert_eq!(a.count(7), 1);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn iter_yields_nonzero_buckets_in_order() {
        let mut h = Histogram::new();
        h.record(4);
        h.record(2);
        h.record(4);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 1), (4, 2)]);
    }
}
