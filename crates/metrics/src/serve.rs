use core::fmt;

use serde::{Deserialize, Serialize};

/// Accounting of a serving endpoint (the TCP edge-cache server).
///
/// Where [`crate::WireCounters`] describes one gossip endpoint's traffic,
/// `ServeCounters` describes a *server*: how many client sessions it
/// accepted and finished, what left on the wire, how the header-first
/// feedback channel fared, and — the point of the warm store — how often
/// a symbol was served from cache instead of encoded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Client sessions accepted (request matched a registered object).
    pub sessions_accepted: u64,
    /// Client requests refused (unknown object, scheme mismatch, or the
    /// accept queue was full).
    pub sessions_rejected: u64,
    /// Sessions that reached the client's final object-complete signal.
    pub sessions_completed: u64,
    /// Bytes written to client sockets.
    pub bytes_out: u64,
    /// Bytes read from client sockets.
    pub bytes_in: u64,
    /// Header-first transfer offers sent.
    pub transfers_offered: u64,
    /// Offers the client aborted after seeing only the header.
    pub transfers_aborted: u64,
    /// Offers that carried their payload to acceptance.
    pub transfers_delivered: u64,
    /// Symbols served straight from the warm cache (no coding work).
    pub cache_hits: u64,
    /// Symbols that had to be encoded on demand.
    pub cache_misses: u64,
    /// Symbols evicted to keep a warm ring at capacity.
    pub cache_evictions: u64,
}

impl ServeCounters {
    /// All-zero counters.
    #[must_use]
    pub fn new() -> Self {
        ServeCounters::default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &ServeCounters) {
        self.sessions_accepted += other.sessions_accepted;
        self.sessions_rejected += other.sessions_rejected;
        self.sessions_completed += other.sessions_completed;
        self.bytes_out += other.bytes_out;
        self.bytes_in += other.bytes_in;
        self.transfers_offered += other.transfers_offered;
        self.transfers_aborted += other.transfers_aborted;
        self.transfers_delivered += other.transfers_delivered;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
    }

    /// Field-wise difference `self − earlier`: the activity of the
    /// interval between two cumulative snapshots.
    ///
    /// `Server::counters` snapshots are cumulative since spawn, which is
    /// the wrong shape for dashboards; polling on an interval and
    /// diffing consecutive snapshots yields rates. Saturates at zero per
    /// field, so a stale or out-of-order `earlier` yields zeros rather
    /// than wrapped garbage.
    ///
    /// # Example
    ///
    /// ```
    /// use ltnc_metrics::ServeCounters;
    ///
    /// // Two cumulative snapshots, taken (say) 10 seconds apart…
    /// let earlier = ServeCounters { bytes_out: 1_000, cache_hits: 40, ..ServeCounters::new() };
    /// let now = ServeCounters { bytes_out: 6_000, cache_hits: 90, ..ServeCounters::new() };
    ///
    /// // …become interval activity, and from there rates.
    /// let delta = now.snapshot_delta(&earlier);
    /// assert_eq!(delta.bytes_out, 5_000);
    /// assert_eq!(delta.cache_hits, 50);
    /// let interval_secs = 10.0;
    /// assert_eq!(delta.bytes_out as f64 / interval_secs, 500.0); // B/s
    /// ```
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &ServeCounters) -> ServeCounters {
        ServeCounters {
            sessions_accepted: self.sessions_accepted.saturating_sub(earlier.sessions_accepted),
            sessions_rejected: self.sessions_rejected.saturating_sub(earlier.sessions_rejected),
            sessions_completed: self.sessions_completed.saturating_sub(earlier.sessions_completed),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            transfers_offered: self.transfers_offered.saturating_sub(earlier.transfers_offered),
            transfers_aborted: self.transfers_aborted.saturating_sub(earlier.transfers_aborted),
            transfers_delivered: self
                .transfers_delivered
                .saturating_sub(earlier.transfers_delivered),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }

    /// Fraction of symbol requests served from the warm cache, in
    /// `[0, 1]`; `0` when no symbol was ever requested.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of offered transfers the client aborted at the header, in
    /// `[0, 1]`; `0` when nothing was offered.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        if self.transfers_offered == 0 {
            0.0
        } else {
            self.transfers_aborted as f64 / self.transfers_offered as f64
        }
    }
}

impl fmt::Display for ServeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sessions {} accepted / {} rejected / {} completed, \
             {} B out / {} B in, transfers {} offered / {} aborted / {} delivered, \
             cache {} hits / {} misses / {} evictions ({:.0}% hit)",
            self.sessions_accepted,
            self.sessions_rejected,
            self.sessions_completed,
            self.bytes_out,
            self.bytes_in,
            self.transfers_offered,
            self.transfers_aborted,
            self.transfers_delivered,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = ServeCounters { sessions_accepted: 1, cache_hits: 10, ..ServeCounters::new() };
        let b = ServeCounters {
            sessions_accepted: 2,
            cache_hits: 5,
            cache_misses: 5,
            bytes_out: 100,
            ..ServeCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.sessions_accepted, 3);
        assert_eq!(a.cache_hits, 15);
        assert_eq!(a.bytes_out, 100);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let zero = ServeCounters::new();
        assert_eq!(zero.cache_hit_rate(), 0.0);
        assert_eq!(zero.abort_rate(), 0.0);
        let c = ServeCounters {
            cache_hits: 3,
            cache_misses: 1,
            transfers_offered: 8,
            transfers_aborted: 2,
            ..ServeCounters::new()
        };
        assert!((c.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.abort_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_is_stable() {
        let s = ServeCounters::new().to_string();
        assert!(s.contains("0 accepted"));
        assert!(s.contains("0 hits"));
    }

    #[test]
    fn snapshot_delta_diffs_every_field_and_saturates() {
        let earlier = ServeCounters {
            sessions_accepted: 3,
            sessions_rejected: 1,
            sessions_completed: 2,
            bytes_out: 1000,
            bytes_in: 100,
            transfers_offered: 50,
            transfers_aborted: 5,
            transfers_delivered: 40,
            cache_hits: 30,
            cache_misses: 10,
            cache_evictions: 4,
        };
        let now = ServeCounters {
            sessions_accepted: 7,
            sessions_rejected: 1,
            sessions_completed: 6,
            bytes_out: 2500,
            bytes_in: 260,
            transfers_offered: 90,
            transfers_aborted: 9,
            transfers_delivered: 72,
            cache_hits: 75,
            cache_misses: 15,
            cache_evictions: 4,
        };
        let delta = now.snapshot_delta(&earlier);
        assert_eq!(
            delta,
            ServeCounters {
                sessions_accepted: 4,
                sessions_rejected: 0,
                sessions_completed: 4,
                bytes_out: 1500,
                bytes_in: 160,
                transfers_offered: 40,
                transfers_aborted: 4,
                transfers_delivered: 32,
                cache_hits: 45,
                cache_misses: 5,
                cache_evictions: 0,
            }
        );
        // Interval rates derive directly from the delta.
        assert!((delta.cache_hit_rate() - 0.9).abs() < 1e-12);
        // Out-of-order snapshots saturate to zero instead of wrapping.
        let backwards = earlier.snapshot_delta(&now);
        assert_eq!(backwards, ServeCounters::new());
        // Deltas re-accumulate: earlier + delta == now.
        let mut rebuilt = earlier;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, now);
    }
}
