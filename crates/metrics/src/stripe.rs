use core::fmt;

use serde::{Deserialize, Serialize};

/// One replica's share of a striped fetch.
///
/// A striped client opens one session per replica; this is the per-stream
/// accounting: what the replica offered, what the merged decoder took,
/// and what arrived too late to matter (duplicate rank — discarded, the
/// cost rateless union pays instead of coordination).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaCounters {
    /// Header-first offers this replica made.
    pub offers_seen: u64,
    /// Offers the client aborted at the header (completed or duplicate
    /// rank, or a generation this stream does not lease).
    pub aborted: u64,
    /// Payloads this replica delivered.
    pub delivered: u64,
    /// Deliveries that advanced the merged decoder's rank.
    pub useful: u64,
    /// Deliveries discarded as duplicate rank (another replica got there
    /// first).
    pub duplicates: u64,
    /// Generations whose finishing symbol came from this replica.
    pub generations_completed: u64,
    /// Bytes received from this replica.
    pub bytes_in: u64,
    /// Bytes sent to this replica.
    pub bytes_out: u64,
    /// The stream ended in an error (disconnect, stall, protocol); its
    /// leases were re-assigned.
    pub failed: bool,
}

impl ReplicaCounters {
    /// Adds every additive counter of `other` into `self` (re-leased
    /// streams merge into the surviving replica's numbers); `failed` is
    /// sticky rather than summed.
    pub fn merge(&mut self, other: &ReplicaCounters) {
        self.offers_seen += other.offers_seen;
        self.aborted += other.aborted;
        self.delivered += other.delivered;
        self.useful += other.useful;
        self.duplicates += other.duplicates;
        self.generations_completed += other.generations_completed;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.failed |= other.failed;
    }
}

/// Accounting of one whole striped fetch across every replica stream.
///
/// `replicas` has one fixed slot per configured replica (index =
/// replica index); streams re-opened after a failover merge into the
/// surviving replica's slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeCounters {
    /// Per-replica stream accounting, indexed by replica.
    pub replicas: Vec<ReplicaCounters>,
    /// Replica streams declared dead (error or progress-watermark stall).
    pub failovers: u64,
    /// Generation leases moved to a survivor after a failover.
    pub generations_releases: u64,
}

impl StripeCounters {
    /// Counters for `replicas` streams, all zero.
    #[must_use]
    pub fn new(replicas: usize) -> StripeCounters {
        StripeCounters {
            replicas: vec![ReplicaCounters::default(); replicas],
            failovers: 0,
            generations_releases: 0,
        }
    }

    /// Total payloads delivered across all replicas.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.replicas.iter().map(|r| r.delivered).sum()
    }

    /// Total rank-advancing deliveries across all replicas.
    #[must_use]
    pub fn total_useful(&self) -> u64 {
        self.replicas.iter().map(|r| r.useful).sum()
    }

    /// Total duplicate-rank deliveries discarded across all replicas.
    #[must_use]
    pub fn duplicates_discarded(&self) -> u64 {
        self.replicas.iter().map(|r| r.duplicates).sum()
    }

    /// Replicas that delivered at least one useful symbol.
    #[must_use]
    pub fn contributing_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.useful > 0).count()
    }

    /// Fraction of deliveries that were duplicates, in `[0, 1]`; `0` when
    /// nothing was delivered.
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        let delivered = self.total_delivered();
        if delivered == 0 {
            0.0
        } else {
            self.duplicates_discarded() as f64 / delivered as f64
        }
    }
}

impl fmt::Display for StripeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replicas ({} contributing), {} delivered / {} useful / {} duplicate, \
             {} failovers / {} leases moved",
            self.replicas.len(),
            self.contributing_replicas(),
            self.total_delivered(),
            self.total_useful(),
            self.duplicates_discarded(),
            self.failovers,
            self.generations_releases,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_replicas() {
        let mut c = StripeCounters::new(3);
        c.replicas[0] =
            ReplicaCounters { delivered: 10, useful: 9, duplicates: 1, ..Default::default() };
        c.replicas[2] = ReplicaCounters { delivered: 5, useful: 5, ..Default::default() };
        assert_eq!(c.total_delivered(), 15);
        assert_eq!(c.total_useful(), 14);
        assert_eq!(c.duplicates_discarded(), 1);
        assert_eq!(c.contributing_replicas(), 2);
        assert!((c.duplicate_rate() - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let c = StripeCounters::new(0);
        assert_eq!(c.duplicate_rate(), 0.0);
        assert_eq!(c.contributing_replicas(), 0);
    }

    #[test]
    fn display_is_stable() {
        let s = StripeCounters::new(2).to_string();
        assert!(s.contains("2 replicas"));
        assert!(s.contains("0 failovers"));
    }
}
