use core::fmt;

use serde::{Deserialize, Serialize};

/// One replica's share of a striped fetch.
///
/// A striped client opens one session per replica; this is the per-stream
/// accounting: what the replica offered, what the merged decoder took,
/// and what arrived too late to matter (duplicate rank — discarded, the
/// cost rateless union pays instead of coordination).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaCounters {
    /// Header-first offers this replica made.
    pub offers_seen: u64,
    /// Offers the client aborted at the header (completed or duplicate
    /// rank, or a generation this stream does not lease).
    pub aborted: u64,
    /// Payloads this replica delivered.
    pub delivered: u64,
    /// Deliveries that advanced the merged decoder's rank.
    pub useful: u64,
    /// Deliveries discarded as duplicate rank (another replica got there
    /// first).
    pub duplicates: u64,
    /// Generations whose finishing symbol came from this replica.
    pub generations_completed: u64,
    /// Bytes received from this replica.
    pub bytes_in: u64,
    /// Bytes sent to this replica.
    pub bytes_out: u64,
    /// The stream ended in an error (disconnect, stall, protocol); its
    /// leases were re-assigned.
    pub failed: bool,
}

impl ReplicaCounters {
    /// Adds every additive counter of `other` into `self` (re-leased
    /// streams merge into the surviving replica's numbers); `failed` is
    /// sticky rather than summed.
    pub fn merge(&mut self, other: &ReplicaCounters) {
        self.offers_seen += other.offers_seen;
        self.aborted += other.aborted;
        self.delivered += other.delivered;
        self.useful += other.useful;
        self.duplicates += other.duplicates;
        self.generations_completed += other.generations_completed;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.failed |= other.failed;
    }

    /// Everything that happened since `earlier`, field by field
    /// (saturating at zero). `failed` is edge-triggered: `true` only when
    /// the stream failed *within* the interval.
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &ReplicaCounters) -> ReplicaCounters {
        ReplicaCounters {
            offers_seen: self.offers_seen.saturating_sub(earlier.offers_seen),
            aborted: self.aborted.saturating_sub(earlier.aborted),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            useful: self.useful.saturating_sub(earlier.useful),
            duplicates: self.duplicates.saturating_sub(earlier.duplicates),
            generations_completed: self
                .generations_completed
                .saturating_sub(earlier.generations_completed),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            failed: self.failed && !earlier.failed,
        }
    }
}

/// Accounting of one whole striped fetch across every replica stream.
///
/// `replicas` has one fixed slot per configured replica (index =
/// replica index); streams re-opened after a failover merge into the
/// surviving replica's slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeCounters {
    /// Per-replica stream accounting, indexed by replica.
    pub replicas: Vec<ReplicaCounters>,
    /// Replica streams declared dead (error or progress-watermark stall).
    pub failovers: u64,
    /// Generation leases moved to a survivor after a failover.
    pub generations_releases: u64,
}

impl StripeCounters {
    /// Counters for `replicas` streams, all zero.
    #[must_use]
    pub fn new(replicas: usize) -> StripeCounters {
        StripeCounters {
            replicas: vec![ReplicaCounters::default(); replicas],
            failovers: 0,
            generations_releases: 0,
        }
    }

    /// Total payloads delivered across all replicas.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.replicas.iter().map(|r| r.delivered).sum()
    }

    /// Total rank-advancing deliveries across all replicas.
    #[must_use]
    pub fn total_useful(&self) -> u64 {
        self.replicas.iter().map(|r| r.useful).sum()
    }

    /// Total duplicate-rank deliveries discarded across all replicas.
    #[must_use]
    pub fn duplicates_discarded(&self) -> u64 {
        self.replicas.iter().map(|r| r.duplicates).sum()
    }

    /// Replicas that delivered at least one useful symbol.
    #[must_use]
    pub fn contributing_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.useful > 0).count()
    }

    /// Everything that happened since `earlier`: replica slots are diffed
    /// pairwise by index, scalars saturate at zero. Slots present now but
    /// not in `earlier` (a wider stripe) pass through whole, so a scraper
    /// that started before a reconfiguration still reads sane deltas.
    ///
    /// ```
    /// use ltnc_metrics::StripeCounters;
    ///
    /// let mut earlier = StripeCounters::new(2);
    /// earlier.replicas[0].delivered = 10;
    /// let mut now = StripeCounters::new(2);
    /// now.replicas[0].delivered = 25;
    /// now.failovers = 1;
    /// let delta = now.snapshot_delta(&earlier);
    /// assert_eq!(delta.replicas[0].delivered, 15);
    /// assert_eq!(delta.failovers, 1);
    /// ```
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &StripeCounters) -> StripeCounters {
        let blank = ReplicaCounters::default();
        StripeCounters {
            replicas: self
                .replicas
                .iter()
                .enumerate()
                .map(|(i, replica)| {
                    replica.snapshot_delta(earlier.replicas.get(i).unwrap_or(&blank))
                })
                .collect(),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            generations_releases: self
                .generations_releases
                .saturating_sub(earlier.generations_releases),
        }
    }

    /// Fraction of deliveries that were duplicates, in `[0, 1]`; `0` when
    /// nothing was delivered.
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        let delivered = self.total_delivered();
        if delivered == 0 {
            0.0
        } else {
            self.duplicates_discarded() as f64 / delivered as f64
        }
    }
}

impl fmt::Display for StripeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replicas ({} contributing), {} delivered / {} useful / {} duplicate, \
             {} failovers / {} leases moved",
            self.replicas.len(),
            self.contributing_replicas(),
            self.total_delivered(),
            self.total_useful(),
            self.duplicates_discarded(),
            self.failovers,
            self.generations_releases,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_replicas() {
        let mut c = StripeCounters::new(3);
        c.replicas[0] =
            ReplicaCounters { delivered: 10, useful: 9, duplicates: 1, ..Default::default() };
        c.replicas[2] = ReplicaCounters { delivered: 5, useful: 5, ..Default::default() };
        assert_eq!(c.total_delivered(), 15);
        assert_eq!(c.total_useful(), 14);
        assert_eq!(c.duplicates_discarded(), 1);
        assert_eq!(c.contributing_replicas(), 2);
        assert!((c.duplicate_rate() - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let c = StripeCounters::new(0);
        assert_eq!(c.duplicate_rate(), 0.0);
        assert_eq!(c.contributing_replicas(), 0);
    }

    #[test]
    fn snapshot_delta_is_pairwise_and_saturating() {
        let mut earlier = StripeCounters::new(2);
        earlier.replicas[0] = ReplicaCounters {
            offers_seen: 10,
            aborted: 2,
            delivered: 8,
            useful: 7,
            duplicates: 1,
            generations_completed: 1,
            bytes_in: 800,
            bytes_out: 80,
            failed: false,
        };
        earlier.failovers = 1;
        let mut now = earlier.clone();
        now.replicas[0].offers_seen = 25;
        now.replicas[0].delivered = 20;
        now.replicas[0].useful = 18;
        now.replicas[0].bytes_in = 2_000;
        now.replicas[0].failed = true;
        now.replicas[1].delivered = 5;
        now.failovers = 2;
        now.generations_releases = 3;

        let delta = now.snapshot_delta(&earlier);
        assert_eq!(delta.replicas[0].offers_seen, 15);
        assert_eq!(delta.replicas[0].delivered, 12);
        assert_eq!(delta.replicas[0].useful, 11);
        assert_eq!(delta.replicas[0].bytes_in, 1_200);
        assert_eq!(delta.replicas[0].aborted, 0);
        assert_eq!(delta.replicas[1].delivered, 5);
        assert_eq!(delta.failovers, 1);
        assert_eq!(delta.generations_releases, 3);
        // `failed` flips only on the interval where the failure happened.
        assert!(delta.replicas[0].failed);
        assert!(!now.snapshot_delta(&now).replicas[0].failed);
        // Saturation: diffing against a "later" snapshot yields zeros.
        assert_eq!(earlier.snapshot_delta(&now).replicas[0].offers_seen, 0);
    }

    #[test]
    fn snapshot_delta_handles_widened_stripe() {
        let earlier = StripeCounters::new(1);
        let mut now = StripeCounters::new(3);
        now.replicas[2].delivered = 4;
        let delta = now.snapshot_delta(&earlier);
        assert_eq!(delta.replicas.len(), 3);
        assert_eq!(delta.replicas[2].delivered, 4);
    }

    #[test]
    fn display_is_stable() {
        let s = StripeCounters::new(2).to_string();
        assert!(s.contains("2 replicas"));
        assert!(s.contains("0 failovers"));
    }
}
