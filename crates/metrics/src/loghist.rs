//! Log-bucketed latency histograms with lock-free recording.
//!
//! [`LogHistogram`] buckets values by their binary order of magnitude:
//! bucket `i` covers `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly the
//! value 0). Recording is a pair of relaxed atomic adds plus an atomic
//! max, so peer actors and serving workers can record on the hot path
//! while a scrape thread snapshots concurrently — no locks, no
//! allocation, bounded memory regardless of the value range.
//!
//! The price is resolution: a quantile is reported as the *upper bound*
//! of the bucket it falls in, i.e. within a factor of two of the true
//! value. For latency distributions spanning microseconds to seconds
//! that is exactly the fidelity the multihop experiments need, and it
//! is what the Prometheus exposition renders as cumulative
//! `_bucket{le="..."}` series.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit width of a
/// `u64` value.
pub const LOG_BUCKETS: usize = 65;

/// Delivery latencies are attributed to the number of overlay links the
/// information crossed; anything deeper than this folds into the last
/// slot so the recorder stays fixed-size.
pub const MAX_LATENCY_HOPS: usize = 16;

/// A power-of-two-bucketed histogram with atomic, lock-free recording.
///
/// Values are `u64` (by convention: microseconds for latencies).
/// Concurrent [`record`](LogHistogram::record) and
/// [`snapshot`](LogHistogram::snapshot) calls are safe; a snapshot taken
/// during concurrent recording is a consistent-enough view (bucket
/// counts and sum may straddle an in-flight record by one sample).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index for a value: 0 for 0, otherwise the value's bit width.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` (`u64::MAX` for the last
/// bucket — values of 2^63 and above saturate there).
#[must_use]
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= LOG_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&self, other: &LogHistogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a snapshot's counts into this live histogram.
    pub fn merge_snapshot(&self, snapshot: &LogHistogramSnapshot) {
        for (bucket, &count) in self.buckets.iter().zip(snapshot.buckets.iter()) {
            if count > 0 {
                bucket.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(snapshot.sum, Ordering::Relaxed);
        self.max.fetch_max(snapshot.max, Ordering::Relaxed);
    }

    /// An owned, immutable copy of the current counts.
    #[must_use]
    pub fn snapshot(&self) -> LogHistogramSnapshot {
        LogHistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.load(Ordering::Relaxed) == 0)
    }
}

/// An immutable view of a [`LogHistogram`]: plain counts, cheap to clone
/// and compare, with the quantile arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogramSnapshot {
    /// Per-bucket observation counts (not cumulative); bucket `i` covers
    /// values up to [`bucket_bound`]`(i)` inclusive.
    pub buckets: [u64; LOG_BUCKETS],
    /// Sum of every recorded value (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl Default for LogHistogramSnapshot {
    fn default() -> Self {
        LogHistogramSnapshot::empty()
    }
}

impl LogHistogramSnapshot {
    /// A snapshot with no observations.
    #[must_use]
    pub fn empty() -> LogHistogramSnapshot {
        LogHistogramSnapshot { buckets: [0; LOG_BUCKETS], sum: 0, max: 0 }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, reported as the upper bound of the
    /// bucket the rank falls in (so within 2x above the true value),
    /// clamped to [`LogHistogramSnapshot::max`]. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample that dominates the quantile, 1-based.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper bucket bound).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (upper bucket bound).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (upper bucket bound).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &LogHistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `earlier` was taken (per-bucket
    /// saturating subtraction, for interval views of a live histogram).
    #[must_use]
    pub fn since(&self, earlier: &LogHistogramSnapshot) -> LogHistogramSnapshot {
        LogHistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
            // Interval max is unknowable from counts alone; the lifetime
            // max is the honest upper bound.
            max: self.max,
        }
    }

    /// Interval view under the counter families' name: what this
    /// snapshot adds over `earlier`. Same arithmetic as
    /// [`LogHistogramSnapshot::since`] — provided so histogram samplers
    /// read like `WireCounters::snapshot_delta` and friends.
    #[must_use]
    pub fn snapshot_delta(&self, earlier: &LogHistogramSnapshot) -> LogHistogramSnapshot {
        self.since(earlier)
    }
}

/// Delivery-latency recorder keyed by the number of overlay links the
/// delivered information crossed (the wire-carried hop count + 1).
/// Fixed-size and lock-free, so the peer actor records on its hot path
/// while the scrape endpoint snapshots live.
#[derive(Debug, Default)]
pub struct HopLatency {
    by_hop: [LogHistogram; MAX_LATENCY_HOPS],
}

impl HopLatency {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> HopLatency {
        HopLatency::default()
    }

    /// Records a latency observation for a delivery that crossed `hops`
    /// overlay links (clamped to [`MAX_LATENCY_HOPS`]).
    pub fn record(&self, hops: usize, value: u64) {
        let slot = hops.clamp(1, MAX_LATENCY_HOPS) - 1;
        self.by_hop[slot].record(value);
    }

    /// Snapshots of the non-empty per-hop histograms as
    /// `(links_crossed, snapshot)` pairs, ascending.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(usize, LogHistogramSnapshot)> {
        self.by_hop
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(i, h)| (i + 1, h.snapshot()))
            .collect()
    }

    /// All hops merged into one distribution.
    #[must_use]
    pub fn total(&self) -> LogHistogramSnapshot {
        let mut total = LogHistogramSnapshot::empty();
        for histogram in &self.by_hop {
            total.merge(&histogram.snapshot());
        }
        total
    }

    /// True when nothing has been recorded at any hop.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_hop.iter().all(LogHistogram::is_empty)
    }

    /// Interval view against a per-hop snapshot taken earlier with
    /// [`HopLatency::snapshot`]: one `(links_crossed, delta)` pair per
    /// hop that recorded anything since, ascending. Hops absent from
    /// `earlier` report their full distribution; hops that recorded
    /// nothing new are omitted — the same contract interval counter
    /// families keep with `snapshot_delta`.
    #[must_use]
    pub fn snapshot_delta(
        &self,
        earlier: &[(usize, LogHistogramSnapshot)],
    ) -> Vec<(usize, LogHistogramSnapshot)> {
        self.snapshot()
            .into_iter()
            .map(|(hops, now)| {
                let delta = match earlier.iter().find(|(h, _)| *h == hops) {
                    Some((_, before)) => now.snapshot_delta(before),
                    None => now,
                };
                (hops, delta)
            })
            .filter(|(_, delta)| !delta.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_every_quantile_is_that_bucket() {
        let h = LogHistogram::new();
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, 100);
        assert_eq!(s.max, 100);
        // 100 lands in bucket [64, 127]; quantiles clamp to the max.
        assert_eq!(s.p50(), 100);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(0.0), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn zero_lands_in_its_own_bucket() {
        let h = LogHistogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn saturating_values_land_in_the_top_bucket() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[LOG_BUCKETS - 1], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
        assert_eq!(bucket_bound(LOG_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let h = LogHistogram::new();
        // 90 small values, 10 large: p50 small, p99 large.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        // 10 is in bucket [8, 15] -> bound 15.
        assert_eq!(s.p50(), 15);
        assert_eq!(s.p90(), 15);
        // 10_000 is in bucket [8192, 16383] -> bound 16383, clamped to
        // the max observed value (10_000).
        assert_eq!(s.p99(), 10_000);
        assert!(s.quantile(1.0) >= 10_000);
    }

    #[test]
    fn quantile_upper_bound_is_within_2x_of_true_value() {
        let h = LogHistogram::new();
        for v in [3u64, 17, 200, 5_000, 70_000] {
            h.record(v);
            let s = h.snapshot();
            let q = s.quantile(1.0);
            assert!(q >= v, "quantile {q} under true value {v}");
            assert!(q <= v.saturating_mul(2), "quantile {q} over 2x true value {v}");
        }
    }

    #[test]
    fn merge_and_since_roundtrip() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(500);
        b.record(50_000);
        a.merge(&b);
        let merged = a.snapshot();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum, 5 + 500 + 50_000);
        assert_eq!(merged.max, 50_000);

        let earlier = merged.clone();
        a.record(7);
        let delta = a.snapshot().since(&earlier);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum, 7);
    }

    #[test]
    fn snapshot_delta_matches_since() {
        let h = LogHistogram::new();
        h.record(40);
        let earlier = h.snapshot();
        h.record(9_000);
        let now = h.snapshot();
        assert_eq!(now.snapshot_delta(&earlier), now.since(&earlier));
        assert_eq!(now.snapshot_delta(&earlier).count(), 1);
    }

    #[test]
    fn hop_latency_snapshot_delta_tracks_new_hops_and_omits_idle_ones() {
        let lat = HopLatency::new();
        lat.record(1, 100);
        lat.record(2, 200);
        let earlier = lat.snapshot();
        lat.record(2, 300);
        lat.record(5, 50); // a hop the earlier snapshot never saw
        let delta = lat.snapshot_delta(&earlier);
        let hops: Vec<usize> = delta.iter().map(|(h, _)| *h).collect();
        assert_eq!(hops, vec![2, 5], "hop 1 recorded nothing new and is omitted");
        assert_eq!(delta[0].1.count(), 1);
        assert_eq!(delta[1].1.count(), 1, "unseen hops report their full distribution");
        assert!(lat.snapshot_delta(&lat.snapshot()).is_empty());
    }

    #[test]
    fn hop_latency_clamps_and_merges() {
        let lat = HopLatency::new();
        assert!(lat.is_empty());
        lat.record(1, 100);
        lat.record(2, 200);
        lat.record(0, 1); // clamps up to hop 1
        lat.record(999, 9); // clamps down to the last slot
        let per_hop = lat.snapshot();
        let hops: Vec<usize> = per_hop.iter().map(|(h, _)| *h).collect();
        assert_eq!(hops, vec![1, 2, MAX_LATENCY_HOPS]);
        assert_eq!(per_hop[0].1.count(), 2);
        let total = lat.total();
        assert_eq!(total.count(), 4);
        assert_eq!(total.max, 200);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(i + t * 1_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4_000);
        assert_eq!(s.sum, (0..4_000u64).sum());
        assert_eq!(s.max, 3_999);
    }
}
