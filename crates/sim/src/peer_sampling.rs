use rand::seq::SliceRandom;
use rand::Rng;

/// A gossip-based peer sampling service in the spirit of Jelasity et al.,
/// which the paper assumes as its underlying overlay ("packets are pushed to
/// nodes picked uniformly at random in the network, using an underlying peer
/// sampling service; the set of nodes to which a node pushes packets is
/// renewed periodically in a gossip fashion").
///
/// Every node keeps a small partial view of the network. Each gossip period
/// the views are refreshed by swapping random halves with a random neighbour,
/// which keeps the overlay connected and the samples close to uniform. Push
/// targets are drawn from the current view.
#[derive(Debug, Clone)]
pub struct PeerSampler {
    nodes: usize,
    view_size: usize,
    views: Vec<Vec<usize>>,
}

impl PeerSampler {
    /// Creates the sampler for `nodes` nodes with partial views of `view_size`
    /// entries, initialised with uniformly random views.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `view_size == 0`.
    pub fn new<R: Rng + ?Sized>(nodes: usize, view_size: usize, rng: &mut R) -> Self {
        assert!(nodes >= 2, "a network needs at least two nodes");
        assert!(view_size >= 1, "views must hold at least one peer");
        let view_size = view_size.min(nodes - 1);
        let views = (0..nodes).map(|me| Self::random_view(me, nodes, view_size, rng)).collect();
        PeerSampler { nodes, view_size, views }
    }

    fn random_view<R: Rng + ?Sized>(
        me: usize,
        nodes: usize,
        view_size: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        let mut others: Vec<usize> = (0..nodes).filter(|&x| x != me).collect();
        others.shuffle(rng);
        others.truncate(view_size);
        others
    }

    /// Number of nodes in the overlay.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The current partial view of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn view(&self, node: usize) -> &[usize] {
        &self.views[node]
    }

    /// Samples a push target for `node` from its current view.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, node: usize, rng: &mut R) -> usize {
        *self.views[node].choose(rng).expect("views are never empty")
    }

    /// One period of view shuffling, in the spirit of Cyclon / the gossip
    /// peer-sampling service: every node exchanges a random half of its view
    /// with a random neighbour, each side including its *own* address in the
    /// gift (which keeps fresh links circulating and prevents the overlay from
    /// partitioning into closed cliques). Both sides then absorb the gift,
    /// preferring the fresh entries, and truncate back to the view size.
    pub fn shuffle_views<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for me in 0..self.nodes {
            let partner = self.sample(me, rng);
            let half = (self.view_size / 2).max(1);

            let mut mine = self.views[me].clone();
            let mut theirs = self.views[partner].clone();
            mine.shuffle(rng);
            theirs.shuffle(rng);
            let mut my_gift: Vec<usize> = mine.iter().copied().take(half).collect();
            my_gift.push(me);
            let mut their_gift: Vec<usize> = theirs.iter().copied().take(half).collect();
            their_gift.push(partner);

            Self::absorb(&mut self.views[me], &their_gift, me, self.view_size, rng);
            Self::absorb(&mut self.views[partner], &my_gift, partner, self.view_size, rng);
        }
    }

    /// Merges a gift into a view: fresh entries are kept, and when the view
    /// overflows, entries that are *not* part of the gift are evicted first.
    fn absorb<R: Rng + ?Sized>(
        view: &mut Vec<usize>,
        gift: &[usize],
        me: usize,
        view_size: usize,
        rng: &mut R,
    ) {
        for &peer in gift {
            if peer != me && !view.contains(&peer) {
                view.push(peer);
            }
        }
        while view.len() > view_size {
            // Evict a random non-gift entry if one exists, otherwise any entry.
            let evictable: Vec<usize> =
                (0..view.len()).filter(|&i| !gift.contains(&view[i])).collect();
            let idx = if evictable.is_empty() {
                rng.gen_range(0..view.len())
            } else {
                evictable[rng.gen_range(0..evictable.len())]
            };
            view.swap_remove(idx);
        }
        view.shuffle(rng);
        debug_assert!(!view.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn views_have_the_requested_size_and_no_self_loops() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ps = PeerSampler::new(50, 8, &mut rng);
        assert_eq!(ps.nodes(), 50);
        for me in 0..50 {
            let view = ps.view(me);
            assert_eq!(view.len(), 8);
            assert!(!view.contains(&me));
            let distinct: HashSet<_> = view.iter().collect();
            assert_eq!(distinct.len(), view.len());
        }
    }

    #[test]
    fn view_size_is_clamped_to_network_size() {
        let mut rng = SmallRng::seed_from_u64(2);
        let ps = PeerSampler::new(4, 100, &mut rng);
        for me in 0..4 {
            assert_eq!(ps.view(me).len(), 3);
        }
    }

    #[test]
    fn sample_returns_a_peer_from_the_view() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ps = PeerSampler::new(20, 5, &mut rng);
        for me in 0..20 {
            for _ in 0..10 {
                let peer = ps.sample(me, &mut rng);
                assert!(ps.view(me).contains(&peer));
                assert_ne!(peer, me);
            }
        }
    }

    #[test]
    fn shuffling_keeps_views_valid() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ps = PeerSampler::new(30, 6, &mut rng);
        for _ in 0..20 {
            ps.shuffle_views(&mut rng);
            for me in 0..30 {
                let view = ps.view(me);
                assert!(!view.is_empty());
                assert!(view.len() <= 6);
                assert!(!view.contains(&me));
                let distinct: HashSet<_> = view.iter().collect();
                assert_eq!(distinct.len(), view.len());
            }
        }
    }

    #[test]
    fn shuffling_renews_views_over_time() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ps = PeerSampler::new(40, 6, &mut rng);
        let before: Vec<Vec<usize>> = (0..40).map(|i| ps.view(i).to_vec()).collect();
        for _ in 0..10 {
            ps.shuffle_views(&mut rng);
        }
        let changed = (0..40).filter(|&i| ps.view(i) != before[i].as_slice()).count();
        assert!(changed > 20, "only {changed} views changed after shuffling");
    }

    #[test]
    fn samples_cover_the_network_thanks_to_shuffling() {
        // With view shuffling, a single node's samples over time should reach
        // most of the network (close-to-uniform sampling).
        let mut rng = SmallRng::seed_from_u64(6);
        let mut ps = PeerSampler::new(30, 5, &mut rng);
        let mut seen = HashSet::new();
        for _ in 0..600 {
            seen.insert(ps.sample(0, &mut rng));
            ps.shuffle_views(&mut rng);
        }
        assert!(seen.len() > 22, "node 0 only ever sampled {} distinct peers", seen.len());
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_degenerate_network() {
        let mut rng = SmallRng::seed_from_u64(7);
        PeerSampler::new(1, 4, &mut rng);
    }
}
