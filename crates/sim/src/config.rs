use ltnc_scheme::{SchemeKind, SchemeParams};
use serde::{Deserialize, Serialize};

/// Parameters of one simulated dissemination (§IV-A of the paper).
///
/// The paper's reference setup is `N = 1000` nodes, `k = 2048` blocks of
/// `m = 256 KB`; the defaults here are scaled down so that unit tests and the
/// quick mode of the figure harness run in seconds, and the harness overrides
/// them to paper scale when asked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes `N` (the source is an additional, dedicated node).
    pub nodes: usize,
    /// Number of native packets `k` the content is split into.
    pub code_length: usize,
    /// Payload size `m` in bytes. The simulator carries real payloads so that
    /// decoded content can be verified bit-for-bit; figure harnesses use small
    /// payloads and scale data costs analytically through the cost model.
    pub payload_size: usize,
    /// Dissemination scheme.
    pub scheme: SchemeKind,
    /// Fraction of `k` a node must have received (innovative packets for the
    /// coded schemes) before it starts pushing recoded packets — the paper's
    /// *aggressiveness* parameter (≈ 1 % for LTNC, 0 for WC/RLNC).
    pub aggressiveness: f64,
    /// Number of packets the source injects per gossip period.
    pub source_rate: usize,
    /// Number of packets every eligible node pushes per gossip period.
    pub push_rate: usize,
    /// Fan-out of the WC scheme (`f` in the paper, must exceed `ln N`);
    /// ignored by the coded schemes.
    pub wc_fanout: usize,
    /// Buffer size of the WC scheme (`b` in the paper).
    pub wc_buffer: usize,
    /// Size of each node's partial view in the peer sampling service.
    pub view_size: usize,
    /// Whether the binary feedback channel is available (receivers abort
    /// transfers of packets whose header shows they are not innovative).
    pub feedback: bool,
    /// Probability that a payload transfer is lost in transit (after the
    /// header check passed). 0 reproduces the paper's loss-free setting; the
    /// failure-injection experiments raise it.
    pub loss_rate: f64,
    /// Probability, per gossip period, that one random node crashes and
    /// restarts empty (loses all its coding state). 0 reproduces the paper's
    /// churn-free setting.
    pub churn_rate: f64,
    /// Stop after this many gossip periods even if some nodes are incomplete.
    pub max_periods: usize,
    /// Seed of the simulation's deterministic RNG.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 100,
            code_length: 64,
            payload_size: 8,
            scheme: SchemeKind::Ltnc,
            aggressiveness: 0.01,
            source_rate: 4,
            push_rate: 1,
            wc_fanout: 8,
            wc_buffer: 32,
            view_size: 16,
            feedback: true,
            loss_rate: 0.0,
            churn_rate: 0.0,
            max_periods: 20_000,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// The paper's reference configuration (Figure 7a): `N = 1000`,
    /// `k = 2048`. Payload size is kept small (data-plane costs are scaled by
    /// the cost model instead of carrying 256 KB per packet in memory).
    #[must_use]
    pub fn paper_reference(scheme: SchemeKind) -> Self {
        SimConfig {
            nodes: 1000,
            code_length: 2048,
            payload_size: 64,
            scheme,
            aggressiveness: match scheme {
                SchemeKind::Ltnc => 0.01,
                _ => 0.0,
            },
            wc_fanout: 8, // ⌈ln 1000⌉ = 7, with one extra for margin
            wc_buffer: 256,
            ..SimConfig::default()
        }
    }

    /// A scaled-down configuration that preserves the paper's ratios but runs
    /// in seconds; used by tests and the harness's quick mode.
    #[must_use]
    pub fn quick(scheme: SchemeKind) -> Self {
        SimConfig {
            nodes: 60,
            code_length: 32,
            payload_size: 8,
            scheme,
            aggressiveness: match scheme {
                SchemeKind::Ltnc => 0.02,
                _ => 0.0,
            },
            wc_fanout: 6,
            wc_buffer: 32,
            max_periods: 10_000,
            ..SimConfig::default()
        }
    }

    /// The effective number of innovative packets a node needs before it may
    /// start recoding (aggressiveness × k, at least 1 for the coded schemes).
    #[must_use]
    pub fn recode_threshold(&self) -> usize {
        ((self.aggressiveness * self.code_length as f64).ceil() as usize).max(1)
    }

    /// The scheme-construction subset of this configuration, usable by any
    /// driver (see [`SchemeParams`]).
    #[must_use]
    pub fn scheme_params(&self) -> SchemeParams {
        SchemeParams {
            kind: self.scheme,
            code_length: self.code_length,
            payload_size: self.payload_size,
            wc_fanout: self.wc_fanout,
            wc_buffer: self.wc_buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_are_distinct() {
        let mut labels: Vec<&str> = SchemeKind::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn default_config_is_consistent() {
        let c = SimConfig::default();
        assert!(c.nodes > 0);
        assert!(c.code_length > 0);
        assert!(c.view_size > 0);
        assert!(c.recode_threshold() >= 1);
    }

    #[test]
    fn paper_reference_matches_section_iv() {
        let c = SimConfig::paper_reference(SchemeKind::Ltnc);
        assert_eq!(c.nodes, 1000);
        assert_eq!(c.code_length, 2048);
        assert!((c.aggressiveness - 0.01).abs() < 1e-12);
        assert!(c.wc_fanout as f64 >= (c.nodes as f64).ln());
        let r = SimConfig::paper_reference(SchemeKind::Rlnc);
        assert_eq!(r.aggressiveness, 0.0);
    }

    #[test]
    fn defaults_have_no_loss_or_churn() {
        let c = SimConfig::default();
        assert_eq!(c.loss_rate, 0.0);
        assert_eq!(c.churn_rate, 0.0);
        assert_eq!(SimConfig::paper_reference(SchemeKind::Ltnc).loss_rate, 0.0);
    }

    #[test]
    fn recode_threshold_scales_with_aggressiveness() {
        let mut c = SimConfig { code_length: 2048, aggressiveness: 0.01, ..SimConfig::default() };
        assert_eq!(c.recode_threshold(), 21);
        c.aggressiveness = 0.0;
        assert_eq!(c.recode_threshold(), 1);
    }
}
