//! Epidemic content-dissemination simulator — the paper's evaluation substrate.
//!
//! The paper evaluates LTNC against RLNC and an unencoded scheme (WC) in a
//! push-based epidemic dissemination: a source injects encoded packets into a
//! network of `N` nodes; every node periodically pushes (possibly recoded)
//! packets to peers chosen uniformly at random through a gossip-based peer
//! sampling service; a binary feedback channel lets a receiver abort the
//! transfer of a packet whose header shows it is not innovative.
//!
//! This crate provides:
//!
//! * [`PeerSampler`] — the gossip-style peer sampling service (random partial
//!   views, periodically shuffled) used to pick push targets;
//! * [`Scheme`] and its three implementations — [`WcNode`] (no coding),
//!   [`RlncSchemeNode`] and [`LtncSchemeNode`] — the pluggable per-node
//!   behaviour;
//! * [`Engine`] — the round-based simulation loop with source injection,
//!   aggressiveness-gated recoding and the feedback channel;
//! * [`SimConfig`] / [`SimReport`] — experiment parameters and collected
//!   metrics (convergence curve, completion time, message counts, per-node
//!   operation counters) from which the figure harness regenerates
//!   Figures 7 and 8.
//!
//! # Example
//!
//! ```
//! use ltnc_sim::{Engine, SchemeKind, SimConfig};
//!
//! let config = SimConfig {
//!     nodes: 30,
//!     code_length: 16,
//!     payload_size: 8,
//!     scheme: SchemeKind::Ltnc,
//!     max_periods: 2_000,
//!     seed: 7,
//!     ..SimConfig::default()
//! };
//! let report = Engine::new(config).run();
//! assert_eq!(report.completed_nodes, 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod peer_sampling;
mod report;

pub use config::SimConfig;
pub use engine::Engine;
pub use peer_sampling::PeerSampler;
pub use report::{CostReport, SimReport};
// The per-node scheme behaviour lives in `ltnc-scheme` (shared with the
// `ltnc-net` transport); re-exported here so existing `ltnc_sim::` paths
// keep working.
pub use ltnc_scheme::{
    LtncSchemeNode, RlncSchemeNode, Scheme, SchemeKind, SchemeParams, SendDecision, WcNode,
};
