use ltnc_metrics::{CostModel, OpCounters, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::{SchemeKind, SimConfig};

/// Metrics collected from one simulated dissemination.
///
/// A report contains everything the figure harness needs to regenerate the
/// paper's evaluation: the convergence curve (Figure 7a), the average time to
/// complete (Figure 7b), the communication overhead (Figure 7c) and the
/// operation counters that, folded through a [`CostModel`], give the four
/// panels of Figure 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Which scheme produced this report.
    pub scheme: SchemeKind,
    /// The configuration that was simulated.
    pub config: SimConfig,
    /// Number of nodes that decoded the full content before the simulation ended.
    pub completed_nodes: usize,
    /// Gossip period at which the last node completed, if every node did.
    pub completion_period: Option<usize>,
    /// Average, over completed nodes, of the period at which they completed.
    pub avg_time_to_complete: f64,
    /// Proportion of complete nodes (percent) as a function of the gossip period.
    pub convergence: TimeSeries,
    /// Number of payload transfers actually performed (headers whose transfer
    /// was not aborted).
    pub payloads_delivered: u64,
    /// Number of transfers aborted by the binary feedback channel after the
    /// header check.
    pub transfers_aborted: u64,
    /// Number of payload transfers lost in transit (failure injection; 0 in
    /// the paper's setting).
    pub payloads_lost: u64,
    /// Number of node crash/restart events injected (failure injection; 0 in
    /// the paper's setting).
    pub churn_events: u64,
    /// Number of delivered payloads that turned out to be useful to the receiver.
    pub useful_deliveries: u64,
    /// Sum of the recoding counters of all nodes (including the source).
    pub recoding_counters: OpCounters,
    /// Sum of the decoding counters of all nodes (excluding the source).
    pub decoding_counters: OpCounters,
    /// Number of fresh packets recoded network-wide (for per-packet averages).
    pub packets_recoded: u64,
    /// Whether every completed node reconstructed content identical to the source's.
    pub content_verified: bool,
}

impl SimReport {
    /// Communication overhead in percent: payloads delivered beyond the
    /// minimum necessary (`N · k` useful packets). WC and RLNC have (near)
    /// zero overhead because their feedback check is exact; LTNC pays for the
    /// redundant packets its cheap detection lets through (Figure 7c).
    #[must_use]
    pub fn overhead_percent(&self) -> f64 {
        let necessary = (self.config.nodes * self.config.code_length) as f64;
        if necessary == 0.0 {
            return 0.0;
        }
        ((self.payloads_delivered as f64 - necessary) / necessary * 100.0).max(0.0)
    }

    /// Fraction of nodes that completed (0..=1).
    #[must_use]
    pub fn completion_ratio(&self) -> f64 {
        self.completed_nodes as f64 / self.config.nodes as f64
    }

    /// Folds the collected counters through a cost model into the per-figure
    /// quantities of Figure 8.
    #[must_use]
    pub fn cost_report(&self, model: &CostModel) -> CostReport {
        let recode = model.evaluate(&self.recoding_counters);
        let decode = model.evaluate(&self.decoding_counters);
        let packets = self.packets_recoded.max(1) as f64;
        let nodes = self.config.nodes.max(1) as f64;
        let content_bytes = (self.config.code_length * self.config.payload_size).max(1) as f64;
        CostReport {
            recode_control_per_packet: recode.control_cycles / packets,
            recode_data_per_byte: recode.data_cycles
                / (packets * self.config.payload_size.max(1) as f64),
            decode_control_per_node: decode.control_cycles / nodes,
            decode_data_per_byte: decode.data_cycles / (nodes * content_bytes),
        }
    }
}

/// The four cost quantities of Figure 8, derived from a [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Figure 8a: cycles spent on control structures per recoded packet.
    pub recode_control_per_packet: f64,
    /// Figure 8c: cycles spent on payload data per recoded packet, per byte.
    pub recode_data_per_byte: f64,
    /// Figure 8b: cycles spent on control structures to decode the content, per node.
    pub decode_control_per_node: f64,
    /// Figure 8d: cycles spent on payload data to decode the content, per byte of content, per node.
    pub decode_data_per_byte: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_metrics::OpKind;

    fn base_report() -> SimReport {
        let config =
            SimConfig { nodes: 10, code_length: 8, payload_size: 4, ..SimConfig::default() };
        SimReport {
            scheme: SchemeKind::Ltnc,
            config,
            completed_nodes: 10,
            completion_period: Some(100),
            avg_time_to_complete: 80.0,
            convergence: TimeSeries::new("LTNC"),
            payloads_delivered: 100,
            transfers_aborted: 5,
            payloads_lost: 0,
            churn_events: 0,
            useful_deliveries: 80,
            recoding_counters: OpCounters::new(),
            decoding_counters: OpCounters::new(),
            packets_recoded: 50,
            content_verified: true,
        }
    }

    #[test]
    fn overhead_is_relative_to_necessary_packets() {
        let mut r = base_report();
        // necessary = 10 * 8 = 80; delivered = 100 → 25 % overhead.
        assert!((r.overhead_percent() - 25.0).abs() < 1e-9);
        r.payloads_delivered = 80;
        assert_eq!(r.overhead_percent(), 0.0);
        // Fewer than necessary (incomplete run) clamps at zero.
        r.payloads_delivered = 40;
        assert_eq!(r.overhead_percent(), 0.0);
    }

    #[test]
    fn completion_ratio_is_fractional() {
        let mut r = base_report();
        assert_eq!(r.completion_ratio(), 1.0);
        r.completed_nodes = 5;
        assert_eq!(r.completion_ratio(), 0.5);
    }

    #[test]
    fn cost_report_splits_control_and_data() {
        let mut r = base_report();
        r.recoding_counters.add(OpKind::VectorXor, 100);
        r.recoding_counters.add(OpKind::PayloadXor, 100);
        r.decoding_counters.add(OpKind::TannerEdgeUpdate, 200);
        r.decoding_counters.add(OpKind::PayloadXor, 200);
        let model = CostModel::new(r.config.code_length, r.config.payload_size);
        let c = r.cost_report(&model);
        assert!(c.recode_control_per_packet > 0.0);
        assert!(c.recode_data_per_byte > 0.0);
        assert!(c.decode_control_per_node > 0.0);
        assert!(c.decode_data_per_byte > 0.0);
    }

    #[test]
    fn cost_report_handles_zero_activity() {
        let r = base_report();
        let model = CostModel::new(8, 4);
        let c = r.cost_report(&model);
        assert_eq!(c.recode_control_per_packet, 0.0);
        assert_eq!(c.decode_data_per_byte, 0.0);
    }
}
