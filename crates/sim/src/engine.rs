use ltnc_gf2::Payload;
use ltnc_metrics::{OpCounters, TimeSeries};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{PeerSampler, Scheme, SendDecision, SimConfig, SimReport};

/// The round-based epidemic dissemination engine (§IV-A of the paper).
///
/// Every gossip period:
///
/// 1. the peer sampling service shuffles its views (the overlay is dynamic);
/// 2. the source injects `source_rate` packets to uniformly random nodes;
/// 3. every node that has passed the aggressiveness threshold pushes
///    `push_rate` fresh packets to peers sampled from its view;
/// 4. each transfer goes through the binary feedback channel: the receiver
///    inspects the code vector (carried in the header) and aborts the
///    transfer when it can tell the packet is not innovative, so only the
///    header — not the payload — is wasted.
///
/// The engine records the convergence curve, message counts and per-node
/// operation counters, and verifies that every completed node reconstructed
/// the source content bit for bit.
pub struct Engine {
    config: SimConfig,
    rng: SmallRng,
    natives: Vec<Payload>,
    source: Box<dyn Scheme>,
    nodes: Vec<Box<dyn Scheme>>,
    sampler: PeerSampler,
    completion_period: Vec<Option<usize>>,
    payloads_delivered: u64,
    transfers_aborted: u64,
    payloads_lost: u64,
    churn_events: u64,
    useful_deliveries: u64,
    content_verified: bool,
}

impl Engine {
    /// Builds an engine (source content, nodes, overlay) from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no nodes, `k = 0`).
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        assert!(config.nodes >= 2, "the evaluation needs at least two nodes");
        assert!(config.code_length >= 1, "the content must have at least one packet");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let natives: Vec<Payload> = (0..config.code_length)
            .map(|_| {
                let mut bytes = vec![0u8; config.payload_size];
                rng.fill(&mut bytes[..]);
                Payload::from_vec(bytes)
            })
            .collect();

        let source = Self::make_source(&config, &natives);
        let nodes: Vec<Box<dyn Scheme>> =
            (0..config.nodes).map(|_| Self::make_node(&config)).collect();
        let sampler = PeerSampler::new(config.nodes, config.view_size, &mut rng);

        Engine {
            completion_period: vec![None; config.nodes],
            config,
            rng,
            natives,
            source,
            nodes,
            sampler,
            payloads_delivered: 0,
            transfers_aborted: 0,
            payloads_lost: 0,
            churn_events: 0,
            useful_deliveries: 0,
            content_verified: true,
        }
    }

    fn make_source(config: &SimConfig, natives: &[Payload]) -> Box<dyn Scheme> {
        config.scheme_params().source_node(natives)
    }

    fn make_node(config: &SimConfig) -> Box<dyn Scheme> {
        config.scheme_params().empty_node()
    }

    /// The simulated configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the dissemination to completion (or `max_periods`) and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let mut convergence = TimeSeries::new(self.config.scheme.label());
        convergence.push(0.0, 0.0);
        let mut last_period = 0;
        for period in 1..=self.config.max_periods {
            last_period = period;
            self.step(period);
            let complete = self.completed_count();
            convergence.push(period as f64, 100.0 * complete as f64 / self.config.nodes as f64);
            if complete == self.config.nodes {
                break;
            }
        }
        self.finish(convergence, last_period)
    }

    /// Runs a single gossip period. Exposed for tests and custom harnesses
    /// that want to interleave measurements with the simulation.
    pub fn step(&mut self, period: usize) {
        self.sampler.shuffle_views(&mut self.rng);

        // Failure injection: crash-and-restart a random node (loses its state).
        if self.config.churn_rate > 0.0 && self.rng.gen_bool(self.config.churn_rate.min(1.0)) {
            let victim = self.rng.gen_range(0..self.config.nodes);
            self.nodes[victim] = Self::make_node(&self.config);
            self.completion_period[victim] = None;
            self.churn_events += 1;
        }

        // Source injection to uniformly random nodes.
        for _ in 0..self.config.source_rate {
            let target = self.rng.gen_range(0..self.config.nodes);
            if let Some(packet) = self.source.make_packet(&mut self.rng) {
                self.deliver_with_loss(&packet, target);
            }
        }

        // Node pushes, gated by the aggressiveness threshold.
        let threshold = self.config.recode_threshold();
        for sender in 0..self.config.nodes {
            if self.nodes[sender].useful_received() < threshold {
                continue;
            }
            for _ in 0..self.config.push_rate {
                let target = self.sampler.sample(sender, &mut self.rng);
                if target == sender {
                    continue;
                }
                // The sender builds its packet first (ending its borrow), then
                // the receiver is borrowed for the transfer.
                let packet = self.nodes[sender].make_packet(&mut self.rng);
                let Some(packet) = packet else { continue };
                self.deliver_with_loss(&packet, target);
            }
        }

        // Record completion times.
        for (i, node) in self.nodes.iter().enumerate() {
            if self.completion_period[i].is_none() && node.is_complete() {
                self.completion_period[i] = Some(period);
            }
        }
    }

    /// One transfer attempt towards `target`, going through the binary
    /// feedback channel and the (optional) lossy link.
    fn deliver_with_loss(
        &mut self,
        packet: &ltnc_gf2::EncodedPacket,
        target: usize,
    ) -> SendDecision {
        let receiver = self.nodes[target].as_mut();
        if self.config.feedback && !receiver.would_accept(packet) {
            self.transfers_aborted += 1;
            return SendDecision::Aborted;
        }
        self.payloads_delivered += 1;
        if self.config.loss_rate > 0.0 && self.rng.gen_bool(self.config.loss_rate.min(1.0)) {
            self.payloads_lost += 1;
            return SendDecision::Delivered;
        }
        if self.nodes[target].deliver(packet) {
            self.useful_deliveries += 1;
        }
        SendDecision::Delivered
    }

    fn completed_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_complete()).count()
    }

    fn finish(mut self, convergence: TimeSeries, last_period: usize) -> SimReport {
        // Trigger (and verify) the final decode on every completed node. This
        // is where RLNC pays its Gaussian elimination; LTNC and WC have
        // already paid during reception.
        let mut completed = 0;
        for node in &mut self.nodes {
            if node.is_complete() {
                completed += 1;
                match node.decoded_content() {
                    Some(content) if content == self.natives => {}
                    _ => self.content_verified = false,
                }
            }
        }

        let mut recoding = OpCounters::new();
        recoding.merge(&self.source.recoding_counters());
        let mut decoding = OpCounters::new();
        let mut packets_recoded = 0u64;
        for node in &self.nodes {
            recoding.merge(&node.recoding_counters());
            decoding.merge(&node.decoding_counters());
        }
        // Every delivered or aborted transfer corresponds to one recoded packet
        // (the sender built it before the header check).
        packets_recoded += self.payloads_delivered + self.transfers_aborted;

        let completion_times: Vec<f64> = self
            .completion_period
            .iter()
            .map(|p| p.unwrap_or(self.config.max_periods) as f64)
            .collect();
        let avg_time_to_complete =
            completion_times.iter().sum::<f64>() / completion_times.len().max(1) as f64;
        let completion_period =
            if completed == self.config.nodes { Some(last_period) } else { None };

        SimReport {
            scheme: self.config.scheme,
            config: self.config,
            completed_nodes: completed,
            completion_period,
            avg_time_to_complete,
            convergence,
            payloads_delivered: self.payloads_delivered,
            transfers_aborted: self.transfers_aborted,
            payloads_lost: self.payloads_lost,
            churn_events: self.churn_events,
            useful_deliveries: self.useful_deliveries,
            recoding_counters: recoding,
            decoding_counters: decoding,
            packets_recoded,
            content_verified: self.content_verified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeKind;

    fn quick(scheme: SchemeKind) -> SimConfig {
        let mut c = SimConfig::quick(scheme);
        c.nodes = 40;
        c.code_length = 24;
        c.max_periods = 6_000;
        c
    }

    #[test]
    fn ltnc_dissemination_completes_and_verifies() {
        let report = Engine::new(quick(SchemeKind::Ltnc)).run();
        assert_eq!(report.completed_nodes, 40);
        assert!(report.content_verified);
        assert!(report.completion_period.is_some());
        assert!(report.payloads_delivered > 0);
        assert!(report.useful_deliveries >= (40 * 24) as u64);
    }

    #[test]
    fn rlnc_dissemination_completes_and_verifies() {
        let report = Engine::new(quick(SchemeKind::Rlnc)).run();
        assert_eq!(report.completed_nodes, 40);
        assert!(report.content_verified);
        // RLNC's feedback check is exact: every delivered payload is useful.
        assert_eq!(report.payloads_delivered, report.useful_deliveries);
        assert!(report.overhead_percent() < 1.0);
    }

    #[test]
    fn wc_dissemination_completes_and_verifies() {
        let report = Engine::new(quick(SchemeKind::Wc)).run();
        assert_eq!(report.completed_nodes, 40);
        assert!(report.content_verified);
        assert_eq!(report.payloads_delivered, report.useful_deliveries);
    }

    #[test]
    fn convergence_curve_is_monotone_and_reaches_100() {
        let report = Engine::new(quick(SchemeKind::Ltnc)).run();
        let points = report.convergence.points();
        assert!(points.len() > 1);
        for w in points.windows(2) {
            assert!(w[1].1 >= w[0].1, "convergence must be non-decreasing");
        }
        assert_eq!(points.last().unwrap().1, 100.0);
    }

    #[test]
    fn coded_schemes_beat_wc_on_completion_time() {
        // The paper's headline dissemination result: both coded schemes
        // clearly outperform the unencoded epidemic near completion.
        let wc = Engine::new(quick(SchemeKind::Wc)).run();
        let ltnc = Engine::new(quick(SchemeKind::Ltnc)).run();
        let rlnc = Engine::new(quick(SchemeKind::Rlnc)).run();
        assert!(ltnc.avg_time_to_complete < wc.avg_time_to_complete);
        assert!(rlnc.avg_time_to_complete < wc.avg_time_to_complete);
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = Engine::new(quick(SchemeKind::Ltnc)).run();
        let b = Engine::new(quick(SchemeKind::Ltnc)).run();
        assert_eq!(a.payloads_delivered, b.payloads_delivered);
        assert_eq!(a.avg_time_to_complete, b.avg_time_to_complete);
        assert_eq!(a.completion_period, b.completion_period);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = quick(SchemeKind::Ltnc);
        c1.seed = 1;
        let mut c2 = quick(SchemeKind::Ltnc);
        c2.seed = 2;
        let a = Engine::new(c1).run();
        let b = Engine::new(c2).run();
        // Extremely unlikely to coincide exactly.
        assert!(
            a.payloads_delivered != b.payloads_delivered
                || a.avg_time_to_complete != b.avg_time_to_complete
        );
    }

    #[test]
    fn max_periods_caps_the_run() {
        let mut c = quick(SchemeKind::Wc);
        c.max_periods = 3;
        let report = Engine::new(c).run();
        assert!(report.completed_nodes < 40);
        assert!(report.completion_period.is_none());
        assert!(report.convergence.points().len() <= 4);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node_network() {
        let c = SimConfig { nodes: 1, ..SimConfig::default() };
        let _ = Engine::new(c);
    }

    #[test]
    fn lossy_links_slow_but_do_not_break_dissemination() {
        let clean = Engine::new(quick(SchemeKind::Ltnc)).run();
        let mut lossy_config = quick(SchemeKind::Ltnc);
        lossy_config.loss_rate = 0.3;
        let lossy = Engine::new(lossy_config).run();
        assert_eq!(lossy.completed_nodes, 40);
        assert!(lossy.content_verified);
        assert!(lossy.payloads_lost > 0);
        assert!(
            lossy.avg_time_to_complete > clean.avg_time_to_complete,
            "loss should slow completion ({} vs {})",
            lossy.avg_time_to_complete,
            clean.avg_time_to_complete
        );
    }

    #[test]
    fn churn_is_injected_and_survivable() {
        let mut c = quick(SchemeKind::Ltnc);
        c.churn_rate = 0.05;
        c.max_periods = 20_000;
        let report = Engine::new(c).run();
        assert!(report.churn_events > 0, "churn events should have been injected");
        assert!(report.content_verified);
        // Most nodes still finish despite crashes (restarted nodes may not).
        assert!(report.completed_nodes >= 35, "only {} completed", report.completed_nodes);
    }
}
