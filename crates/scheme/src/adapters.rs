use ltnc_core::LtncNode;
use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_metrics::OpCounters;
use ltnc_rlnc::{ReceiveOutcome as RlncOutcome, RlncNode};
use rand::RngCore;

/// Decision taken by the feedback channel for one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendDecision {
    /// The payload was transferred (the header check passed or feedback is off).
    Delivered,
    /// The receiver aborted the transfer after seeing the header.
    Aborted,
}

/// The per-node behaviour a dissemination driver drives.
///
/// One implementation exists per scheme of the paper's evaluation:
/// [`crate::WcNode`] (no coding), [`RlncSchemeNode`] and [`LtncSchemeNode`].
/// A driver — the round-based simulator or the UDP session layer — does not
/// know which coding scheme is running; it only pushes packets between
/// `Scheme` objects and collects their counters. `Send` is required so
/// session actors can own scheme nodes on their own threads.
pub trait Scheme: Send {
    /// Returns `true` once the node can reconstruct the full content.
    fn is_complete(&self) -> bool;

    /// Number of *useful* packets received so far (innovative packets for the
    /// coded schemes, distinct natives for WC). Drives the aggressiveness gate.
    fn useful_received(&self) -> usize;

    /// Header-only check used by the binary feedback channel: would this
    /// packet bring anything new? For LTNC the check is the (partial)
    /// redundancy detection of Algorithm 3, so it may return `true` for a
    /// packet that later turns out to be redundant — that is exactly the
    /// communication overhead the paper measures.
    fn would_accept(&self, packet: &EncodedPacket) -> bool;

    /// Delivers a packet (payload included). Returns `true` when the packet
    /// was useful to this node.
    fn deliver(&mut self, packet: &EncodedPacket) -> bool;

    /// Produces the next packet this node would push, or `None` when it has
    /// nothing to send yet.
    fn make_packet(&mut self, rng: &mut dyn RngCore) -> Option<EncodedPacket>;

    /// Reconstructs the content if complete (this is where RLNC pays its
    /// Gaussian elimination); `None` when the node is not complete.
    fn decoded_content(&mut self) -> Option<Vec<Payload>>;

    /// Cost ledger of the reception/decoding path.
    fn decoding_counters(&self) -> OpCounters;

    /// Cost ledger of the emission/recoding path.
    fn recoding_counters(&self) -> OpCounters;
}

/// RLNC node adapter: sparse random recoding, Gaussian-elimination decoding.
#[derive(Debug, Clone)]
pub struct RlncSchemeNode {
    node: RlncNode,
    useful: usize,
}

impl RlncSchemeNode {
    /// Creates an empty RLNC node.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        RlncSchemeNode { node: RlncNode::new(k, payload_size), useful: 0 }
    }

    /// Creates an RLNC node already holding the full content (the source).
    #[must_use]
    pub fn source(k: usize, payload_size: usize, natives: &[Payload]) -> Self {
        let mut node = RlncNode::new(k, payload_size);
        for (i, p) in natives.iter().enumerate() {
            node.receive(&EncodedPacket::native(k, i, p.clone()));
        }
        RlncSchemeNode { node, useful: k }
    }
}

impl Scheme for RlncSchemeNode {
    fn is_complete(&self) -> bool {
        self.node.is_complete()
    }

    fn useful_received(&self) -> usize {
        self.useful
    }

    fn would_accept(&self, packet: &EncodedPacket) -> bool {
        self.node.is_innovative(packet)
    }

    fn deliver(&mut self, packet: &EncodedPacket) -> bool {
        let innovative = self.node.receive(packet) == RlncOutcome::Innovative;
        if innovative {
            self.useful += 1;
        }
        innovative
    }

    fn make_packet(&mut self, rng: &mut dyn RngCore) -> Option<EncodedPacket> {
        self.node.recode(rng).ok()
    }

    fn decoded_content(&mut self) -> Option<Vec<Payload>> {
        self.node.decode().ok()
    }

    fn decoding_counters(&self) -> OpCounters {
        *self.node.decoding_counters()
    }

    fn recoding_counters(&self) -> OpCounters {
        *self.node.recoding_counters()
    }
}

/// LTNC node adapter: Robust-Soliton-preserving recoding, belief-propagation
/// decoding, Algorithm 3 redundancy detection as the feedback check.
#[derive(Debug, Clone)]
pub struct LtncSchemeNode {
    node: LtncNode,
    useful: usize,
}

impl LtncSchemeNode {
    /// Creates an empty LTNC node with the paper's default configuration.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        LtncSchemeNode { node: LtncNode::new(k, payload_size), useful: 0 }
    }

    /// Creates an LTNC node with a custom configuration (ablations).
    #[must_use]
    pub fn with_config(k: usize, payload_size: usize, config: ltnc_core::LtncConfig) -> Self {
        LtncSchemeNode { node: LtncNode::with_config(k, payload_size, config), useful: 0 }
    }

    /// Creates an LTNC node already holding the full content (the source).
    #[must_use]
    pub fn source(k: usize, payload_size: usize, natives: &[Payload]) -> Self {
        LtncSchemeNode {
            node: LtncNode::with_all_natives(
                k,
                payload_size,
                natives,
                ltnc_core::LtncConfig::default(),
            ),
            useful: k,
        }
    }

    /// The wrapped LTNC node (read access for statistics reporting).
    #[must_use]
    pub fn inner(&self) -> &LtncNode {
        &self.node
    }
}

impl Scheme for LtncSchemeNode {
    fn is_complete(&self) -> bool {
        self.node.is_complete()
    }

    fn useful_received(&self) -> usize {
        self.useful
    }

    fn would_accept(&self, packet: &EncodedPacket) -> bool {
        !self.node.is_redundant(packet.vector())
    }

    fn deliver(&mut self, packet: &EncodedPacket) -> bool {
        let useful = self.node.receive(packet).is_useful();
        if useful {
            self.useful += 1;
        }
        useful
    }

    fn make_packet(&mut self, rng: &mut dyn RngCore) -> Option<EncodedPacket> {
        self.node.recode(rng)
    }

    fn decoded_content(&mut self) -> Option<Vec<Payload>> {
        self.node.decode().ok()
    }

    fn decoding_counters(&self) -> OpCounters {
        *self.node.decoding_counters()
    }

    fn recoding_counters(&self) -> OpCounters {
        *self.node.recoding_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 41 + j + 1) as u8).collect()))
            .collect()
    }

    fn drive<S: Scheme>(source: &mut S, sink: &mut S, budget: usize) -> usize {
        let mut rng = SmallRng::seed_from_u64(33);
        let mut delivered = 0;
        for _ in 0..budget {
            if sink.is_complete() {
                break;
            }
            if let Some(p) = source.make_packet(&mut rng) {
                if sink.would_accept(&p) {
                    sink.deliver(&p);
                    delivered += 1;
                }
            }
        }
        delivered
    }

    #[test]
    fn rlnc_scheme_node_completes_and_decodes() {
        let k = 24;
        let m = 4;
        let nat = natives(k, m);
        let mut source = RlncSchemeNode::source(k, m, &nat);
        assert!(source.is_complete());
        assert_eq!(source.useful_received(), k);
        let mut sink = RlncSchemeNode::new(k, m);
        drive(&mut source, &mut sink, 50 * k);
        assert!(sink.is_complete());
        assert_eq!(sink.decoded_content().unwrap(), nat);
        assert!(sink.decoding_counters().total_ops() > 0);
        assert!(source.recoding_counters().total_ops() > 0);
    }

    #[test]
    fn ltnc_scheme_node_completes_and_decodes() {
        let k = 24;
        let m = 4;
        let nat = natives(k, m);
        let mut source = LtncSchemeNode::source(k, m, &nat);
        assert!(source.is_complete());
        let mut sink = LtncSchemeNode::new(k, m);
        drive(&mut source, &mut sink, 100 * k);
        assert!(sink.is_complete());
        assert_eq!(sink.decoded_content().unwrap(), nat);
        assert!(sink.decoding_counters().total_ops() > 0);
    }

    #[test]
    fn incomplete_nodes_return_no_content() {
        let mut n = LtncSchemeNode::new(8, 2);
        assert!(n.decoded_content().is_none());
        let mut r = RlncSchemeNode::new(8, 2);
        assert!(r.decoded_content().is_none());
    }

    #[test]
    fn empty_nodes_make_no_packets() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut n = LtncSchemeNode::new(8, 2);
        assert!(n.make_packet(&mut rng).is_none());
        let mut r = RlncSchemeNode::new(8, 2);
        assert!(r.make_packet(&mut rng).is_none());
    }

    #[test]
    fn rlnc_feedback_check_is_exact() {
        // RLNC's innovation check never lets a redundant payload through, so
        // its communication overhead is zero (as stated in the paper).
        let k = 16;
        let m = 2;
        let nat = natives(k, m);
        let mut source = RlncSchemeNode::source(k, m, &nat);
        let mut sink = RlncSchemeNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut wasted = 0;
        while !sink.is_complete() {
            let p = source.make_packet(&mut rng).unwrap();
            if sink.would_accept(&p) && !sink.deliver(&p) {
                wasted += 1;
            }
        }
        assert_eq!(wasted, 0);
    }

    #[test]
    fn ltnc_useful_counter_tracks_progress() {
        let k = 16;
        let m = 2;
        let nat = natives(k, m);
        let mut node = LtncSchemeNode::new(k, m);
        assert_eq!(node.useful_received(), 0);
        node.deliver(&EncodedPacket::native(k, 0, nat[0].clone()));
        assert_eq!(node.useful_received(), 1);
        // Duplicate is not useful.
        node.deliver(&EncodedPacket::native(k, 0, nat[0].clone()));
        assert_eq!(node.useful_received(), 1);
        assert_eq!(node.inner().decoded_count(), 1);
    }
}
