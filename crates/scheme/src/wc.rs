use std::collections::VecDeque;

use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_metrics::{OpCounters, OpKind};
use rand::RngCore;

use crate::Scheme;

/// The "Without Coding" (WC) reference scheme of the paper.
///
/// Nodes exchange native packets only. A node buffers up to `b` innovative
/// packets (oldest evicted first) and, each gossip period, pushes the buffered
/// packet it has forwarded the least, as long as that packet has not yet been
/// forwarded `f` times (`f` must exceed `ln N` for the epidemic to reach
/// everyone with high probability). Detecting a non-innovative packet is a
/// simple membership test, so WC has no communication overhead when the
/// feedback channel is available — its weakness is the coupon-collector
/// behaviour near completion, which the coded schemes avoid.
#[derive(Debug, Clone)]
pub struct WcNode {
    k: usize,
    payload_size: usize,
    fanout: usize,
    buffer_size: usize,
    natives: Vec<Option<Payload>>,
    decoded: usize,
    /// Buffered native indices with their forward counts, oldest first.
    buffer: VecDeque<(usize, usize)>,
    decode_counters: OpCounters,
    recode_counters: OpCounters,
}

impl WcNode {
    /// Creates an empty WC node.
    #[must_use]
    pub fn new(k: usize, payload_size: usize, fanout: usize, buffer_size: usize) -> Self {
        WcNode {
            k,
            payload_size,
            fanout: fanout.max(1),
            buffer_size: buffer_size.max(1),
            natives: vec![None; k],
            decoded: 0,
            buffer: VecDeque::new(),
            decode_counters: OpCounters::new(),
            recode_counters: OpCounters::new(),
        }
    }

    /// Creates a WC node already holding the full content (the source). The
    /// source keeps every native eligible for forwarding indefinitely.
    #[must_use]
    pub fn source(k: usize, payload_size: usize, fanout: usize, natives: &[Payload]) -> Self {
        let mut node = WcNode::new(k, payload_size, fanout, k.max(1));
        for (i, p) in natives.iter().enumerate() {
            node.store(i, p.clone());
        }
        node
    }

    /// Number of distinct natives held.
    #[must_use]
    pub fn natives_held(&self) -> usize {
        self.decoded
    }

    fn store(&mut self, index: usize, payload: Payload) {
        if self.natives[index].is_none() {
            self.natives[index] = Some(payload);
            self.decoded += 1;
            if self.buffer.len() == self.buffer_size {
                self.buffer.pop_front();
            }
            self.buffer.push_back((index, 0));
            self.decode_counters.incr(OpKind::IndexUpdate);
        }
    }
}

impl Scheme for WcNode {
    fn is_complete(&self) -> bool {
        self.decoded == self.k
    }

    fn useful_received(&self) -> usize {
        self.decoded
    }

    fn would_accept(&self, packet: &EncodedPacket) -> bool {
        match packet.vector().first_one() {
            Some(x) if packet.degree() == 1 => self.natives[x].is_none(),
            _ => false,
        }
    }

    fn deliver(&mut self, packet: &EncodedPacket) -> bool {
        assert_eq!(packet.code_length(), self.k, "code length mismatch");
        assert_eq!(packet.payload_size(), self.payload_size, "payload size mismatch");
        if packet.degree() != 1 {
            return false;
        }
        let x = packet.vector().first_one().expect("degree 1");
        let was_new = self.natives[x].is_none();
        if was_new {
            self.store(x, packet.payload().clone());
        }
        was_new
    }

    fn make_packet(&mut self, _rng: &mut dyn RngCore) -> Option<EncodedPacket> {
        // Pick the buffered packet forwarded the least, preferring those that
        // have not yet reached the fanout quota.
        let candidate = self
            .buffer
            .iter()
            .enumerate()
            .filter(|(_, &(_, sent))| sent < self.fanout)
            .min_by_key(|(_, &(_, sent))| sent)
            .or_else(|| self.buffer.iter().enumerate().min_by_key(|(_, &(_, sent))| sent))
            .map(|(pos, _)| pos)?;
        let (index, sent) = self.buffer[candidate];
        self.buffer[candidate] = (index, sent + 1);
        self.recode_counters.incr(OpKind::IndexUpdate);
        let payload = self.natives[index].as_ref().expect("buffered natives are held").clone();
        Some(EncodedPacket::native(self.k, index, payload))
    }

    fn decoded_content(&mut self) -> Option<Vec<Payload>> {
        if !self.is_complete() {
            return None;
        }
        Some(self.natives.iter().map(|p| p.clone().expect("complete")).collect())
    }

    fn decoding_counters(&self) -> OpCounters {
        self.decode_counters
    }

    fn recoding_counters(&self) -> OpCounters {
        self.recode_counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 47 + j + 1) as u8).collect()))
            .collect()
    }

    #[test]
    fn empty_node_state() {
        let node = WcNode::new(8, 2, 4, 4);
        assert!(!node.is_complete());
        assert_eq!(node.useful_received(), 0);
        assert_eq!(node.natives_held(), 0);
    }

    #[test]
    fn source_holds_everything() {
        let k = 8;
        let nat = natives(k, 2);
        let mut source = WcNode::source(k, 2, 4, &nat);
        assert!(source.is_complete());
        assert_eq!(source.decoded_content().unwrap(), nat);
    }

    #[test]
    fn deliver_accepts_new_natives_only() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 4, 4);
        let p = EncodedPacket::native(k, 3, nat[3].clone());
        assert!(node.would_accept(&p));
        assert!(node.deliver(&p));
        assert!(!node.would_accept(&p));
        assert!(!node.deliver(&p));
        assert_eq!(node.useful_received(), 1);
    }

    #[test]
    fn encoded_packets_are_rejected() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 4, 4);
        let mut combined = EncodedPacket::native(k, 0, nat[0].clone());
        combined.xor_assign(&EncodedPacket::native(k, 1, nat[1].clone()));
        assert!(!node.would_accept(&combined));
        assert!(!node.deliver(&combined));
    }

    #[test]
    fn make_packet_prefers_least_forwarded() {
        let k = 4;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 2, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        node.deliver(&EncodedPacket::native(k, 0, nat[0].clone()));
        node.deliver(&EncodedPacket::native(k, 1, nat[1].clone()));
        // First two sends cover both buffered natives (least-forwarded first).
        let a = node.make_packet(&mut rng).unwrap();
        let b = node.make_packet(&mut rng).unwrap();
        let mut sent: Vec<usize> =
            vec![a.vector().first_one().unwrap(), b.vector().first_one().unwrap()];
        sent.sort_unstable();
        assert_eq!(sent, vec![0, 1]);
    }

    #[test]
    fn fanout_quota_is_exhausted_then_recycled() {
        let k = 4;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 2, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        node.deliver(&EncodedPacket::native(k, 0, nat[0].clone()));
        // Fanout 2: the node keeps forwarding its only packet even past the
        // quota (the quota only prioritises fresher packets).
        for _ in 0..5 {
            let p = node.make_packet(&mut rng).unwrap();
            assert_eq!(p.vector().first_one(), Some(0));
        }
    }

    #[test]
    fn buffer_evicts_oldest_when_full() {
        let k = 8;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 4, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        for (i, native) in nat.iter().enumerate().take(4) {
            node.deliver(&EncodedPacket::native(k, i, native.clone()));
        }
        // Buffer holds only the two most recent natives (2 and 3); the node
        // still *stores* all four for completeness purposes.
        assert_eq!(node.natives_held(), 4);
        let mut forwarded = std::collections::HashSet::new();
        for _ in 0..10 {
            forwarded.insert(node.make_packet(&mut rng).unwrap().vector().first_one().unwrap());
        }
        assert!(forwarded.contains(&2) && forwarded.contains(&3));
        assert!(!forwarded.contains(&0) && !forwarded.contains(&1));
    }

    #[test]
    fn empty_buffer_makes_no_packet() {
        let mut node = WcNode::new(8, 2, 4, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(node.make_packet(&mut rng).is_none());
    }

    #[test]
    fn incomplete_node_has_no_content() {
        let k = 4;
        let nat = natives(k, 2);
        let mut node = WcNode::new(k, 2, 4, 4);
        node.deliver(&EncodedPacket::native(k, 0, nat[0].clone()));
        assert!(node.decoded_content().is_none());
    }
}
