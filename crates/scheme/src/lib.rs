//! The pluggable per-node coding behaviour shared by every driver in the
//! workspace.
//!
//! Historically this lived inside `ltnc-sim`, but the [`Scheme`] trait is
//! not about simulation: it is the contract between *any* dissemination
//! driver (the round-based simulator, the UDP session layer of `ltnc-net`,
//! future transports) and the three coding schemes of the paper's
//! evaluation:
//!
//! * [`WcNode`] — "Without Coding", native packets only;
//! * [`RlncSchemeNode`] — sparse RLNC with Gaussian decoding;
//! * [`LtncSchemeNode`] — LT network codes (the paper's contribution).
//!
//! [`SchemeKind`] names a scheme, and [`SchemeParams`] builds empty or
//! source nodes for one without dragging in a whole simulator
//! configuration — exactly what a transport session needs when it opens a
//! generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
mod kind;
mod wc;

pub use adapters::{LtncSchemeNode, RlncSchemeNode, Scheme, SendDecision};
pub use kind::{SchemeKind, SchemeParams};
pub use wc::WcNode;
