use ltnc_gf2::Payload;
use serde::{Deserialize, Serialize};

use crate::{LtncSchemeNode, RlncSchemeNode, Scheme, WcNode};

/// Which dissemination scheme the nodes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Without Coding: nodes forward native packets only (the paper's "WC").
    Wc,
    /// Random Linear Network Coding with sparse recoding and Gaussian decoding.
    Rlnc,
    /// LT Network Codes (the paper's contribution).
    Ltnc,
}

impl SchemeKind {
    /// All schemes, in the order the paper's figures list them.
    pub const ALL: [SchemeKind; 3] = [SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc];

    /// Display label used in figure output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Wc => "WC",
            SchemeKind::Rlnc => "RLNC",
            SchemeKind::Ltnc => "LTNC",
        }
    }

    /// Parses the lowercase command-line spelling (`wc`, `rlnc`, `ltnc`).
    #[must_use]
    pub fn parse(s: &str) -> Option<SchemeKind> {
        match s.to_ascii_lowercase().as_str() {
            "wc" => Some(SchemeKind::Wc),
            "rlnc" => Some(SchemeKind::Rlnc),
            "ltnc" => Some(SchemeKind::Ltnc),
            _ => None,
        }
    }

    /// Stable one-byte identifier used in wire envelopes.
    #[must_use]
    pub fn wire_id(self) -> u8 {
        match self {
            SchemeKind::Wc => 0,
            SchemeKind::Rlnc => 1,
            SchemeKind::Ltnc => 2,
        }
    }

    /// Inverse of [`SchemeKind::wire_id`].
    #[must_use]
    pub fn from_wire_id(id: u8) -> Option<SchemeKind> {
        match id {
            0 => Some(SchemeKind::Wc),
            1 => Some(SchemeKind::Rlnc),
            2 => Some(SchemeKind::Ltnc),
            _ => None,
        }
    }
}

/// Everything needed to build [`Scheme`] nodes for one content: the scheme,
/// the code dimensions and the WC-specific knobs.
///
/// This is the scheme-construction subset of the simulator's `SimConfig`,
/// extracted so that non-simulator drivers (the UDP session layer, tests,
/// examples) can instantiate nodes directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeParams {
    /// The coding scheme to run.
    pub kind: SchemeKind,
    /// Number of native packets `k` the content is split into.
    pub code_length: usize,
    /// Payload size `m` in bytes.
    pub payload_size: usize,
    /// Fan-out of the WC scheme (`f` in the paper); ignored by the coded
    /// schemes.
    pub wc_fanout: usize,
    /// Buffer size of the WC scheme (`b` in the paper); ignored by the
    /// coded schemes.
    pub wc_buffer: usize,
}

impl SchemeParams {
    /// Parameters with the paper's small-system WC defaults (`f = 8`,
    /// `b = 32`).
    #[must_use]
    pub fn new(kind: SchemeKind, code_length: usize, payload_size: usize) -> Self {
        SchemeParams { kind, code_length, payload_size, wc_fanout: 8, wc_buffer: 32 }
    }

    /// Builds an empty node (a receiver/relay that has seen nothing yet).
    ///
    /// # Panics
    ///
    /// Panics when `code_length == 0`.
    #[must_use]
    pub fn empty_node(&self) -> Box<dyn Scheme> {
        assert!(self.code_length >= 1, "the content must have at least one packet");
        match self.kind {
            SchemeKind::Wc => Box::new(WcNode::new(
                self.code_length,
                self.payload_size,
                self.wc_fanout,
                self.wc_buffer,
            )),
            SchemeKind::Rlnc => Box::new(RlncSchemeNode::new(self.code_length, self.payload_size)),
            SchemeKind::Ltnc => Box::new(LtncSchemeNode::new(self.code_length, self.payload_size)),
        }
    }

    /// Builds a source node holding the full content.
    ///
    /// # Panics
    ///
    /// Panics when `natives.len() != code_length`.
    #[must_use]
    pub fn source_node(&self, natives: &[Payload]) -> Box<dyn Scheme> {
        assert_eq!(
            natives.len(),
            self.code_length,
            "source content must have exactly k native packets"
        );
        match self.kind {
            SchemeKind::Wc => Box::new(WcNode::source(
                self.code_length,
                self.payload_size,
                self.wc_fanout,
                natives,
            )),
            SchemeKind::Rlnc => {
                Box::new(RlncSchemeNode::source(self.code_length, self.payload_size, natives))
            }
            SchemeKind::Ltnc => {
                Box::new(LtncSchemeNode::source(self.code_length, self.payload_size, natives))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i * 17 + j) as u8).collect())).collect()
    }

    #[test]
    fn parse_and_labels_roundtrip() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(&kind.label().to_lowercase()), Some(kind));
            assert_eq!(SchemeKind::from_wire_id(kind.wire_id()), Some(kind));
        }
        assert_eq!(SchemeKind::parse("nope"), None);
        assert_eq!(SchemeKind::from_wire_id(9), None);
    }

    #[test]
    fn params_build_working_nodes_for_every_scheme() {
        let k = 12;
        let m = 4;
        let content = natives(k, m);
        let mut rng = SmallRng::seed_from_u64(5);
        for kind in SchemeKind::ALL {
            let params = SchemeParams::new(kind, k, m);
            let mut source = params.source_node(&content);
            assert!(source.is_complete(), "{kind:?} source must start complete");
            let mut sink = params.empty_node();
            assert!(!sink.is_complete());
            let mut budget = 20_000;
            while !sink.is_complete() && budget > 0 {
                budget -= 1;
                if let Some(p) = source.make_packet(&mut rng) {
                    sink.deliver(&p);
                }
            }
            assert!(sink.is_complete(), "{kind:?} sink should complete");
            assert_eq!(sink.decoded_content().unwrap(), content, "{kind:?} content mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "exactly k native packets")]
    fn source_node_rejects_wrong_content_length() {
        let params = SchemeParams::new(SchemeKind::Ltnc, 8, 2);
        let _ = params.source_node(&natives(4, 2));
    }
}
