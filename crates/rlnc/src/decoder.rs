use ltnc_gf2::{EncodedPacket, Gf2Solver, Payload};
use ltnc_metrics::{OpCounters, OpKind};

use crate::RlncError;

/// Incremental Gaussian-elimination decoder over GF(2).
///
/// Received code vectors are reduced against the current row-echelon form as
/// they arrive (the partial Gaussian reduction the paper's RLNC baseline uses
/// to drop non-innovative packets immediately). Payloads of innovative packets
/// are buffered; once the matrix reaches full rank, [`GaussianDecoder::decode`]
/// back-substitutes and reconstructs every native payload.
///
/// Costs are recorded in an [`OpCounters`]: [`OpKind::RowReduction`] for every
/// row XOR on the code matrix (control plane) and [`OpKind::PayloadXor`] for
/// every `m`-byte XOR during payload recovery (data plane).
#[derive(Debug, Clone)]
pub struct GaussianDecoder {
    k: usize,
    payload_size: usize,
    solver: Gf2Solver,
    payloads: Vec<Payload>,
    decoded: Option<Vec<Payload>>,
    received: u64,
    redundant: u64,
    counters: OpCounters,
}

impl GaussianDecoder {
    /// Creates a decoder for `k` native packets of `payload_size` bytes each.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        GaussianDecoder {
            k,
            payload_size,
            solver: Gf2Solver::new(k, k),
            payloads: Vec::with_capacity(k),
            decoded: None,
            received: 0,
            redundant: 0,
            counters: OpCounters::new(),
        }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// Current rank of the code matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.solver.rank()
    }

    /// Returns `true` once `k` innovative packets have been received.
    #[must_use]
    pub fn is_full_rank(&self) -> bool {
        self.solver.is_full_rank()
    }

    /// Number of packets handed to [`GaussianDecoder::insert`].
    #[must_use]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Number of received packets rejected as non-innovative.
    #[must_use]
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// The operation counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Returns `true` when the packet would increase the rank of the code
    /// matrix. This is the check a receiver runs on the code vector alone
    /// (before the payload is transferred) when a feedback channel is
    /// available.
    #[must_use]
    pub fn is_innovative(&self, packet: &EncodedPacket) -> bool {
        packet.code_length() == self.k && self.solver.is_innovative(packet.vector())
    }

    /// Inserts a packet. Returns `true` when it was innovative (and stored).
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::PacketMismatch`] when the code length or payload
    /// size does not match.
    pub fn insert(&mut self, packet: &EncodedPacket) -> Result<bool, RlncError> {
        if packet.code_length() != self.k {
            return Err(RlncError::PacketMismatch {
                expected: self.k,
                found: packet.code_length(),
            });
        }
        if packet.payload_size() != self.payload_size {
            return Err(RlncError::PacketMismatch {
                expected: self.payload_size,
                found: packet.payload_size(),
            });
        }
        self.received += 1;
        // Single reduction against the echelon form: the innovation check IS
        // the insertion. The row ops spent reducing are charged whether or not
        // the packet is kept — that is exactly the cost of the partial
        // Gaussian reduction.
        let ops_before = self.solver.row_ops();
        let stored = self.solver.insert_if_innovative(packet.vector());
        self.counters.add(OpKind::RowReduction, self.solver.row_ops() - ops_before);
        let Some(id) = stored else {
            self.redundant += 1;
            return Ok(false);
        };
        debug_assert_eq!(id, self.payloads.len(), "solver ids align with payload buffer");
        self.payloads.push(packet.payload().clone());
        self.decoded = None;
        Ok(true)
    }

    /// Recovers every native payload by back-substitution.
    ///
    /// The result is cached: calling `decode` again returns a clone of the
    /// cached vector without re-doing the elimination.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::NotFullRank`] when fewer than `k` innovative
    /// packets have been received.
    pub fn decode(&mut self) -> Result<Vec<Payload>, RlncError> {
        if let Some(cached) = &self.decoded {
            return Ok(cached.clone());
        }
        if !self.solver.is_full_rank() {
            return Err(RlncError::NotFullRank { rank: self.solver.rank(), needed: self.k });
        }
        let ops_before = self.solver.row_ops();
        let recipes = self.solver.solve().expect("full-rank system must be solvable");
        self.counters.add(OpKind::RowReduction, self.solver.row_ops() - ops_before);

        let mut natives = Vec::with_capacity(self.k);
        for recipe in &recipes {
            let mut acc = Payload::zero(self.payload_size);
            for row_id in recipe.iter_ones() {
                acc.xor_assign(&self.payloads[row_id]);
                self.counters.incr(OpKind::PayloadXor);
            }
            natives.push(acc);
        }
        self.decoded = Some(natives.clone());
        Ok(natives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::CodeVector;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k)
            .map(|i| Payload::from_vec((0..m).map(|j| (i * 37 + j * 11 + 3) as u8).collect()))
            .collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    #[test]
    fn rejects_mismatched_packets() {
        let mut dec = GaussianDecoder::new(4, 2);
        let nat = natives(5, 2);
        assert_eq!(
            dec.insert(&packet(5, &[0], &nat)).unwrap_err(),
            RlncError::PacketMismatch { expected: 4, found: 5 }
        );
        let nat4 = natives(4, 3);
        assert_eq!(
            dec.insert(&packet(4, &[0], &nat4)).unwrap_err(),
            RlncError::PacketMismatch { expected: 2, found: 3 }
        );
    }

    #[test]
    fn innovative_packets_increase_rank() {
        let k = 4;
        let nat = natives(k, 2);
        let mut dec = GaussianDecoder::new(k, 2);
        assert!(dec.insert(&packet(k, &[0, 1], &nat)).unwrap());
        assert!(dec.insert(&packet(k, &[1, 2], &nat)).unwrap());
        assert_eq!(dec.rank(), 2);
        assert!(!dec.is_full_rank());
    }

    #[test]
    fn non_innovative_packets_are_rejected_and_counted() {
        let k = 4;
        let nat = natives(k, 2);
        let mut dec = GaussianDecoder::new(k, 2);
        dec.insert(&packet(k, &[0, 1], &nat)).unwrap();
        dec.insert(&packet(k, &[1, 2], &nat)).unwrap();
        assert!(!dec.insert(&packet(k, &[0, 2], &nat)).unwrap());
        assert_eq!(dec.redundant_count(), 1);
        assert_eq!(dec.rank(), 2);
        assert!(!dec.is_innovative(&packet(k, &[0, 2], &nat)));
        assert!(dec.is_innovative(&packet(k, &[3], &nat)));
    }

    #[test]
    fn zero_packet_is_never_innovative() {
        let k = 4;
        let mut dec = GaussianDecoder::new(k, 2);
        let zero = EncodedPacket::new(CodeVector::zero(k), Payload::zero(2));
        assert!(!dec.is_innovative(&zero));
        assert!(!dec.insert(&zero).unwrap());
    }

    #[test]
    fn decode_before_full_rank_fails() {
        let k = 3;
        let nat = natives(k, 2);
        let mut dec = GaussianDecoder::new(k, 2);
        dec.insert(&packet(k, &[0], &nat)).unwrap();
        assert_eq!(dec.decode().unwrap_err(), RlncError::NotFullRank { rank: 1, needed: 3 });
    }

    #[test]
    fn decode_recovers_natives_from_unit_packets() {
        let k = 5;
        let nat = natives(k, 4);
        let mut dec = GaussianDecoder::new(k, 4);
        for i in 0..k {
            dec.insert(&packet(k, &[i], &nat)).unwrap();
        }
        assert_eq!(dec.decode().unwrap(), nat);
    }

    #[test]
    fn decode_recovers_natives_from_combined_packets() {
        let k = 4;
        let nat = natives(k, 8);
        let mut dec = GaussianDecoder::new(k, 8);
        dec.insert(&packet(k, &[0, 1], &nat)).unwrap();
        dec.insert(&packet(k, &[1, 2], &nat)).unwrap();
        dec.insert(&packet(k, &[2, 3], &nat)).unwrap();
        dec.insert(&packet(k, &[3], &nat)).unwrap();
        assert!(dec.is_full_rank());
        assert_eq!(dec.decode().unwrap(), nat);
    }

    #[test]
    fn decode_is_cached() {
        let k = 3;
        let nat = natives(k, 2);
        let mut dec = GaussianDecoder::new(k, 2);
        for i in 0..k {
            dec.insert(&packet(k, &[i], &nat)).unwrap();
        }
        let first = dec.decode().unwrap();
        let ops_after_first = dec.counters().total_ops();
        let second = dec.decode().unwrap();
        assert_eq!(first, second);
        assert_eq!(dec.counters().total_ops(), ops_after_first);
    }

    #[test]
    fn counters_record_row_and_payload_work() {
        let k = 8;
        let nat = natives(k, 16);
        let mut dec = GaussianDecoder::new(k, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        while !dec.is_full_rank() {
            let indices: Vec<usize> = (0..k).filter(|_| rng.gen_bool(0.5)).collect();
            if indices.is_empty() {
                continue;
            }
            dec.insert(&packet(k, &indices, &nat)).unwrap();
        }
        dec.decode().unwrap();
        assert!(dec.counters().get(OpKind::RowReduction) > 0);
        assert!(dec.counters().get(OpKind::PayloadXor) > 0);
        assert!(dec.counters().data_ops() > 0);
        assert!(dec.counters().control_ops() > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random dense packets decode to exactly the original natives once
        /// full rank is reached, regardless of the arrival order.
        #[test]
        fn prop_random_packets_decode_correctly(seed in any::<u64>(), k in 2usize..24) {
            let m = 4;
            let nat = natives(k, m);
            let mut dec = GaussianDecoder::new(k, m);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut attempts = 0;
            while !dec.is_full_rank() {
                attempts += 1;
                prop_assert!(attempts < 50 * k, "did not reach full rank");
                let indices: Vec<usize> = (0..k).filter(|_| rng.gen_bool(0.5)).collect();
                if indices.is_empty() {
                    continue;
                }
                dec.insert(&packet(k, &indices, &nat)).unwrap();
            }
            prop_assert_eq!(dec.decode().unwrap(), nat);
        }
    }
}
