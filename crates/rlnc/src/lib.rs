//! Random Linear Network Coding (RLNC) — the paper's baseline scheme.
//!
//! RLNC nodes recode by XOR-ing a *random* subset of the encoded packets they
//! hold (bounded by the sparsity parameter `ln k + 20`, the setting the paper
//! cites as optimal for sparse linear network codes) and decode by Gaussian
//! elimination over GF(2), which costs `O(k²)` row operations on the code
//! matrix plus `O(m·k²)` payload work — the complexity LTNC is designed to
//! avoid.
//!
//! The crate exposes:
//!
//! * [`GaussianDecoder`] — incremental Gaussian elimination with an
//!   innovation check on reception (the "partial Gaussian reduction" the
//!   paper mentions) and payload recovery at full rank;
//! * [`SparseRecoder`] — the random recoding rule;
//! * [`RlncNode`] — the per-node state used by the dissemination simulator,
//!   bundling both and accounting costs into [`ltnc_metrics::OpCounters`].
//!
//! # Example
//!
//! ```
//! use ltnc_rlnc::RlncNode;
//! use ltnc_gf2::{EncodedPacket, Payload};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let k = 16;
//! let m = 8;
//! let natives: Vec<Payload> = (0..k).map(|i| Payload::from_vec(vec![i as u8; m])).collect();
//! let mut rng = SmallRng::seed_from_u64(1);
//!
//! // A "source" node that holds everything and recodes.
//! let mut source = RlncNode::new(k, m);
//! for (i, p) in natives.iter().enumerate() {
//!     source.receive(&EncodedPacket::native(k, i, p.clone()));
//! }
//!
//! // A receiver that decodes from recoded packets only.
//! let mut sink = RlncNode::new(k, m);
//! while !sink.is_complete() {
//!     let packet = source.recode(&mut rng).unwrap();
//!     sink.receive(&packet);
//! }
//! assert_eq!(sink.decode().unwrap(), natives);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decoder;
mod error;
mod node;
mod recoder;

pub use decoder::GaussianDecoder;
pub use error::RlncError;
pub use node::{ReceiveOutcome, RlncNode};
pub use recoder::{sparsity_for, SparseRecoder};
