use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_metrics::{OpCounters, OpKind};
use rand::seq::index::sample as sample_indices;
use rand::Rng;

use crate::RlncError;

/// The sparsity bound `⌈ln k⌉ + 20` used by the paper's RLNC baseline.
///
/// "The number of encoded packets involved in the recoding operation is
/// bounded by a given parameter, namely the sparsity of the codes, set to
/// ln k + 20" (§IV-A). Limiting the combination size keeps the per-packet
/// recoding cost `O(m·(ln k + 20))` instead of `O(m·k)` without hurting the
/// dissemination performance.
#[must_use]
pub fn sparsity_for(code_length: usize) -> usize {
    (code_length.max(1) as f64).ln().ceil() as usize + 20
}

/// The RLNC recoding rule: XOR a random subset of the held packets.
///
/// The recoder owns the buffer of received innovative packets (the simulator's
/// [`crate::RlncNode`] feeds it) and produces fresh encoded packets by
/// combining `min(sparsity, buffer size)` of them chosen uniformly at random.
#[derive(Debug, Clone)]
pub struct SparseRecoder {
    k: usize,
    payload_size: usize,
    sparsity: usize,
    buffer: Vec<EncodedPacket>,
    counters: OpCounters,
}

impl SparseRecoder {
    /// Creates a recoder with the paper's default sparsity `ln k + 20`.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        Self::with_sparsity(k, payload_size, sparsity_for(k))
    }

    /// Creates a recoder with an explicit sparsity bound (≥ 1).
    #[must_use]
    pub fn with_sparsity(k: usize, payload_size: usize, sparsity: usize) -> Self {
        SparseRecoder {
            k,
            payload_size,
            sparsity: sparsity.max(1),
            buffer: Vec::new(),
            counters: OpCounters::new(),
        }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// The sparsity bound in use.
    #[must_use]
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// Number of packets available for recoding.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The operation counters accumulated by recoding.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Adds a packet to the recoding buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::PacketMismatch`] when the code length or payload
    /// size does not match.
    pub fn push(&mut self, packet: EncodedPacket) -> Result<(), RlncError> {
        if packet.code_length() != self.k {
            return Err(RlncError::PacketMismatch {
                expected: self.k,
                found: packet.code_length(),
            });
        }
        if packet.payload_size() != self.payload_size {
            return Err(RlncError::PacketMismatch {
                expected: self.payload_size,
                found: packet.payload_size(),
            });
        }
        self.buffer.push(packet);
        Ok(())
    }

    /// Produces a fresh encoded packet as a random GF(2) combination of the
    /// buffered packets: at most `sparsity` candidate packets are drawn
    /// uniformly, and each is included with an (independent) random 0/1
    /// coefficient — the sparse random linear recoding of the paper.
    ///
    /// The combination may occasionally collapse to the zero vector (all
    /// coefficients zero, or the selected packets cancel out); the recoder
    /// then retries with fresh randomness a few times and finally falls back
    /// to forwarding one buffered packet, mirroring the small non-innovation
    /// probability the paper attributes to random linear codes.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::NothingToRecode`] when the buffer is empty.
    pub fn recode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<EncodedPacket, RlncError> {
        if self.buffer.is_empty() {
            return Err(RlncError::NothingToRecode);
        }
        const MAX_RETRIES: usize = 4;
        let candidates = self.sparsity.min(self.buffer.len());
        for _ in 0..MAX_RETRIES {
            let chosen = sample_indices(rng, self.buffer.len(), candidates);
            // Draw the random GF(2) coefficients first (same RNG order as the
            // one-at-a-time loop), then fold the selected packets batched.
            let selected: Vec<usize> = chosen.iter().filter(|_| rng.gen_bool(0.5)).collect();
            let Some((&first, rest)) = selected.split_first() else {
                continue;
            };
            let mut vector = self.buffer[first].vector().clone();
            for &i in rest {
                vector.xor_assign(self.buffer[i].vector());
            }
            self.counters.add(OpKind::VectorXor, selected.len() as u64);
            if vector.is_zero() {
                continue;
            }
            // One pass over the payload for the whole combination instead of
            // one full walk per selected packet.
            let mut payload = self.buffer[first].payload().clone();
            let sources: Vec<&Payload> = rest.iter().map(|&i| self.buffer[i].payload()).collect();
            payload.xor_assign_many(&sources);
            self.counters.add(OpKind::PayloadXor, selected.len() as u64);
            return Ok(EncodedPacket::new(vector, payload));
        }
        // Fallback: forward one buffered packet chosen at random.
        let i = rng.gen_range(0..self.buffer.len());
        self.counters.incr(OpKind::PayloadXor);
        self.counters.incr(OpKind::VectorXor);
        Ok(self.buffer[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_gf2::CodeVector;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i + 2 * j + 1) as u8).collect())).collect()
    }

    fn packet(k: usize, indices: &[usize], nat: &[Payload]) -> EncodedPacket {
        let mut payload = Payload::zero(nat[0].len());
        for &i in indices {
            payload.xor_assign(&nat[i]);
        }
        EncodedPacket::new(CodeVector::from_indices(k, indices), payload)
    }

    #[test]
    fn sparsity_matches_the_paper_formula() {
        assert_eq!(sparsity_for(1), 20);
        assert_eq!(sparsity_for(2048), (2048f64.ln().ceil() as usize) + 20);
        assert_eq!(sparsity_for(2048), 28);
        assert!(sparsity_for(4096) >= sparsity_for(512));
    }

    #[test]
    fn recode_from_empty_buffer_fails() {
        let mut r = SparseRecoder::new(8, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(r.recode(&mut rng).unwrap_err(), RlncError::NothingToRecode);
    }

    #[test]
    fn push_rejects_mismatches() {
        let mut r = SparseRecoder::new(8, 4);
        let nat = natives(9, 4);
        assert!(r.push(packet(9, &[0], &nat)).is_err());
        let nat8 = natives(8, 5);
        assert!(r.push(packet(8, &[0], &nat8)).is_err());
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn recoded_packet_is_consistent_combination() {
        let k = 16;
        let m = 8;
        let nat = natives(k, m);
        let mut r = SparseRecoder::new(k, m);
        for i in 0..k {
            r.push(packet(k, &[i, (i + 1) % k], &nat)).unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = r.recode(&mut rng).unwrap();
            // Invariant: payload equals XOR of natives named by the vector.
            let mut expected = Payload::zero(m);
            for i in p.vector().iter_ones() {
                expected.xor_assign(&nat[i]);
            }
            assert_eq!(p.payload(), &expected);
        }
    }

    #[test]
    fn combination_size_respects_sparsity() {
        let k = 64;
        let m = 1;
        let nat = natives(k, m);
        let mut r = SparseRecoder::with_sparsity(k, m, 3);
        for i in 0..k {
            r.push(packet(k, &[i], &nat)).unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let p = r.recode(&mut rng).unwrap();
            // With unit packets and sparsity 3, the result combines 1 to 3 of them.
            assert!(p.degree() <= 3 && p.degree() >= 1, "degree {}", p.degree());
        }
        assert!(r.counters().get(OpKind::PayloadXor) >= 50);
    }

    #[test]
    fn recoded_packets_are_diverse_even_with_a_small_buffer() {
        // Regression test: when the buffer is smaller than the sparsity bound
        // the recoder must still produce varied combinations (a deterministic
        // "XOR everything" output would stall every downstream receiver).
        let k = 8;
        let m = 1;
        let nat = natives(k, m);
        let mut r = SparseRecoder::new(k, m); // sparsity 23 ≥ buffer size
        for i in 0..k {
            r.push(packet(k, &[i], &nat)).unwrap();
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..64 {
            distinct.insert(r.recode(&mut rng).unwrap().vector().ones());
        }
        assert!(distinct.len() > 10, "only {} distinct combinations", distinct.len());
    }

    #[test]
    fn recode_with_single_packet_returns_it() {
        let k = 8;
        let nat = natives(k, 2);
        let mut r = SparseRecoder::new(k, 2);
        r.push(packet(k, &[2, 5], &nat)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let p = r.recode(&mut rng).unwrap();
        assert_eq!(p.vector().ones(), vec![2, 5]);
    }

    #[test]
    fn sparsity_is_at_least_one() {
        let r = SparseRecoder::with_sparsity(8, 2, 0);
        assert_eq!(r.sparsity(), 1);
    }
}
