use core::fmt;

/// Errors produced by the RLNC baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlncError {
    /// Decoding was attempted before the code matrix reached full rank.
    NotFullRank {
        /// Current rank.
        rank: usize,
        /// Code length `k`.
        needed: usize,
    },
    /// A packet with a different code length or payload size was received.
    PacketMismatch {
        /// Expected value (code length or payload size).
        expected: usize,
        /// Found value.
        found: usize,
    },
    /// Recoding was requested but the node holds no packet at all.
    NothingToRecode,
}

impl fmt::Display for RlncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlncError::NotFullRank { rank, needed } => {
                write!(f, "code matrix not full rank: {rank} of {needed}")
            }
            RlncError::PacketMismatch { expected, found } => {
                write!(f, "packet mismatch: expected {expected}, found {found}")
            }
            RlncError::NothingToRecode => write!(f, "no packet available to recode from"),
        }
    }
}

impl std::error::Error for RlncError {}
