use ltnc_gf2::{EncodedPacket, Payload};
use ltnc_metrics::OpCounters;
use rand::Rng;

use crate::{GaussianDecoder, RlncError, SparseRecoder};

/// What happened to a packet handed to [`RlncNode::receive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// The packet increased the rank of the node's code matrix and was stored.
    Innovative,
    /// The packet was linearly dependent on what the node already had.
    Redundant,
}

/// The per-node state of the RLNC dissemination scheme.
///
/// Bundles the Gaussian-elimination decoder (reception and decoding) with the
/// sparse random recoder (emission), and keeps the two cost ledgers separate so
/// the simulator can report recoding and decoding costs independently, as in
/// Figure 8 of the paper.
#[derive(Debug, Clone)]
pub struct RlncNode {
    decoder: GaussianDecoder,
    recoder: SparseRecoder,
}

impl RlncNode {
    /// Creates a node for `k` native packets of `payload_size` bytes.
    #[must_use]
    pub fn new(k: usize, payload_size: usize) -> Self {
        RlncNode {
            decoder: GaussianDecoder::new(k, payload_size),
            recoder: SparseRecoder::new(k, payload_size),
        }
    }

    /// Creates a node with an explicit recoding sparsity (ablation knob).
    #[must_use]
    pub fn with_sparsity(k: usize, payload_size: usize, sparsity: usize) -> Self {
        RlncNode {
            decoder: GaussianDecoder::new(k, payload_size),
            recoder: SparseRecoder::with_sparsity(k, payload_size, sparsity),
        }
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.decoder.code_length()
    }

    /// Payload size `m`.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.decoder.payload_size()
    }

    /// Current rank of the node's code matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.decoder.rank()
    }

    /// Returns `true` once the node can decode the full content.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decoder.is_full_rank()
    }

    /// Returns `true` when the packet would be innovative for this node.
    ///
    /// Used by the binary feedback channel: the receiver checks the code
    /// vector (carried in the header) before the payload is transferred and
    /// aborts the transfer of non-innovative packets.
    #[must_use]
    pub fn is_innovative(&self, packet: &EncodedPacket) -> bool {
        self.decoder.is_innovative(packet)
    }

    /// Number of packets this node has accepted as innovative.
    #[must_use]
    pub fn innovative_count(&self) -> usize {
        self.recoder.buffered()
    }

    /// Receives a packet, updating the code matrix and the recoding buffer.
    ///
    /// The innovation check and the row insertion share a single Gaussian
    /// reduction pass ([`Gf2Solver::insert_if_innovative`]); returns
    /// [`ReceiveOutcome::Redundant`] for non-innovative packets, which are
    /// dropped (they would only waste memory and CPU).
    ///
    /// [`Gf2Solver::insert_if_innovative`]: ltnc_gf2::Gf2Solver::insert_if_innovative
    ///
    /// # Panics
    ///
    /// Panics if the packet's code length or payload size does not match the
    /// node (schemes never mix packet shapes within one dissemination).
    pub fn receive(&mut self, packet: &EncodedPacket) -> ReceiveOutcome {
        let innovative = self.decoder.insert(packet).expect("packet shape must match the node");
        if innovative {
            self.recoder.push(packet.clone()).expect("packet shape must match the node");
            ReceiveOutcome::Innovative
        } else {
            ReceiveOutcome::Redundant
        }
    }

    /// Produces a fresh encoded packet by sparse random recoding.
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::NothingToRecode`] when the node has not received
    /// any innovative packet yet.
    pub fn recode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<EncodedPacket, RlncError> {
        self.recoder.recode(rng)
    }

    /// Decodes the full content (Gaussian elimination + payload recovery).
    ///
    /// # Errors
    ///
    /// Returns [`RlncError::NotFullRank`] when the node is not complete yet.
    pub fn decode(&mut self) -> Result<Vec<Payload>, RlncError> {
        self.decoder.decode()
    }

    /// Cost ledger of the reception/decoding path (innovation checks, row
    /// reductions, payload recovery).
    #[must_use]
    pub fn decoding_counters(&self) -> &OpCounters {
        self.decoder.counters()
    }

    /// Cost ledger of the recoding path (random combinations).
    #[must_use]
    pub fn recoding_counters(&self) -> &OpCounters {
        self.recoder.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn natives(k: usize, m: usize) -> Vec<Payload> {
        (0..k).map(|i| Payload::from_vec((0..m).map(|j| (i * 7 + j + 1) as u8).collect())).collect()
    }

    fn seed_source(k: usize, nat: &[Payload]) -> RlncNode {
        let mut node = RlncNode::new(k, nat[0].len());
        for (i, p) in nat.iter().enumerate() {
            node.receive(&EncodedPacket::native(k, i, p.clone()));
        }
        node
    }

    #[test]
    fn node_reports_shape() {
        let node = RlncNode::new(16, 32);
        assert_eq!(node.code_length(), 16);
        assert_eq!(node.payload_size(), 32);
        assert_eq!(node.rank(), 0);
        assert!(!node.is_complete());
        assert_eq!(node.innovative_count(), 0);
    }

    #[test]
    fn duplicate_packets_are_redundant() {
        let k = 8;
        let nat = natives(k, 4);
        let mut node = RlncNode::new(k, 4);
        let p = EncodedPacket::native(k, 0, nat[0].clone());
        assert_eq!(node.receive(&p), ReceiveOutcome::Innovative);
        assert_eq!(node.receive(&p), ReceiveOutcome::Redundant);
        assert_eq!(node.innovative_count(), 1);
    }

    #[test]
    fn source_to_sink_dissemination_decodes() {
        let k = 24;
        let m = 8;
        let nat = natives(k, m);
        let mut source = seed_source(k, &nat);
        assert!(source.is_complete());

        let mut sink = RlncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sent = 0;
        while !sink.is_complete() {
            let p = source.recode(&mut rng).unwrap();
            sink.receive(&p);
            sent += 1;
            assert!(sent < 20 * k, "sink did not converge");
        }
        assert_eq!(sink.decode().unwrap(), nat);
        // RLNC needs close to k innovative packets; redundancy should be low.
        assert!(sent < 3 * k, "needed {sent} packets for k = {k}");
    }

    #[test]
    fn multi_hop_recoding_preserves_decodability() {
        // source -> relay -> sink, the relay only ever sees recoded packets.
        let k = 16;
        let m = 4;
        let nat = natives(k, m);
        let mut source = seed_source(k, &nat);
        let mut relay = RlncNode::new(k, m);
        let mut sink = RlncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(11);

        let mut rounds = 0;
        while !sink.is_complete() {
            rounds += 1;
            assert!(rounds < 100 * k, "did not converge");
            let p = source.recode(&mut rng).unwrap();
            relay.receive(&p);
            if relay.innovative_count() > 0 {
                let q = relay.recode(&mut rng).unwrap();
                sink.receive(&q);
            }
        }
        assert_eq!(sink.decode().unwrap(), nat);
    }

    #[test]
    fn is_innovative_predicts_receive_outcome() {
        let k = 8;
        let m = 2;
        let nat = natives(k, m);
        let mut source = seed_source(k, &nat);
        let mut sink = RlncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..4 * k {
            let p = source.recode(&mut rng).unwrap();
            let predicted = sink.is_innovative(&p);
            let outcome = sink.receive(&p);
            assert_eq!(predicted, outcome == ReceiveOutcome::Innovative);
        }
    }

    #[test]
    fn counters_are_split_between_recoding_and_decoding() {
        let k = 12;
        let m = 4;
        let nat = natives(k, m);
        let mut source = seed_source(k, &nat);
        let mut sink = RlncNode::new(k, m);
        let mut rng = SmallRng::seed_from_u64(13);
        while !sink.is_complete() {
            let p = source.recode(&mut rng).unwrap();
            sink.receive(&p);
        }
        sink.decode().unwrap();
        assert!(source.recoding_counters().total_ops() > 0);
        assert!(sink.decoding_counters().total_ops() > 0);
        // The sink never recoded; the source never decoded beyond insertions.
        assert_eq!(sink.recoding_counters().total_ops(), 0);
    }

    #[test]
    fn decode_on_incomplete_node_errors() {
        let mut node = RlncNode::new(4, 2);
        assert!(matches!(node.decode(), Err(RlncError::NotFullRank { .. })));
    }
}
