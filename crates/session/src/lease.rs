//! Striped-fetch bookkeeping: generation leases and a thread-safe shared
//! receiver.
//!
//! Rateless codes make *any* subset of a generation's coded symbols
//! useful, so a client may pull one object from several replicas at once
//! and merge the streams. Two pieces of state make that concrete:
//!
//! * [`LeaseTable`] — which replica is responsible for pushing which
//!   generation. A fresh table partitions generations round-robin; when a
//!   replica dies its outstanding leases are reassigned to the survivors
//!   ([`LeaseTable::reassign`]), and completed generations are released
//!   so they never migrate.
//! * [`SharedReceiver`] — the merge point: the same per-generation decode
//!   state as [`crate::generation::ReceiverSession`], but behind one lock
//!   *per generation* plus atomic completion flags, so replica streams
//!   working disjoint generations never contend. Duplicate-rank symbols
//!   (two replicas serving overlapping symbols after a failover) are
//!   simply not useful and are discarded by the decoder — the rateless
//!   union needs no coordination beyond this.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_metrics::OpCounters;
use ltnc_scheme::Scheme;
use rand::RngCore;

use crate::generation::ObjectManifest;

/// Ownership map from generation index to replica index.
///
/// # Example
///
/// ```
/// use ltnc_session::LeaseTable;
///
/// // 5 generations striped across 2 replicas, round-robin.
/// let mut table = LeaseTable::partition(5, 2);
/// assert_eq!(table.leased_to(0), vec![0, 2, 4]);
/// assert_eq!(table.leased_to(1), vec![1, 3]);
///
/// // Generation 2 completes (released), then replica 0 dies: only its
/// // *outstanding* leases migrate to the survivor.
/// table.release(2);
/// let moves = table.reassign(0, &[1]);
/// assert_eq!(moves, vec![(0, 1), (4, 1)]);
/// assert_eq!(table.owner(2), None, "completed leases never migrate");
/// assert_eq!(table.outstanding(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct LeaseTable {
    owner: Vec<Option<usize>>,
}

impl LeaseTable {
    /// Partitions `generations` round-robin across `replicas` (replica
    /// `i` gets generations `i`, `i + replicas`, …), the striping that
    /// spreads both wire load and decode work evenly.
    ///
    /// # Panics
    ///
    /// Panics when `replicas == 0`.
    #[must_use]
    pub fn partition(generations: u32, replicas: usize) -> LeaseTable {
        assert!(replicas > 0, "cannot lease to zero replicas");
        let owner = (0..generations as usize).map(|g| Some(g % replicas)).collect();
        LeaseTable { owner }
    }

    /// The generations currently leased to `replica`, in index order.
    #[must_use]
    pub fn leased_to(&self, replica: usize) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, owner)| **owner == Some(replica))
            .map(|(g, _)| g as u32)
            .collect()
    }

    /// Current owner of a generation (`None` once released or for an
    /// out-of-range index).
    #[must_use]
    pub fn owner(&self, generation: u32) -> Option<usize> {
        self.owner.get(generation as usize).copied().flatten()
    }

    /// Number of generations still under lease.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Drops the lease on a completed generation so it can never be
    /// reassigned. Idempotent; out-of-range indices are ignored.
    pub fn release(&mut self, generation: u32) {
        if let Some(owner) = self.owner.get_mut(generation as usize) {
            *owner = None;
        }
    }

    /// Moves every generation still leased to `from` onto the `survivors`
    /// round-robin, returning the `(generation, new_owner)` moves. An
    /// empty survivor list leaves the table untouched and returns the
    /// orphaned generations as unassigned moves would be meaningless —
    /// the caller must treat that as a fatal loss of service.
    pub fn reassign(&mut self, from: usize, survivors: &[usize]) -> Vec<(u32, usize)> {
        if survivors.is_empty() {
            return Vec::new();
        }
        let set: Vec<u32> = self
            .owner
            .iter()
            .enumerate()
            .filter(|(_, owner)| **owner == Some(from))
            .map(|(g, _)| g as u32)
            .collect();
        self.reassign_set(&set, survivors)
    }

    /// Moves exactly the generations in `set` (skipping any already
    /// released) onto the `survivors` round-robin, returning the
    /// `(generation, new_owner)` moves. This is the per-*stream* failover
    /// primitive: when one session dies, only the generations that
    /// session was responsible for migrate — other streams of the same
    /// replica keep theirs.
    pub fn reassign_set(&mut self, set: &[u32], survivors: &[usize]) -> Vec<(u32, usize)> {
        if survivors.is_empty() {
            return Vec::new();
        }
        let mut moves = Vec::new();
        let mut next = 0usize;
        for &g in set {
            let Some(owner) = self.owner.get_mut(g as usize) else { continue };
            if owner.is_none() {
                continue; // completed and released: never migrates
            }
            let new_owner = survivors[next % survivors.len()];
            next += 1;
            *owner = Some(new_owner);
            moves.push((g, new_owner));
        }
        moves
    }
}

/// Outcome of delivering one packet to a [`SharedReceiver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliverOutcome {
    /// The packet advanced the generation's rank.
    pub useful: bool,
    /// This delivery completed the generation (reported exactly once per
    /// generation, to whichever stream lands the finishing symbol).
    pub newly_complete: bool,
}

/// Thread-safe per-generation decode state shared by several replica
/// streams.
///
/// Functionally [`crate::generation::ReceiverSession`], restructured for
/// concurrency: one mutex per generation (streams striping disjoint
/// generations never block each other) and lock-free completion checks on
/// the hot path.
///
/// # Example
///
/// ```
/// use ltnc_scheme::{SchemeKind, SchemeParams};
/// use ltnc_session::{SharedReceiver, SourceSession};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let params = SchemeParams::new(SchemeKind::Rlnc, 4, 8);
/// let object: Vec<u8> = (0..64u8).collect(); // 2 generations of 4×8 B
/// let mut source = SourceSession::new(&object, params);
/// let receiver = SharedReceiver::new(*source.manifest());
///
/// // Any number of replica streams may call deliver() concurrently;
/// // here one loop plays them all.
/// let mut rng = SmallRng::seed_from_u64(1);
/// while !receiver.is_complete() {
///     let (gen, packet) = source
///         .make_packet(&mut rng, |g| !receiver.generation_complete(g))
///         .expect("incomplete generations remain");
///     receiver.deliver(gen, &packet);
/// }
/// assert_eq!(receiver.reassemble().unwrap(), object);
/// ```
pub struct SharedReceiver {
    manifest: ObjectManifest,
    nodes: Vec<Mutex<Box<dyn Scheme>>>,
    complete: Vec<AtomicBool>,
    complete_count: AtomicUsize,
}

impl SharedReceiver {
    /// Empty decode state for every generation of `manifest`.
    #[must_use]
    pub fn new(manifest: ObjectManifest) -> SharedReceiver {
        let count = manifest.generation_count() as usize;
        SharedReceiver {
            manifest,
            nodes: (0..count).map(|_| Mutex::new(manifest.params.empty_node())).collect(),
            complete: (0..count).map(|_| AtomicBool::new(false)).collect(),
            complete_count: AtomicUsize::new(0),
        }
    }

    /// The manifest all replicas must agree on.
    #[must_use]
    pub fn manifest(&self) -> &ObjectManifest {
        &self.manifest
    }

    /// Whether one generation has fully decoded (lock-free).
    #[must_use]
    pub fn generation_complete(&self, gen_index: u32) -> bool {
        self.complete.get(gen_index as usize).is_some_and(|c| c.load(Ordering::Acquire))
    }

    /// Number of generations fully decoded so far.
    #[must_use]
    pub fn complete_generations(&self) -> usize {
        self.complete_count.load(Ordering::Acquire)
    }

    /// `true` once every generation has decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete_generations() == self.nodes.len()
    }

    /// `true` once every generation in `gens` has decoded.
    #[must_use]
    pub fn generations_complete(&self, gens: &[u32]) -> bool {
        gens.iter().all(|&g| self.generation_complete(g))
    }

    /// The header-first feedback check against the shared state: would
    /// this generation want a packet with this code vector? `false` for
    /// out-of-range generations, completed generations, or vectors of the
    /// wrong length.
    #[must_use]
    pub fn would_accept(&self, gen_index: u32, vector: &CodeVector) -> bool {
        let Some(node) = self.nodes.get(gen_index as usize) else {
            return false;
        };
        if self.generation_complete(gen_index) || vector.len() != self.manifest.params.code_length {
            return false;
        }
        let probe = EncodedPacket::new(vector.clone(), Payload::zero(0));
        node.lock().expect("generation lock poisoned").would_accept(&probe)
    }

    /// Delivers a full packet to a generation, holding only that
    /// generation's lock. Duplicate-rank packets come back
    /// `useful: false` — the striped client counts them as discarded.
    pub fn deliver(&self, gen_index: u32, packet: &EncodedPacket) -> DeliverOutcome {
        let none = DeliverOutcome { useful: false, newly_complete: false };
        let idx = gen_index as usize;
        let Some(node) = self.nodes.get(idx) else {
            return none;
        };
        if packet.code_length() != self.manifest.params.code_length
            || packet.payload_size() != self.manifest.params.payload_size
        {
            return none;
        }
        let mut node = node.lock().expect("generation lock poisoned");
        let useful = node.deliver(packet);
        // The completion flip happens under the generation lock, so
        // exactly one delivering stream observes `newly_complete`.
        let newly_complete = node.is_complete() && !self.complete[idx].swap(true, Ordering::AcqRel);
        if newly_complete {
            self.complete_count.fetch_add(1, Ordering::AcqRel);
        }
        DeliverOutcome { useful, newly_complete }
    }

    /// Useful packets received for a generation (drives the
    /// aggressiveness gate of relays).
    #[must_use]
    pub fn useful_received(&self, gen_index: u32) -> usize {
        self.nodes
            .get(gen_index as usize)
            .map_or(0, |n| n.lock().expect("generation lock poisoned").useful_received())
    }

    /// Recodes a fresh packet from a generation's received state (relay
    /// behaviour).
    pub fn make_packet(&self, gen_index: u32, rng: &mut dyn RngCore) -> Option<EncodedPacket> {
        self.nodes
            .get(gen_index as usize)?
            .lock()
            .expect("generation lock poisoned")
            .make_packet(rng)
    }

    /// Merged decoding counters across all generations.
    #[must_use]
    pub fn decoding_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for node in &self.nodes {
            total.merge(&node.lock().expect("generation lock poisoned").decoding_counters());
        }
        total
    }

    /// Merged recoding counters across all generations (relay emissions).
    #[must_use]
    pub fn recoding_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for node in &self.nodes {
            total.merge(&node.lock().expect("generation lock poisoned").recoding_counters());
        }
        total
    }

    /// Reassembles the object once complete: decodes every generation,
    /// concatenates the natives and trims the tail padding. `None` while
    /// any generation is missing or a decode fails.
    #[must_use]
    pub fn reassemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut object = Vec::with_capacity(self.manifest.object_len as usize);
        for node in &self.nodes {
            let natives = node.lock().expect("generation lock poisoned").decoded_content()?;
            for payload in &natives {
                object.extend_from_slice(payload.as_bytes());
            }
        }
        object.truncate(self.manifest.object_len as usize);
        Some(object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::{split_object, SourceSession};
    use ltnc_scheme::{SchemeKind, SchemeParams};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn object(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = vec![0u8; len];
        rng.fill(&mut data[..]);
        data
    }

    #[test]
    fn partition_is_round_robin_and_covers_everything() {
        let table = LeaseTable::partition(7, 3);
        assert_eq!(table.leased_to(0), vec![0, 3, 6]);
        assert_eq!(table.leased_to(1), vec![1, 4]);
        assert_eq!(table.leased_to(2), vec![2, 5]);
        assert_eq!(table.outstanding(), 7);
        for g in 0..7 {
            assert!(table.owner(g).is_some());
        }
        assert_eq!(table.owner(7), None, "out of range");
    }

    #[test]
    fn reassign_moves_only_outstanding_leases() {
        let mut table = LeaseTable::partition(6, 3);
        // Replica 1 completed generation 1 before dying; only 4 migrates.
        table.release(1);
        let moves = table.reassign(1, &[0, 2]);
        assert_eq!(moves, vec![(4, 0)]);
        assert_eq!(table.owner(4), Some(0));
        assert_eq!(table.owner(1), None, "released leases stay released");
        assert_eq!(table.leased_to(1), Vec::<u32>::new());
    }

    #[test]
    fn reassign_spreads_across_survivors() {
        let mut table = LeaseTable::partition(9, 3);
        let moves = table.reassign(2, &[0, 1]);
        // Replica 2 owned 2, 5, 8 → alternating to 0 and 1.
        assert_eq!(moves, vec![(2, 0), (5, 1), (8, 0)]);
        assert!(table.leased_to(2).is_empty());
    }

    #[test]
    fn reassign_set_moves_only_the_named_outstanding_generations() {
        let mut table = LeaseTable::partition(8, 2);
        // Replica 0 owns 0,2,4,6. One of its *streams* held {2, 4}; 4 is
        // already complete.
        table.release(4);
        let moves = table.reassign_set(&[2, 4], &[1]);
        assert_eq!(moves, vec![(2, 1)]);
        assert_eq!(table.owner(2), Some(1));
        assert_eq!(table.owner(4), None, "released lease never migrates");
        assert_eq!(table.leased_to(0), vec![0, 6], "other leases untouched");
    }

    #[test]
    fn reassign_with_no_survivors_is_a_noop() {
        let mut table = LeaseTable::partition(4, 2);
        assert!(table.reassign(0, &[]).is_empty());
        assert_eq!(table.leased_to(0), vec![0, 2], "leases untouched");
    }

    #[test]
    fn sole_survivor_inherits_every_outstanding_lease() {
        // Two of three replicas die in sequence; the last one standing
        // ends up owning everything still outstanding.
        let mut table = LeaseTable::partition(7, 3);
        table.release(1); // replica 1 finished one generation first
        let first = table.reassign(1, &[0, 2]);
        assert_eq!(first, vec![(4, 0)]);
        let second = table.reassign(0, &[2]);
        assert_eq!(second, vec![(0, 2), (3, 2), (4, 2), (6, 2)]);
        assert_eq!(table.leased_to(2), vec![0, 2, 3, 4, 5, 6]);
        assert_eq!(table.outstanding(), 6);
        assert!(table.leased_to(0).is_empty());
        assert!(table.leased_to(1).is_empty());
    }

    #[test]
    fn re_lease_to_the_same_replica_is_allowed() {
        // The striped client re-opens a fresh session on the same replica
        // after a per-stream failure: `from` may appear among the
        // survivors, and its generations then stay put but are reported
        // as moves (the caller re-sends the steering COMPLETEs).
        let mut table = LeaseTable::partition(4, 2);
        let moves = table.reassign(0, &[0]);
        assert_eq!(moves, vec![(0, 0), (2, 0)]);
        assert_eq!(table.leased_to(0), vec![0, 2]);
        assert_eq!(table.outstanding(), 4, "nothing lost in a self re-lease");
    }

    #[test]
    fn release_of_never_leased_or_out_of_range_generations_is_idempotent() {
        let mut table = LeaseTable::partition(3, 2);
        // Out of range: generation 9 was never part of the object.
        table.release(9);
        assert_eq!(table.outstanding(), 3, "out-of-range release is a no-op");
        // Double release of the same generation.
        table.release(1);
        table.release(1);
        assert_eq!(table.outstanding(), 2);
        assert_eq!(table.owner(1), None);
        // A released generation named explicitly in a set reassignment is
        // skipped, and unknown generations are ignored, not panicked on.
        let moves = table.reassign_set(&[1, 9, 2], &[0]);
        assert_eq!(moves, vec![(2, 0)]);
        assert_eq!(table.owner(9), None);
    }

    #[test]
    fn shared_receiver_decodes_interleaved_streams_bit_exactly() {
        for kind in SchemeKind::ALL {
            let params = SchemeParams::new(kind, 8, 4);
            let data = object(100, 3); // 8×4 = 32 B/gen → 4 generations
            let mut source = SourceSession::new(&data, params);
            let receiver = SharedReceiver::new(*source.manifest());
            let mut rng = SmallRng::seed_from_u64(5);
            let mut budget = 60_000;
            while !receiver.is_complete() && budget > 0 {
                budget -= 1;
                if let Some((gen, packet)) =
                    source.make_packet(&mut rng, |g| !receiver.generation_complete(g))
                {
                    if receiver.would_accept(gen, packet.vector()) {
                        receiver.deliver(gen, &packet);
                    }
                }
            }
            assert!(receiver.is_complete(), "{kind:?} did not complete");
            assert_eq!(receiver.reassemble().unwrap(), data, "{kind:?} mismatch");
        }
    }

    #[test]
    fn newly_complete_fires_exactly_once_per_generation() {
        let params = SchemeParams::new(SchemeKind::Rlnc, 4, 2);
        let data = object(8, 9); // single generation
        let mut source = SourceSession::new(&data, params);
        let receiver = SharedReceiver::new(*source.manifest());
        let mut rng = SmallRng::seed_from_u64(1);
        let mut completions = 0;
        for _ in 0..64 {
            if let Some((gen, packet)) = source.make_packet(&mut rng, |_| true) {
                if receiver.deliver(gen, &packet).newly_complete {
                    completions += 1;
                }
            }
        }
        assert!(receiver.is_complete());
        assert_eq!(completions, 1);
    }

    #[test]
    fn duplicate_deliveries_are_not_useful() {
        let params = SchemeParams::new(SchemeKind::Wc, 4, 2);
        let data = object(8, 11);
        let mut source = SourceSession::new(&data, params);
        let receiver = SharedReceiver::new(*source.manifest());
        let mut rng = SmallRng::seed_from_u64(2);
        let (gen, packet) = source.make_packet(&mut rng, |_| true).unwrap();
        assert!(receiver.deliver(gen, &packet).useful);
        let again = receiver.deliver(gen, &packet);
        assert!(!again.useful, "duplicate-rank symbol must be discarded");
    }

    #[test]
    fn wrong_dimensions_and_bad_generation_are_rejected() {
        let params = SchemeParams::new(SchemeKind::Rlnc, 6, 3);
        let (manifest, _) = split_object(&object(18, 4), params);
        let receiver = SharedReceiver::new(manifest);
        let wrong_k = EncodedPacket::native(9, 0, Payload::zero(3));
        assert_eq!(
            receiver.deliver(0, &wrong_k),
            DeliverOutcome { useful: false, newly_complete: false }
        );
        assert!(!receiver.would_accept(42, &CodeVector::singleton(6, 0)));
        assert!(receiver.would_accept(0, &CodeVector::singleton(6, 0)));
    }
}
