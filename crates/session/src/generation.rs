//! Generations: chunking arbitrarily large objects into codeable units.
//!
//! LT/RLNC coding works over a fixed code length `k`; a real object (a
//! file) is rarely exactly `k × m` bytes. The session layer therefore
//! splits the object into *generations* of `k` native payloads of `m`
//! bytes each (the last generation zero-padded), codes each generation
//! independently, and reassembles the object once every generation has
//! decoded — the standard "generation" construction of practical network
//! coding, and the unit the wire envelope addresses with its
//! `generation` field.
//!
//! * [`ObjectManifest`] — the immutable description both ends agree on
//!   (object length, `k`, `m`, scheme): enough for a receiver to size its
//!   decode state and to know when it is done.
//! * [`split_object`] — source-side chunking into per-generation native
//!   payload vectors.
//! * [`SourceSession`] — per-generation source scheme nodes plus a push
//!   scheduler.
//! * [`ReceiverSession`] — per-generation decode state with header-first
//!   innovation checks and object reassembly.

use ltnc_gf2::{CodeVector, EncodedPacket, Payload};
use ltnc_metrics::OpCounters;
use ltnc_scheme::{Scheme, SchemeParams};
use rand::RngCore;

/// The per-object contract between source and receivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectManifest {
    /// Exact object length in bytes (the tail generation is padded up to
    /// `k × m`; this is how much survives reassembly).
    pub object_len: u64,
    /// Scheme and code dimensions every generation uses.
    pub params: SchemeParams,
}

impl ObjectManifest {
    /// Bytes of object data one full generation carries.
    #[must_use]
    pub fn generation_bytes(&self) -> usize {
        self.params.code_length * self.params.payload_size
    }

    /// Number of generations the object spans (at least 1).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate manifest (`k × m = 0`) or one whose object
    /// length implies more than `u32::MAX` generations (the wire addresses
    /// generations with a `u32`; truncating silently would make such an
    /// object appear complete with nothing received). Manifests received
    /// from untrusted peers must be bounds-checked before use — the serve
    /// client caps the implied generation count at a far smaller limit.
    #[must_use]
    pub fn generation_count(&self) -> u32 {
        let per_gen = self.generation_bytes() as u64;
        assert!(per_gen > 0, "degenerate manifest: k × m = 0");
        let count = self.object_len.div_ceil(per_gen).max(1);
        assert!(count <= u64::from(u32::MAX), "object spans more generations than u32 addresses");
        count as u32
    }
}

/// Splits `object` into per-generation native payloads (the source side of
/// the manifest contract). The last generation is zero-padded to exactly
/// `k` payloads of `m` bytes.
///
/// # Panics
///
/// Panics when `params.code_length == 0` or `params.payload_size == 0`.
#[must_use]
pub fn split_object(object: &[u8], params: SchemeParams) -> (ObjectManifest, Vec<Vec<Payload>>) {
    assert!(params.code_length > 0, "code length must be positive");
    assert!(params.payload_size > 0, "payload size must be positive");
    let manifest = ObjectManifest { object_len: object.len() as u64, params };
    let k = params.code_length;
    let m = params.payload_size;
    let mut generations = Vec::with_capacity(manifest.generation_count() as usize);
    for gen_index in 0..manifest.generation_count() as usize {
        let base = gen_index * k * m;
        let natives: Vec<Payload> = (0..k)
            .map(|i| {
                let start = (base + i * m).min(object.len());
                let end = (base + (i + 1) * m).min(object.len());
                let mut bytes = object[start..end].to_vec();
                bytes.resize(m, 0);
                Payload::from_vec(bytes)
            })
            .collect();
        generations.push(natives);
    }
    (manifest, generations)
}

/// Source-side session: one source scheme node per generation, plus a
/// round-robin scheduler that skips generations a target already finished.
pub struct SourceSession {
    manifest: ObjectManifest,
    nodes: Vec<Box<dyn Scheme>>,
    cursor: usize,
}

impl SourceSession {
    /// Builds source nodes for every generation of `object`.
    #[must_use]
    pub fn new(object: &[u8], params: SchemeParams) -> Self {
        let (manifest, generations) = split_object(object, params);
        let nodes = generations.iter().map(|natives| params.source_node(natives)).collect();
        SourceSession { manifest, nodes, cursor: 0 }
    }

    /// The manifest receivers must agree on.
    #[must_use]
    pub fn manifest(&self) -> &ObjectManifest {
        &self.manifest
    }

    /// Produces the next packet to push, cycling round-robin over the
    /// generations for which `target_needs(gen)` returns `true`. Returns
    /// the generation index with the packet.
    pub fn make_packet(
        &mut self,
        rng: &mut dyn RngCore,
        mut target_needs: impl FnMut(u32) -> bool,
    ) -> Option<(u32, EncodedPacket)> {
        let n = self.nodes.len();
        for _ in 0..n {
            let gen_index = self.cursor % n;
            self.cursor = self.cursor.wrapping_add(1);
            if !target_needs(gen_index as u32) {
                continue;
            }
            if let Some(packet) = self.nodes[gen_index].make_packet(rng) {
                return Some((gen_index as u32, packet));
            }
        }
        None
    }

    /// Merged recoding counters across all generations.
    #[must_use]
    pub fn recoding_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for node in &self.nodes {
            total.merge(&node.recoding_counters());
        }
        total
    }
}

/// Receiver-side session: per-generation decode state, the header-first
/// feedback check, and final reassembly.
///
/// A thin single-owner façade over [`crate::lease::SharedReceiver`] — one
/// implementation of the accept/deliver/reassemble protocol serves the
/// UDP gossip path (this type) and the TCP/striped serving path (the
/// shared receiver directly), so the semantics cannot drift apart.
pub struct ReceiverSession {
    shared: crate::lease::SharedReceiver,
}

impl ReceiverSession {
    /// Builds empty decode state for every generation in the manifest.
    #[must_use]
    pub fn new(manifest: ObjectManifest) -> Self {
        ReceiverSession { shared: crate::lease::SharedReceiver::new(manifest) }
    }

    /// The session's manifest.
    #[must_use]
    pub fn manifest(&self) -> &ObjectManifest {
        self.shared.manifest()
    }

    /// Number of generations fully decoded so far.
    #[must_use]
    pub fn complete_generations(&self) -> usize {
        self.shared.complete_generations()
    }

    /// `true` once every generation has decoded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.is_complete()
    }

    /// Whether one specific generation has decoded.
    #[must_use]
    pub fn generation_complete(&self, gen_index: u32) -> bool {
        self.shared.generation_complete(gen_index)
    }

    /// Useful packets received for a generation (drives the
    /// aggressiveness gate of relays).
    #[must_use]
    pub fn useful_received(&self, gen_index: u32) -> usize {
        self.shared.useful_received(gen_index)
    }

    /// The paper's header-first feedback check: given only a code vector
    /// from a `DATA-HEADER`, would this generation want the payload?
    /// Returns `false` for out-of-range generations, completed
    /// generations, or vectors of the wrong length.
    #[must_use]
    pub fn would_accept(&self, gen_index: u32, vector: &CodeVector) -> bool {
        self.shared.would_accept(gen_index, vector)
    }

    /// Delivers a full packet to a generation. Returns `true` when the
    /// packet was useful; newly-completed generations are tracked.
    pub fn deliver(&mut self, gen_index: u32, packet: &EncodedPacket) -> bool {
        self.shared.deliver(gen_index, packet).useful
    }

    /// Recodes a fresh packet from a generation's received state (relay
    /// behaviour).
    pub fn make_packet(&mut self, gen_index: u32, rng: &mut dyn RngCore) -> Option<EncodedPacket> {
        self.shared.make_packet(gen_index, rng)
    }

    /// Reassembles the object once complete: decodes every generation,
    /// concatenates the native payloads and trims the tail padding.
    /// `None` while any generation is missing or a decode fails.
    pub fn reassemble(&mut self) -> Option<Vec<u8>> {
        self.shared.reassemble()
    }

    /// Merged decoding counters across all generations.
    #[must_use]
    pub fn decoding_counters(&self) -> OpCounters {
        self.shared.decoding_counters()
    }

    /// Merged recoding counters across all generations (relay emissions).
    #[must_use]
    pub fn recoding_counters(&self) -> OpCounters {
        self.shared.recoding_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltnc_scheme::SchemeKind;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn object(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = vec![0u8; len];
        rng.fill(&mut data[..]);
        data
    }

    #[test]
    fn split_pads_tail_and_counts_generations() {
        let params = SchemeParams::new(SchemeKind::Ltnc, 8, 4);
        // 8 × 4 = 32 bytes per generation; 70 bytes → 3 generations.
        let data = object(70, 1);
        let (manifest, gens) = split_object(&data, params);
        assert_eq!(manifest.generation_count(), 3);
        assert_eq!(gens.len(), 3);
        for gen in &gens {
            assert_eq!(gen.len(), 8);
            assert!(gen.iter().all(|p| p.len() == 4));
        }
        // Concatenation reproduces the object plus zero padding.
        let mut cat = Vec::new();
        for gen in &gens {
            for p in gen {
                cat.extend_from_slice(p.as_bytes());
            }
        }
        assert_eq!(&cat[..70], &data[..]);
        assert!(cat[70..].iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_object_still_has_one_generation() {
        let params = SchemeParams::new(SchemeKind::Wc, 4, 2);
        let (manifest, gens) = split_object(&[], params);
        assert_eq!(manifest.generation_count(), 1);
        assert_eq!(gens.len(), 1);
    }

    #[test]
    fn source_to_receiver_loopback_all_schemes() {
        for kind in SchemeKind::ALL {
            let params = SchemeParams::new(kind, 12, 5);
            let data = object(137, 7); // 12×5 = 60 B/gen → 3 generations
            let mut source = SourceSession::new(&data, params);
            let mut receiver = ReceiverSession::new(*source.manifest());
            let mut rng = SmallRng::seed_from_u64(11);
            let mut budget = 60_000;
            while !receiver.is_complete() && budget > 0 {
                budget -= 1;
                if let Some((gen, packet)) =
                    source.make_packet(&mut rng, |g| !receiver.generation_complete(g))
                {
                    if receiver.would_accept(gen, packet.vector()) {
                        receiver.deliver(gen, &packet);
                    }
                }
            }
            assert!(receiver.is_complete(), "{kind:?} did not complete");
            assert_eq!(receiver.reassemble().unwrap(), data, "{kind:?} reassembly mismatch");
        }
    }

    #[test]
    fn scheduler_skips_completed_generations() {
        let params = SchemeParams::new(SchemeKind::Rlnc, 4, 2);
        let data = object(24, 3); // 3 generations
        let mut source = SourceSession::new(&data, params);
        let mut rng = SmallRng::seed_from_u64(1);
        // Pretend the target finished generations 0 and 2.
        for _ in 0..32 {
            let (gen, _) = source.make_packet(&mut rng, |g| g == 1).unwrap();
            assert_eq!(gen, 1);
        }
        // No generation needed → no packet.
        assert!(source.make_packet(&mut rng, |_| false).is_none());
    }

    #[test]
    fn would_accept_rejects_mismatched_and_done_generations() {
        let params = SchemeParams::new(SchemeKind::Ltnc, 6, 3);
        let data = object(18, 9); // single generation
        let source = SourceSession::new(&data, params);
        let receiver = ReceiverSession::new(*source.manifest());
        // Out-of-range generation.
        assert!(!receiver.would_accept(5, &CodeVector::singleton(6, 0)));
        // Wrong vector length.
        assert!(!receiver.would_accept(0, &CodeVector::singleton(9, 0)));
        // Fresh degree-1 vector is wanted.
        assert!(receiver.would_accept(0, &CodeVector::singleton(6, 0)));
    }

    #[test]
    fn deliver_rejects_wrong_dimensions() {
        let params = SchemeParams::new(SchemeKind::Rlnc, 6, 3);
        let (manifest, _) = split_object(&object(18, 2), params);
        let mut receiver = ReceiverSession::new(manifest);
        let wrong_k = EncodedPacket::native(9, 0, Payload::zero(3));
        assert!(!receiver.deliver(0, &wrong_k));
        let wrong_m = EncodedPacket::native(6, 0, Payload::zero(8));
        assert!(!receiver.deliver(0, &wrong_m));
        assert_eq!(receiver.useful_received(0), 0);
    }
}
