//! Transport-neutral object sessions for LT network codes.
//!
//! Historically the generation construction lived inside `ltnc-net`, next
//! to its UDP peer actor. It is not about datagrams, though: chunking an
//! object into codeable generations, tracking per-generation decode state
//! and reassembling the object bit-exactly is exactly the same work
//! whether packets arrive over UDP gossip, a TCP serving session
//! (`ltnc-serve`) or a future QUIC binding. This crate holds that shared
//! layer; `ltnc-net` re-exports it under its old paths for backward
//! compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generation;
pub mod lease;

pub use generation::{split_object, ObjectManifest, ReceiverSession, SourceSession};
pub use lease::{DeliverOutcome, LeaseTable, SharedReceiver};
