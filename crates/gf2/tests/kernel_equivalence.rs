//! Property suite pinning the word-sliced GF(2) kernels to their scalar
//! (byte- and bit-at-a-time) reference implementations.
//!
//! The word-sliced paths in `payload.rs`, `code_vector.rs` and `wire.rs`
//! process 8 bytes (or a whole cache line) per step with `chunks_exact`
//! remainder tails; every length in `0..=129` exercises the empty case,
//! sub-word payloads, exact word multiples and every tail length, plus
//! code lengths that are not multiples of 8 (partial final bitmap byte)
//! or of 64 (partial final word).

use proptest::collection::vec as pvec;
use proptest::prelude::*;

use ltnc_gf2::wire;
use ltnc_gf2::{CodeVector, EncodedPacket, Payload};

/// Scalar reference: byte-at-a-time XOR.
fn xor_bytes_scalar(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Scalar reference: bit-at-a-time bitmap decode (the pre-word-slicing
/// wire decoder), ignoring any padding bits in the final bitmap byte.
fn bitmap_decode_scalar(len: usize, bytes: &[u8]) -> CodeVector {
    assert_eq!(bytes.len(), len.div_ceil(8));
    let mut vector = CodeVector::zero(len);
    for i in 0..len {
        if bytes[i / 8] >> (i % 8) & 1 == 1 {
            vector.set(i);
        }
    }
    vector
}

/// Payload lengths covering empty, sub-word, word-aligned, cache-line
/// aligned and every remainder tail in between.
fn payload_len() -> impl Strategy<Value = usize> {
    0usize..=129
}

/// Code lengths >= 1 (a zero-length code is rejected by the wire codec).
fn code_len() -> impl Strategy<Value = usize> {
    1usize..=129
}

proptest! {
    #[test]
    fn xor_assign_matches_scalar(
        len in payload_len(),
        seed_a in any::<u8>(),
        seed_b in any::<u8>(),
    ) {
        let a: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed_a)).collect();
        let b: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(17).wrapping_add(seed_b)).collect();
        let expected = xor_bytes_scalar(&a, &b);

        let mut p = Payload::from_vec(a.clone());
        p.xor_assign(&Payload::from_vec(b.clone()));
        prop_assert_eq!(p.as_bytes(), &expected[..]);

        // The non-destructive single-pass variant agrees.
        let q = Payload::from_vec(a).xor(&Payload::from_vec(b));
        prop_assert_eq!(q.as_bytes(), &expected[..]);
    }

    #[test]
    fn xor_assign_many_matches_sequential_scalar(
        len in payload_len(),
        sources in pvec(any::<u8>(), 0..7),
    ) {
        let base: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(13)).collect();
        let srcs: Vec<Vec<u8>> = sources
            .iter()
            .map(|&s| (0..len).map(|i| (i as u8).wrapping_mul(7).wrapping_add(s)).collect())
            .collect();

        let mut expected = base.clone();
        for src in &srcs {
            expected = xor_bytes_scalar(&expected, src);
        }

        let payloads: Vec<Payload> = srcs.into_iter().map(Payload::from_vec).collect();
        let refs: Vec<&Payload> = payloads.iter().collect();
        let mut batched = Payload::from_vec(base);
        batched.xor_assign_many(&refs);
        prop_assert_eq!(batched.as_bytes(), &expected[..]);
    }

    #[test]
    fn is_zero_matches_scalar(len in payload_len(), plant in any::<bool>(), at in any::<usize>()) {
        let mut bytes = vec![0u8; len];
        if plant && len > 0 {
            // Plant a single one at an arbitrary position (word interior,
            // word boundary or remainder tail, depending on `at % len`).
            bytes[at % len] = 1;
        }
        let expected = bytes.iter().all(|&b| b == 0);
        prop_assert_eq!(Payload::from_vec(bytes).is_zero(), expected);
    }

    #[test]
    fn bitmap_word_decode_matches_bit_decode(
        k in code_len(),
        fill in pvec(any::<u8>(), 17),
    ) {
        let bitmap_len = k.div_ceil(8);
        let bytes: Vec<u8> = (0..bitmap_len).map(|i| fill[i % fill.len()]).collect();

        let word_decoded = CodeVector::from_le_bytes(k, &bytes);
        let bit_decoded = bitmap_decode_scalar(k, &bytes);
        prop_assert_eq!(&word_decoded, &bit_decoded);

        // Trailing-bit invariant: bits past `k` never leak into the degree
        // (padding bits in the final byte are masked off by the decoder).
        prop_assert_eq!(word_decoded.degree(), word_decoded.iter_ones().count());
        prop_assert!(word_decoded.iter_ones().all(|i| i < k));

        // Re-encoding reproduces the wire bytes up to the masked padding.
        let mut reencoded = Vec::new();
        word_decoded.write_le_bytes(&mut reencoded);
        prop_assert_eq!(reencoded.len(), bitmap_len);
        for (i, (&ours, &theirs)) in reencoded.iter().zip(&bytes).enumerate() {
            let valid_bits = (k - i * 8).min(8);
            let mask = if valid_bits == 8 { 0xFF } else { (1u8 << valid_bits) - 1 };
            prop_assert_eq!(ours, theirs & mask, "byte {} (mask {:#04x})", i, mask);
        }
    }

    #[test]
    fn wire_roundtrip_survives_all_shapes(
        k in code_len(),
        payload_size in payload_len(),
        ones in pvec(any::<usize>(), 1..9),
    ) {
        let indices: Vec<usize> = ones.iter().map(|&o| o % k).collect();
        let vector = CodeVector::from_indices(k, &indices);
        let payload = Payload::from_vec((0..payload_size).map(|i| i as u8).collect());
        let packet = EncodedPacket::new(vector, payload);

        let frame = wire::encode(&packet);

        // Owned decode, borrowed decode and header decode all agree.
        let decoded = wire::decode(&frame).expect("roundtrip");
        prop_assert_eq!(&decoded, &packet);

        let view = wire::decode_view(&frame).expect("roundtrip");
        prop_assert_eq!(view.vector(), packet.vector());
        prop_assert_eq!(view.payload_bytes(), packet.payload().as_bytes());
        prop_assert_eq!(&view.into_packet(), &packet);

        let (code_length, decoded_size, header_vector) =
            wire::decode_header(&frame).expect("header prefix");
        prop_assert_eq!(code_length, k);
        prop_assert_eq!(decoded_size, payload_size);
        prop_assert_eq!(&header_vector, packet.vector());
    }
}
