use serde::{Deserialize, Serialize};

use crate::{CodeVector, Gf2Error, Payload};

/// An encoded packet: a code vector (header) plus the XOR of the corresponding
/// native payloads (data).
///
/// The invariant maintained by every operation in this workspace is that the
/// payload always equals the XOR of the native payloads whose bits are set in
/// the code vector. The integration tests verify this end-to-end against a
/// reference store of native packets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedPacket {
    vector: CodeVector,
    payload: Payload,
}

impl EncodedPacket {
    /// Bundles a code vector and its payload.
    #[must_use]
    pub fn new(vector: CodeVector, payload: Payload) -> Self {
        EncodedPacket { vector, payload }
    }

    /// A degree-1 packet carrying native packet `index` with the given payload.
    ///
    /// # Panics
    ///
    /// Panics if `index >= k`.
    #[must_use]
    pub fn native(k: usize, index: usize, payload: Payload) -> Self {
        EncodedPacket { vector: CodeVector::singleton(k, index), payload }
    }

    /// The code vector (bitmap header) of this packet.
    #[must_use]
    pub fn vector(&self) -> &CodeVector {
        &self.vector
    }

    /// The data payload of this packet.
    #[must_use]
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Number of native packets combined in this packet.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.vector.degree()
    }

    /// Code length `k` (number of native packets of the content).
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.vector.len()
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload.len()
    }

    /// Returns `true` when this packet is the zero combination (useless on the wire).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.vector.is_zero()
    }

    /// Returns `true` when this packet carries exactly one native packet.
    #[must_use]
    pub fn is_native(&self) -> bool {
        self.degree() == 1
    }

    /// Adds another encoded packet to this one over GF(2): both the code vector
    /// and the payload are XOR-ed. This is the recoding primitive shared by
    /// RLNC and LTNC.
    ///
    /// # Panics
    ///
    /// Panics if code lengths or payload sizes differ.
    pub fn xor_assign(&mut self, other: &EncodedPacket) {
        self.vector.xor_assign(&other.vector);
        self.payload.xor_assign(&other.payload);
    }

    /// Checked variant of [`EncodedPacket::xor_assign`].
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::LengthMismatch`] when code lengths or payload sizes differ.
    pub fn try_xor_assign(&mut self, other: &EncodedPacket) -> Result<(), Gf2Error> {
        if self.vector.len() != other.vector.len() {
            return Err(Gf2Error::LengthMismatch {
                left: self.vector.len(),
                right: other.vector.len(),
            });
        }
        self.payload.try_xor_assign(&other.payload)?;
        self.vector.xor_assign(&other.vector);
        Ok(())
    }

    /// Returns `self ⊕ other` without modifying either operand.
    ///
    /// # Panics
    ///
    /// Panics if code lengths or payload sizes differ.
    #[must_use]
    pub fn xor(&self, other: &EncodedPacket) -> EncodedPacket {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Total wire size of this packet in bytes: bitmap header plus payload.
    #[must_use]
    pub fn wire_size_bytes(&self) -> usize {
        self.vector.wire_size_bytes() + self.payload.len()
    }

    /// Splits the packet into its parts.
    #[must_use]
    pub fn into_parts(self) -> (CodeVector, Payload) {
        (self.vector, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pk(k: usize, indices: &[usize], fill: u8) -> EncodedPacket {
        EncodedPacket::new(CodeVector::from_indices(k, indices), Payload::from_vec(vec![fill; 8]))
    }

    #[test]
    fn native_packet_has_degree_one() {
        let p = EncodedPacket::native(16, 3, Payload::zero(4));
        assert!(p.is_native());
        assert_eq!(p.degree(), 1);
        assert_eq!(p.code_length(), 16);
        assert_eq!(p.payload_size(), 4);
        assert!(p.vector().contains(3));
    }

    #[test]
    fn xor_combines_header_and_payload() {
        let a = pk(8, &[0, 1], 0xF0);
        let b = pk(8, &[1, 2], 0x0F);
        let c = a.xor(&b);
        assert_eq!(c.vector().ones(), vec![0, 2]);
        assert_eq!(c.payload().as_bytes(), &[0xFF; 8]);
    }

    #[test]
    fn xor_with_self_gives_zero_packet() {
        let a = pk(8, &[0, 5], 0x33);
        let z = a.xor(&a);
        assert!(z.is_zero());
        assert!(z.payload().is_zero());
    }

    #[test]
    fn try_xor_assign_rejects_mismatched_payload() {
        let mut a = EncodedPacket::new(CodeVector::zero(8), Payload::zero(4));
        let b = EncodedPacket::new(CodeVector::zero(8), Payload::zero(5));
        assert!(a.try_xor_assign(&b).is_err());
        // a must be unchanged after a failed combine.
        assert_eq!(a.payload().len(), 4);
        assert!(a.vector().is_zero());
    }

    #[test]
    fn try_xor_assign_rejects_mismatched_code_length() {
        let mut a = EncodedPacket::new(CodeVector::zero(8), Payload::zero(4));
        let b = EncodedPacket::new(CodeVector::zero(9), Payload::zero(4));
        assert!(a.try_xor_assign(&b).is_err());
    }

    #[test]
    fn wire_size_accounts_for_header_and_payload() {
        let p = pk(2048, &[1], 0);
        assert_eq!(p.wire_size_bytes(), 256 + 8);
    }

    #[test]
    fn into_parts_roundtrip() {
        let p = pk(8, &[1, 2], 7);
        let (v, d) = p.clone().into_parts();
        assert_eq!(EncodedPacket::new(v, d), p);
    }
}
