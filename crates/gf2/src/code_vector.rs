use core::fmt;

use serde::{Deserialize, Serialize};

use crate::Gf2Error;

const WORD_BITS: usize = 64;

/// A dense bitmap over the `k` native packets of a content.
///
/// Bit `i` is set when native packet `x_i` participates in the linear
/// combination described by this vector. The *degree* of a packet is the
/// number of set bits. The paper transmits code vectors as bitmaps in packet
/// headers, so this representation is both the wire format and the in-memory
/// format.
///
/// All mutating operations keep the vector length (`k`) fixed; combining two
/// vectors of different lengths is a logic error and panics in debug builds
/// (the checked variants return [`Gf2Error::LengthMismatch`]).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeVector {
    /// Number of native packets `k` (number of valid bits).
    len: usize,
    /// Bit words, little-endian within the vector: bit `i` lives in
    /// `words[i / 64]` at position `i % 64`. Trailing bits beyond `len` are
    /// always zero (an invariant relied upon by `degree`).
    words: Vec<u64>,
}

impl CodeVector {
    /// Creates the all-zero vector of length `len` (the neutral element of XOR).
    #[must_use]
    pub fn zero(len: usize) -> Self {
        let n_words = len.div_ceil(WORD_BITS);
        CodeVector { len, words: vec![0; n_words] }
    }

    /// Wraps already-valid backing words (crate-internal: callers must uphold
    /// the word count and trailing-zero invariants, e.g. a reduction residual
    /// of vectors that satisfied them).
    pub(crate) fn from_words(len: usize, words: Vec<u64>) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(WORD_BITS));
        debug_assert!(
            len.is_multiple_of(WORD_BITS)
                || words.last().is_none_or(|w| w >> (len % WORD_BITS) == 0),
            "trailing bits beyond len must be zero"
        );
        CodeVector { len, words }
    }

    /// Creates a vector with exactly one bit set: the native packet `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn singleton(len: usize, index: usize) -> Self {
        let mut v = CodeVector::zero(len);
        v.set(index);
        v
    }

    /// Builds a vector of length `len` directly from its wire bitmap: exactly
    /// `⌈len/8⌉` bytes, bit `i` in byte `i / 8` at position `i % 8`. That bit
    /// order is the little-endian byte layout of the backing `u64` words, so
    /// the bitmap is decoded eight bytes per step instead of one bit at a
    /// time. Padding bits beyond `len` in the final byte are ignored (masked
    /// off, preserving the trailing-zero invariant of the last word).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly `⌈len/8⌉` bytes long.
    #[must_use]
    pub fn from_le_bytes(len: usize, bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            len.div_ceil(8),
            "bitmap for a length-{len} vector must be {} bytes",
            len.div_ceil(8)
        );
        let mut words = Vec::with_capacity(len.div_ceil(WORD_BITS));
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            words.push(u64::from_le_bytes(chunk.try_into().expect("word-sized chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            words.push(u64::from_le_bytes(buf));
        }
        if !len.is_multiple_of(WORD_BITS) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % WORD_BITS)) - 1;
            }
        }
        CodeVector { len, words }
    }

    /// Appends the wire bitmap (`⌈len/8⌉` bytes, inverse of
    /// [`CodeVector::from_le_bytes`]) to `out`, emitting whole words at a
    /// time. The trailing-zero invariant makes truncating the last word's
    /// bytes lossless.
    pub fn write_le_bytes(&self, out: &mut Vec<u8>) {
        let mut remaining = self.wire_size_bytes();
        for word in &self.words {
            let take = remaining.min(8);
            out.extend_from_slice(&word.to_le_bytes()[..take]);
            remaining -= take;
        }
    }

    /// Creates a vector with the given native packet indices set.
    ///
    /// Duplicate indices cancel out pairwise (GF(2) semantics): `from_indices(8, &[1, 1, 2])`
    /// has degree 1.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = CodeVector::zero(len);
        for &i in indices {
            v.flip(i);
        }
        v
    }

    /// Number of native packets `k` this vector ranges over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the code length is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when no bit is set (the zero combination).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The degree of the packet: the number of native packets involved.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when native packet `index` participates in this combination.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        self.words[index / WORD_BITS] |= 1 << (index % WORD_BITS);
    }

    /// Clears bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn clear(&mut self, index: usize) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        self.words[index / WORD_BITS] &= !(1 << (index % WORD_BITS));
    }

    /// Flips bit `index` (adds `x_index` over GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        self.words[index / WORD_BITS] ^= 1 << (index % WORD_BITS);
    }

    /// Adds `other` to `self` over GF(2) (bitwise XOR).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &CodeVector) {
        assert_eq!(self.len, other.len, "cannot combine code vectors of different lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// Checked variant of [`CodeVector::xor_assign`].
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::LengthMismatch`] when the code lengths differ.
    pub fn try_xor_assign(&mut self, other: &CodeVector) -> Result<(), Gf2Error> {
        if self.len != other.len {
            return Err(Gf2Error::LengthMismatch { left: self.len, right: other.len });
        }
        self.xor_assign(other);
        Ok(())
    }

    /// Returns `self ⊕ other` without modifying either operand.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor(&self, other: &CodeVector) -> CodeVector {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Degree of `self ⊕ other` computed without allocating the combined vector.
    ///
    /// This is the hot operation of Algorithm 1 in the paper (the greedy build
    /// step checks `d(z) < d(z ⊕ y) ≤ d` for every candidate `y`), so it avoids
    /// the allocation of [`CodeVector::xor`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor_degree(&self, other: &CodeVector) -> usize {
        assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Number of native packets present in both combinations (`|self ∩ other|`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn intersection_size(&self, other: &CodeVector) -> usize {
        assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Returns `true` when every native packet of `self` also appears in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn is_subset_of(&self, other: &CodeVector) -> bool {
        assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of the native packets involved, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| OnesInWord { word, base: wi * WORD_BITS })
    }

    /// Collects the indices of the native packets involved.
    #[must_use]
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Index of the lowest set bit, or `None` for the zero vector.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Serialized size in bytes of the bitmap header on the wire.
    ///
    /// The paper includes the code vector in every packet header; the overhead
    /// accounting of the simulator uses this value (`⌈k / 8⌉` bytes).
    #[must_use]
    pub fn wire_size_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Raw words backing the bitmap (read-only, for hashing/serialization helpers).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for CodeVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CodeVector(k={}, ones={:?})", self.len, self.ones())
    }
}

struct OnesInWord {
    word: u64,
    base: usize,
}

impl Iterator for OnesInWord {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_vector_has_degree_zero() {
        let v = CodeVector::zero(100);
        assert_eq!(v.degree(), 0);
        assert!(v.is_zero());
        assert_eq!(v.len(), 100);
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_vector_is_empty() {
        let v = CodeVector::zero(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.degree(), 0);
    }

    #[test]
    fn singleton_has_degree_one() {
        let v = CodeVector::singleton(70, 65);
        assert_eq!(v.degree(), 1);
        assert!(v.contains(65));
        assert!(!v.contains(64));
        assert_eq!(v.first_one(), Some(65));
    }

    #[test]
    fn from_indices_cancels_duplicates() {
        let v = CodeVector::from_indices(8, &[1, 1, 2]);
        assert_eq!(v.degree(), 1);
        assert!(v.contains(2));
        assert!(!v.contains(1));
    }

    #[test]
    fn set_clear_flip_roundtrip() {
        let mut v = CodeVector::zero(130);
        v.set(129);
        assert!(v.contains(129));
        v.flip(129);
        assert!(!v.contains(129));
        v.flip(129);
        assert!(v.contains(129));
        v.clear(129);
        assert!(!v.contains(129));
    }

    #[test]
    fn xor_is_gf2_addition() {
        let a = CodeVector::from_indices(10, &[1, 2, 3]);
        let b = CodeVector::from_indices(10, &[2, 3, 4]);
        let c = a.xor(&b);
        assert_eq!(c.ones(), vec![1, 4]);
        assert_eq!(c.degree(), 2);
        assert_eq!(a.xor_degree(&b), 2);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a = CodeVector::from_indices(200, &[0, 63, 64, 127, 128, 199]);
        let z = a.xor(&a);
        assert!(z.is_zero());
        assert_eq!(a.xor_degree(&a), 0);
    }

    #[test]
    fn try_xor_assign_rejects_length_mismatch() {
        let mut a = CodeVector::zero(10);
        let b = CodeVector::zero(11);
        assert_eq!(a.try_xor_assign(&b), Err(Gf2Error::LengthMismatch { left: 10, right: 11 }));
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn xor_assign_panics_on_length_mismatch() {
        let mut a = CodeVector::zero(10);
        a.xor_assign(&CodeVector::zero(11));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = CodeVector::zero(10);
        v.set(10);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let idx = [0, 5, 63, 64, 65, 120, 121, 191];
        let v = CodeVector::from_indices(192, &idx);
        assert_eq!(v.ones(), idx.to_vec());
    }

    #[test]
    fn subset_and_intersection() {
        let a = CodeVector::from_indices(100, &[1, 2, 3]);
        let b = CodeVector::from_indices(100, &[1, 2, 3, 70]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.intersection_size(&b), 3);
        assert_eq!(a.intersection_size(&CodeVector::zero(100)), 0);
    }

    #[test]
    fn wire_size_rounds_up() {
        assert_eq!(CodeVector::zero(2048).wire_size_bytes(), 256);
        assert_eq!(CodeVector::zero(7).wire_size_bytes(), 1);
        assert_eq!(CodeVector::zero(8).wire_size_bytes(), 1);
        assert_eq!(CodeVector::zero(9).wire_size_bytes(), 2);
    }

    #[test]
    fn first_one_of_zero_is_none() {
        assert_eq!(CodeVector::zero(50).first_one(), None);
    }

    #[test]
    fn le_bytes_roundtrip_preserves_bits() {
        for &len in &[1usize, 7, 8, 9, 63, 64, 65, 127, 128, 129] {
            let indices: Vec<usize> = (0..len).step_by(3).collect();
            let v = CodeVector::from_indices(len, &indices);
            let mut wire = Vec::new();
            v.write_le_bytes(&mut wire);
            assert_eq!(wire.len(), v.wire_size_bytes());
            assert_eq!(CodeVector::from_le_bytes(len, &wire), v, "len {len}");
        }
    }

    #[test]
    fn from_le_bytes_masks_padding_bits() {
        // len = 5 needs one byte; bits 5..8 are padding and must be dropped.
        let v = CodeVector::from_le_bytes(5, &[0b1111_1111]);
        assert_eq!(v.ones(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v.as_words(), &[0b1_1111]);
        // len = 68: padding lives in the second word.
        let v = CodeVector::from_le_bytes(68, &[0xFF; 9]);
        assert_eq!(v.degree(), 68);
        assert_eq!(v.as_words()[1], 0b1111);
    }

    #[test]
    #[should_panic(expected = "must be 2 bytes")]
    fn from_le_bytes_rejects_wrong_size() {
        let _ = CodeVector::from_le_bytes(9, &[0]);
    }

    #[test]
    fn as_words_exposes_backing_storage() {
        let v = CodeVector::from_indices(77, &[3, 64, 76]);
        assert_eq!(v.as_words().len(), 2);
        assert_eq!(v.as_words()[0], 1 << 3);
        assert_eq!(v.as_words()[1], (1 << 0) | (1 << 12));
    }

    proptest! {
        #[test]
        fn prop_degree_equals_ones_len(indices in proptest::collection::vec(0usize..256, 0..64)) {
            let v = CodeVector::from_indices(256, &indices);
            prop_assert_eq!(v.degree(), v.ones().len());
        }

        #[test]
        fn prop_xor_commutes(
            a in proptest::collection::vec(0usize..200, 0..40),
            b in proptest::collection::vec(0usize..200, 0..40),
        ) {
            let va = CodeVector::from_indices(200, &a);
            let vb = CodeVector::from_indices(200, &b);
            prop_assert_eq!(va.xor(&vb), vb.xor(&va));
        }

        #[test]
        fn prop_xor_associates(
            a in proptest::collection::vec(0usize..100, 0..30),
            b in proptest::collection::vec(0usize..100, 0..30),
            c in proptest::collection::vec(0usize..100, 0..30),
        ) {
            let va = CodeVector::from_indices(100, &a);
            let vb = CodeVector::from_indices(100, &b);
            let vc = CodeVector::from_indices(100, &c);
            prop_assert_eq!(va.xor(&vb).xor(&vc), va.xor(&vb.xor(&vc)));
        }

        #[test]
        fn prop_xor_degree_matches_xor(
            a in proptest::collection::vec(0usize..300, 0..60),
            b in proptest::collection::vec(0usize..300, 0..60),
        ) {
            let va = CodeVector::from_indices(300, &a);
            let vb = CodeVector::from_indices(300, &b);
            prop_assert_eq!(va.xor_degree(&vb), va.xor(&vb).degree());
        }

        #[test]
        fn prop_double_xor_is_identity(
            a in proptest::collection::vec(0usize..150, 0..40),
            b in proptest::collection::vec(0usize..150, 0..40),
        ) {
            let va = CodeVector::from_indices(150, &a);
            let vb = CodeVector::from_indices(150, &b);
            let mut w = va.clone();
            w.xor_assign(&vb);
            w.xor_assign(&vb);
            prop_assert_eq!(w, va);
        }

        #[test]
        fn prop_intersection_plus_xor_consistency(
            a in proptest::collection::vec(0usize..128, 0..40),
            b in proptest::collection::vec(0usize..128, 0..40),
        ) {
            // |A Δ B| = |A| + |B| - 2|A ∩ B|
            let va = CodeVector::from_indices(128, &a);
            let vb = CodeVector::from_indices(128, &b);
            prop_assert_eq!(
                va.xor_degree(&vb),
                va.degree() + vb.degree() - 2 * va.intersection_size(&vb)
            );
        }
    }
}
