use core::fmt;

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::Gf2Error;

/// The data part of a packet: `m` bytes combined by XOR.
///
/// The paper separates the cost of operations on *control structures* (code
/// vectors, Tanner graph, code matrix) from operations on *data* (payload
/// XORs of `m = 256 KB` blocks). `Payload` is the data side; every XOR of two
/// payloads is the unit the cost model of `ltnc-metrics` charges as a data
/// operation of `m` bytes.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload {
    bytes: Vec<u8>,
}

impl Payload {
    /// Creates a zero payload (all bytes `0`) of the given size.
    #[must_use]
    pub fn zero(size: usize) -> Self {
        Payload { bytes: vec![0; size] }
    }

    /// Wraps an existing byte vector.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Payload { bytes }
    }

    /// Copies a byte slice into a new payload.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        Payload { bytes: bytes.to_vec() }
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for a zero-length payload.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns `true` when every byte is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// Read-only view of the payload bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the payload and returns the owned bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    /// Copies the payload into a [`Bytes`] buffer (cheap to clone afterwards),
    /// e.g. to hand packets to a transport layer.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.bytes.len());
        b.extend_from_slice(&self.bytes);
        b.freeze()
    }

    /// Adds `other` to `self` over GF(2) (byte-wise XOR).
    ///
    /// # Panics
    ///
    /// Panics if the payload sizes differ.
    pub fn xor_assign(&mut self, other: &Payload) {
        assert_eq!(
            self.bytes.len(),
            other.bytes.len(),
            "cannot combine payloads of different sizes"
        );
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a ^= *b;
        }
    }

    /// Checked variant of [`Payload::xor_assign`].
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::LengthMismatch`] when the payload sizes differ.
    pub fn try_xor_assign(&mut self, other: &Payload) -> Result<(), Gf2Error> {
        if self.bytes.len() != other.bytes.len() {
            return Err(Gf2Error::LengthMismatch {
                left: self.bytes.len(),
                right: other.bytes.len(),
            });
        }
        self.xor_assign(other);
        Ok(())
    }

    /// Returns `self ⊕ other` without modifying either operand.
    ///
    /// # Panics
    ///
    /// Panics if the payload sizes differ.
    #[must_use]
    pub fn xor(&self, other: &Payload) -> Payload {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_payload_is_zero() {
        let p = Payload::zero(32);
        assert!(p.is_zero());
        assert_eq!(p.len(), 32);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_payload() {
        let p = Payload::zero(0);
        assert!(p.is_empty());
        assert!(p.is_zero());
    }

    #[test]
    fn xor_assign_is_bytewise() {
        let mut a = Payload::from_vec(vec![0b1010_1010; 4]);
        let b = Payload::from_vec(vec![0b0000_1111; 4]);
        a.xor_assign(&b);
        assert_eq!(a.as_bytes(), &[0b1010_0101; 4]);
    }

    #[test]
    fn xor_with_zero_is_identity() {
        let a = Payload::from_vec(vec![1, 2, 3, 4]);
        let z = Payload::zero(4);
        assert_eq!(a.xor(&z), a);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a = Payload::from_vec(vec![9, 8, 7]);
        assert!(a.xor(&a).is_zero());
    }

    #[test]
    fn try_xor_assign_rejects_size_mismatch() {
        let mut a = Payload::zero(4);
        let b = Payload::zero(5);
        assert_eq!(a.try_xor_assign(&b), Err(Gf2Error::LengthMismatch { left: 4, right: 5 }));
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn xor_assign_panics_on_size_mismatch() {
        let mut a = Payload::zero(4);
        a.xor_assign(&Payload::zero(5));
    }

    #[test]
    fn to_bytes_copies_content() {
        let a = Payload::from_slice(&[1, 2, 3]);
        assert_eq!(a.to_bytes().as_ref(), &[1, 2, 3]);
        assert_eq!(a.into_vec(), vec![1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_xor_commutes(a in proptest::collection::vec(any::<u8>(), 0..64),
                             b_seed in any::<u8>()) {
            let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(b_seed)).collect();
            let pa = Payload::from_vec(a);
            let pb = Payload::from_vec(b);
            prop_assert_eq!(pa.xor(&pb), pb.xor(&pa));
        }

        #[test]
        fn prop_double_xor_is_identity(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       mask in any::<u8>()) {
            let b: Vec<u8> = a.iter().map(|x| x ^ mask).collect();
            let pa = Payload::from_vec(a.clone());
            let pb = Payload::from_vec(b);
            let mut w = pa.clone();
            w.xor_assign(&pb);
            w.xor_assign(&pb);
            prop_assert_eq!(w, pa);
        }
    }
}
