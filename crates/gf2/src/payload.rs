use core::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::Gf2Error;

/// Bytes per XOR word: the kernel walks payloads in `u64` steps.
const WORD_BYTES: usize = 8;
/// Bytes per fold lane in [`Payload::xor_assign_many`]: one cache line.
const LANE_BYTES: usize = 64;
/// Words per fold lane.
const LANE_WORDS: usize = LANE_BYTES / WORD_BYTES;

/// XORs `src` into `dst` word-sliced: `u64` chunks with a byte-wise tail.
///
/// Endianness does not matter for XOR, so the words are read and written
/// native-endian; the result is byte-for-byte identical to the scalar loop.
#[inline]
fn xor_slices(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut dst_words = dst.chunks_exact_mut(WORD_BYTES);
    let mut src_words = src.chunks_exact(WORD_BYTES);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let x = u64::from_ne_bytes(d.try_into().expect("word-sized chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("word-sized chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in dst_words.into_remainder().iter_mut().zip(src_words.remainder()) {
        *d ^= *s;
    }
}

/// The data part of a packet: `m` bytes combined by XOR.
///
/// The paper separates the cost of operations on *control structures* (code
/// vectors, Tanner graph, code matrix) from operations on *data* (payload
/// XORs of `m = 256 KB` blocks). `Payload` is the data side; every XOR of two
/// payloads is the unit the cost model of `ltnc-metrics` charges as a data
/// operation of `m` bytes.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload {
    bytes: Vec<u8>,
}

impl Payload {
    /// Creates a zero payload (all bytes `0`) of the given size.
    #[must_use]
    pub fn zero(size: usize) -> Self {
        Payload { bytes: vec![0; size] }
    }

    /// Wraps an existing byte vector.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Payload { bytes }
    }

    /// Copies a byte slice into a new payload.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        Payload { bytes: bytes.to_vec() }
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for a zero-length payload.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns `true` when every byte is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        let mut words = self.bytes.chunks_exact(WORD_BYTES);
        words.by_ref().all(|w| u64::from_ne_bytes(w.try_into().expect("word-sized chunk")) == 0)
            && words.remainder().iter().all(|&b| b == 0)
    }

    /// Read-only view of the payload bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the payload and returns the owned bytes.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.bytes
    }

    /// Copies the payload into a [`Bytes`] buffer (cheap to clone afterwards),
    /// e.g. to hand packets to a transport layer.
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(self.bytes.clone())
    }

    /// Adds `other` to `self` over GF(2) (word-sliced XOR).
    ///
    /// # Panics
    ///
    /// Panics if the payload sizes differ.
    pub fn xor_assign(&mut self, other: &Payload) {
        assert_eq!(
            self.bytes.len(),
            other.bytes.len(),
            "cannot combine payloads of different sizes"
        );
        xor_slices(&mut self.bytes, &other.bytes);
    }

    /// Checked variant of [`Payload::xor_assign`].
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::LengthMismatch`] when the payload sizes differ.
    pub fn try_xor_assign(&mut self, other: &Payload) -> Result<(), Gf2Error> {
        if self.bytes.len() != other.bytes.len() {
            return Err(Gf2Error::LengthMismatch {
                left: self.bytes.len(),
                right: other.bytes.len(),
            });
        }
        self.xor_assign(other);
        Ok(())
    }

    /// Returns `self ⊕ other` without modifying either operand.
    ///
    /// Builds the result in a single pass (no clone-then-rewalk).
    ///
    /// # Panics
    ///
    /// Panics if the payload sizes differ.
    #[must_use]
    pub fn xor(&self, other: &Payload) -> Payload {
        assert_eq!(
            self.bytes.len(),
            other.bytes.len(),
            "cannot combine payloads of different sizes"
        );
        let mut out = Vec::with_capacity(self.bytes.len());
        let mut a_words = self.bytes.chunks_exact(WORD_BYTES);
        let mut b_words = other.bytes.chunks_exact(WORD_BYTES);
        for (a, b) in a_words.by_ref().zip(b_words.by_ref()) {
            let x = u64::from_ne_bytes(a.try_into().expect("word-sized chunk"))
                ^ u64::from_ne_bytes(b.try_into().expect("word-sized chunk"));
            out.extend_from_slice(&x.to_ne_bytes());
        }
        for (a, b) in a_words.remainder().iter().zip(b_words.remainder()) {
            out.push(a ^ b);
        }
        Payload { bytes: out }
    }

    /// Folds every payload in `sources` into `self` in one pass over the
    /// buffer: each cache line of `self` is loaded once, XORed with the
    /// matching line of every source, and stored once. Recoding relays that
    /// combine `ln k + 20` buffered packets per emitted packet use this
    /// instead of N separate [`Payload::xor_assign`] walks.
    ///
    /// # Panics
    ///
    /// Panics if any source size differs from `self`.
    pub fn xor_assign_many(&mut self, sources: &[&Payload]) {
        for src in sources {
            assert_eq!(
                self.bytes.len(),
                src.bytes.len(),
                "cannot combine payloads of different sizes"
            );
        }
        if sources.is_empty() {
            return;
        }
        let len = self.bytes.len();
        let lanes_end = len - len % LANE_BYTES;
        let mut offset = 0;
        while offset < lanes_end {
            // Slice each lane once, then walk it with `chunks_exact`: the
            // single up-front bounds check is all the optimizer needs to
            // keep the accumulator loop branch-free and vectorized.
            let mut acc = [0u64; LANE_WORDS];
            let dst_lane = &self.bytes[offset..offset + LANE_BYTES];
            for (word, chunk) in acc.iter_mut().zip(dst_lane.chunks_exact(WORD_BYTES)) {
                *word = u64::from_ne_bytes(chunk.try_into().expect("word-sized chunk"));
            }
            for src in sources {
                let src_lane = &src.bytes[offset..offset + LANE_BYTES];
                for (word, chunk) in acc.iter_mut().zip(src_lane.chunks_exact(WORD_BYTES)) {
                    *word ^= u64::from_ne_bytes(chunk.try_into().expect("word-sized chunk"));
                }
            }
            let dst_lane = &mut self.bytes[offset..offset + LANE_BYTES];
            for (chunk, word) in dst_lane.chunks_exact_mut(WORD_BYTES).zip(acc) {
                chunk.copy_from_slice(&word.to_ne_bytes());
            }
            offset += LANE_BYTES;
        }
        // Sub-cache-line tail: word-sliced per source (at most 63 bytes each).
        for src in sources {
            xor_slices(&mut self.bytes[lanes_end..], &src.bytes[lanes_end..]);
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_payload_is_zero() {
        let p = Payload::zero(32);
        assert!(p.is_zero());
        assert_eq!(p.len(), 32);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_payload() {
        let p = Payload::zero(0);
        assert!(p.is_empty());
        assert!(p.is_zero());
    }

    #[test]
    fn xor_assign_is_bytewise() {
        let mut a = Payload::from_vec(vec![0b1010_1010; 4]);
        let b = Payload::from_vec(vec![0b0000_1111; 4]);
        a.xor_assign(&b);
        assert_eq!(a.as_bytes(), &[0b1010_0101; 4]);
    }

    #[test]
    fn xor_with_zero_is_identity() {
        let a = Payload::from_vec(vec![1, 2, 3, 4]);
        let z = Payload::zero(4);
        assert_eq!(a.xor(&z), a);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a = Payload::from_vec(vec![9, 8, 7]);
        assert!(a.xor(&a).is_zero());
    }

    #[test]
    fn try_xor_assign_rejects_size_mismatch() {
        let mut a = Payload::zero(4);
        let b = Payload::zero(5);
        assert_eq!(a.try_xor_assign(&b), Err(Gf2Error::LengthMismatch { left: 4, right: 5 }));
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn xor_assign_panics_on_size_mismatch() {
        let mut a = Payload::zero(4);
        a.xor_assign(&Payload::zero(5));
    }

    #[test]
    fn xor_assign_many_matches_sequential_folds() {
        // Length chosen to exercise full lanes, a word tail, and a byte tail.
        let m = 2 * 64 + 8 + 3;
        let mk =
            |seed: u8| Payload::from_vec((0..m).map(|j| (j as u8).wrapping_mul(seed)).collect());
        let sources = [mk(3), mk(5), mk(7), mk(11), mk(13)];
        let refs: Vec<&Payload> = sources.iter().collect();
        let mut batched = mk(1);
        let mut sequential = mk(1);
        batched.xor_assign_many(&refs);
        for s in &sources {
            sequential.xor_assign(s);
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    fn xor_assign_many_with_no_sources_is_identity() {
        let mut a = Payload::from_vec(vec![1, 2, 3]);
        a.xor_assign_many(&[]);
        assert_eq!(a.as_bytes(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn xor_assign_many_panics_on_size_mismatch() {
        let mut a = Payload::zero(4);
        let b = Payload::zero(5);
        a.xor_assign_many(&[&b]);
    }

    #[test]
    fn to_bytes_copies_content() {
        let a = Payload::from_slice(&[1, 2, 3]);
        assert_eq!(a.to_bytes().as_ref(), &[1, 2, 3]);
        assert_eq!(a.into_vec(), vec![1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_xor_commutes(a in proptest::collection::vec(any::<u8>(), 0..64),
                             b_seed in any::<u8>()) {
            let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(b_seed)).collect();
            let pa = Payload::from_vec(a);
            let pb = Payload::from_vec(b);
            prop_assert_eq!(pa.xor(&pb), pb.xor(&pa));
        }

        #[test]
        fn prop_double_xor_is_identity(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       mask in any::<u8>()) {
            let b: Vec<u8> = a.iter().map(|x| x ^ mask).collect();
            let pa = Payload::from_vec(a.clone());
            let pb = Payload::from_vec(b);
            let mut w = pa.clone();
            w.xor_assign(&pb);
            w.xor_assign(&pb);
            prop_assert_eq!(w, pa);
        }
    }
}
