//! GF(2) primitives for LT network codes.
//!
//! This crate provides the algebraic substrate shared by every coding scheme in
//! the workspace:
//!
//! * [`CodeVector`] — a dense bitmap over the `k` native packets describing which
//!   native packets participate in a linear combination (the paper transmits code
//!   vectors "represented by bitmaps" in packet headers).
//! * [`Payload`] — the `m`-byte data part of a packet, supporting in-place XOR.
//! * [`EncodedPacket`] — a code vector together with its payload.
//! * [`Gf2Matrix`] — a dense GF(2) matrix with row reduction, rank computation and
//!   back-substitution, used by the Gaussian-elimination decoder of the RLNC
//!   baseline.
//!
//! All operations are over GF(2): addition is XOR and every element is its own
//! inverse, which is what makes the "substitution by adding a degree-2 packet"
//! trick of LTNC work (`x ⊕ x = 0`).
//!
//! # Example
//!
//! ```
//! use ltnc_gf2::{CodeVector, Payload, EncodedPacket};
//!
//! // k = 8 native packets, combine x1 and x3 (0-indexed: 0 and 2).
//! let mut v = CodeVector::zero(8);
//! v.set(0);
//! v.set(2);
//! assert_eq!(v.degree(), 2);
//!
//! let mut p = Payload::from_vec(vec![0xAA; 16]);
//! p.xor_assign(&Payload::from_vec(vec![0x0F; 16]));
//! assert_eq!(p.as_bytes()[0], 0xA5);
//!
//! let packet = EncodedPacket::new(v, p);
//! assert_eq!(packet.degree(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code_vector;
mod error;
mod matrix;
mod packet;
mod payload;
pub mod wire;

pub use code_vector::CodeVector;
pub use error::Gf2Error;
pub use matrix::{Gf2Matrix, Gf2Solver, RowEchelonReport};
pub use packet::EncodedPacket;
pub use payload::Payload;
