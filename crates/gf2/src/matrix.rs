use core::cell::RefCell;
use core::fmt;

use crate::{CodeVector, Gf2Error};

std::thread_local! {
    /// Reduction scratch shared by every innovation check on the thread: the
    /// incoming vector's words are copied here and reduced in place, so the
    /// receive-path `is_innovative` calls allocate nothing after warm-up.
    static REDUCE_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Index of the lowest set bit across `words`, or `None` when all are zero.
#[inline]
fn first_one_in_words(words: &[u64]) -> Option<usize> {
    words
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(wi, &w)| wi * 64 + w.trailing_zeros() as usize)
}

/// XORs `src` into `dst` word by word.
#[inline]
fn xor_words(dst: &mut [u64], src: &[u64]) {
    for (a, b) in dst.iter_mut().zip(src) {
        *a ^= *b;
    }
}

/// A dense GF(2) matrix whose rows are [`CodeVector`]s.
///
/// This is the *code matrix* of the paper's RLNC baseline: every received code
/// vector is appended as a row; the content is decodable once the matrix
/// reaches rank `k`, using Gaussian reduction in `O(k²)` row operations (plus
/// `O(m·k²)` work on payloads, accounted separately by the caller).
///
/// The matrix maintains an *incremental row-echelon form*: each inserted row is
/// reduced against the existing pivots, so innovation checks (`is_innovative`)
/// are a single reduction pass and rank queries are O(1).
#[derive(Clone)]
pub struct Gf2Matrix {
    k: usize,
    /// Reduced rows, at most one per pivot column. `pivots[c] = Some(row index)`.
    rows: Vec<CodeVector>,
    /// Maps a pivot column to the index in `rows` of the row whose leading 1 is that column.
    pivots: Vec<Option<usize>>,
    /// Number of GF(2) row XOR operations performed, for the cost model.
    row_ops: u64,
}

/// Outcome of inserting a row into a [`Gf2Matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowEchelonReport {
    /// Whether the row increased the rank of the matrix.
    pub innovative: bool,
    /// Rank of the matrix after the insertion.
    pub rank: usize,
    /// Number of row XOR operations this insertion required.
    pub row_ops: u64,
}

impl Gf2Matrix {
    /// Creates an empty matrix over `k` unknowns (rank 0).
    #[must_use]
    pub fn new(k: usize) -> Self {
        Gf2Matrix { k, rows: Vec::new(), pivots: vec![None; k], row_ops: 0 }
    }

    /// Number of unknowns (code length `k`).
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Current rank of the matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` once the rank equals `k`, i.e. the content is decodable.
    #[must_use]
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.k
    }

    /// Total number of row XOR operations performed so far (cost accounting).
    #[must_use]
    pub fn row_ops(&self) -> u64 {
        self.row_ops
    }

    /// Reduces `vector` against the current pivots without modifying the matrix
    /// and returns `true` when the residual is non-zero (the row would increase
    /// the rank). This is the partial Gaussian reduction the paper's RLNC
    /// baseline uses to detect non-innovative packets on reception; it runs in
    /// a reused scratch buffer and does not clone the vector.
    #[must_use]
    pub fn is_innovative(&self, vector: &CodeVector) -> bool {
        REDUCE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.extend_from_slice(vector.as_words());
            loop {
                match first_one_in_words(&scratch) {
                    None => return false,
                    Some(col) => match self.pivots[col] {
                        Some(row) => xor_words(&mut scratch, self.rows[row].as_words()),
                        None => return true,
                    },
                }
            }
        })
    }

    /// Inserts a row, keeping the matrix in row-echelon form.
    ///
    /// Returns a report stating whether the row was innovative, together with
    /// the new rank and the number of row operations spent. Non-innovative rows
    /// are discarded.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the matrix code length.
    pub fn insert(&mut self, vector: CodeVector) -> RowEchelonReport {
        assert_eq!(vector.len(), self.k, "row length must match code length");
        let (reduced, ops) = self.reduce(vector);
        self.row_ops += ops;
        if let Some(pivot) = reduced.first_one() {
            self.pivots[pivot] = Some(self.rows.len());
            self.rows.push(reduced);
            RowEchelonReport { innovative: true, rank: self.rank(), row_ops: ops }
        } else {
            RowEchelonReport { innovative: false, rank: self.rank(), row_ops: ops }
        }
    }

    /// Reduces a vector against the current pivots, returning the residual and
    /// the number of row XORs spent.
    fn reduce(&self, mut vector: CodeVector) -> (CodeVector, u64) {
        let mut ops = 0;
        loop {
            match vector.first_one() {
                None => return (vector, ops),
                Some(col) => match self.pivots[col] {
                    Some(row) => {
                        vector.xor_assign(&self.rows[row]);
                        ops += 1;
                    }
                    None => return (vector, ops),
                },
            }
        }
    }

    /// Expresses each unknown as a combination of the inserted (original) rows
    /// is not tracked here; instead, callers that need payload recovery keep
    /// payloads aligned with rows via [`Gf2Solver`].
    ///
    /// Returns the reduced rows in pivot order (row-echelon form), mainly for
    /// diagnostics and tests.
    #[must_use]
    pub fn echelon_rows(&self) -> Vec<CodeVector> {
        let mut out: Vec<CodeVector> = Vec::with_capacity(self.rows.len());
        let mut cols: Vec<usize> = (0..self.k).filter(|&c| self.pivots[c].is_some()).collect();
        cols.sort_unstable();
        for c in cols {
            out.push(self.rows[self.pivots[c].expect("pivot present")].clone());
        }
        out
    }
}

impl fmt::Debug for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Matrix(k={}, rank={})", self.k, self.rank())
    }
}

/// A full Gaussian-elimination solver that tracks, for every reduced row, the
/// combination of *original* inserted rows it corresponds to.
///
/// This is what the RLNC decoder needs: once full rank is reached, the solver
/// reports, for each native packet `x_i`, which subset of the received encoded
/// packets must be XOR-ed to recover it. The payload work (the `O(m·k²)` part)
/// is then performed by the caller using that recipe, so the data cost can be
/// measured separately from the control cost, exactly as in Figure 8 of the
/// paper.
#[derive(Clone, Debug)]
pub struct Gf2Solver {
    k: usize,
    /// Reduced code vectors (row-echelon form, one per pivot).
    rows: Vec<CodeVector>,
    /// For each reduced row, the combination of original rows (by insertion index).
    combos: Vec<CodeVector>,
    /// pivot column -> index into rows/combos
    pivots: Vec<Option<usize>>,
    /// Number of original rows inserted (innovative or not).
    inserted: usize,
    /// Maximum number of original rows the combination bitmaps can address.
    capacity: usize,
    row_ops: u64,
}

impl Gf2Solver {
    /// Creates a solver for `k` unknowns able to track up to `capacity` received rows.
    #[must_use]
    pub fn new(k: usize, capacity: usize) -> Self {
        Gf2Solver {
            k,
            rows: Vec::new(),
            combos: Vec::new(),
            pivots: vec![None; k],
            inserted: 0,
            capacity,
            row_ops: 0,
        }
    }

    /// Number of unknowns.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.k
    }

    /// Current rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the system is solvable.
    #[must_use]
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.k
    }

    /// Number of original rows inserted so far (used as the next row id).
    #[must_use]
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Total row XOR operations spent (control-structure cost).
    #[must_use]
    pub fn row_ops(&self) -> u64 {
        self.row_ops
    }

    /// Returns `true` when the vector would increase the rank.
    ///
    /// Reduces into a reused scratch buffer: no clone, no allocation.
    #[must_use]
    pub fn is_innovative(&self, vector: &CodeVector) -> bool {
        REDUCE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.extend_from_slice(vector.as_words());
            loop {
                match first_one_in_words(&scratch) {
                    None => return false,
                    Some(col) => match self.pivots[col] {
                        Some(row) => xor_words(&mut scratch, self.rows[row].as_words()),
                        None => return true,
                    },
                }
            }
        })
    }

    /// Reduce-once insertion for the receive path: reduces `vector` against
    /// the current pivots a single time and stores it only when innovative,
    /// returning the id assigned to the stored row. Redundant vectors consume
    /// no id (callers that keep payload buffers aligned with ids drop the
    /// packet in that case), and the single reduction replaces the
    /// `is_innovative` + [`Gf2Solver::insert`] double walk.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `k`, or if the row would be
    /// innovative and `capacity` rows have already been inserted.
    pub fn insert_if_innovative(&mut self, vector: &CodeVector) -> Option<usize> {
        assert_eq!(vector.len(), self.k, "row length must match code length");
        let mut used_rows: Vec<usize> = Vec::new();
        let residual = REDUCE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.extend_from_slice(vector.as_words());
            loop {
                match first_one_in_words(&scratch) {
                    None => return None,
                    Some(col) => match self.pivots[col] {
                        Some(row) => {
                            xor_words(&mut scratch, self.rows[row].as_words());
                            used_rows.push(row);
                        }
                        None => return Some((col, scratch.clone())),
                    },
                }
            }
        });
        self.row_ops += used_rows.len() as u64;
        let (col, words) = residual?;
        assert!(self.inserted < self.capacity, "solver capacity exceeded");
        let id = self.inserted;
        self.inserted += 1;
        let mut combo = CodeVector::singleton(self.capacity, id);
        for &row in &used_rows {
            combo.xor_assign(&self.combos[row]);
        }
        self.pivots[col] = Some(self.rows.len());
        self.rows.push(CodeVector::from_words(self.k, words));
        self.combos.push(combo);
        Some(id)
    }

    /// Inserts a received code vector. Returns the id assigned to the row (its
    /// insertion index) and whether it was innovative. Non-innovative rows
    /// still consume an id so that callers can keep payload buffers aligned.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from `k` or more than `capacity`
    /// rows have been inserted.
    pub fn insert(&mut self, vector: CodeVector) -> (usize, bool) {
        assert_eq!(vector.len(), self.k, "row length must match code length");
        assert!(self.inserted < self.capacity, "solver capacity exceeded");
        let id = self.inserted;
        self.inserted += 1;

        let mut v = vector;
        let mut combo = CodeVector::singleton(self.capacity, id);
        loop {
            match v.first_one() {
                None => return (id, false),
                Some(col) => match self.pivots[col] {
                    Some(row) => {
                        v.xor_assign(&self.rows[row]);
                        combo.xor_assign(&self.combos[row]);
                        self.row_ops += 1;
                    }
                    None => {
                        self.pivots[col] = Some(self.rows.len());
                        self.rows.push(v);
                        self.combos.push(combo);
                        return (id, true);
                    }
                },
            }
        }
    }

    /// Solves the full-rank system by back-substitution and returns, for each
    /// native packet index `i`, the set of original row ids whose payloads must
    /// be XOR-ed to recover `x_i`.
    ///
    /// # Errors
    ///
    /// Returns [`Gf2Error::NotFullRank`] when fewer than `k` innovative rows
    /// have been inserted.
    pub fn solve(&mut self) -> Result<Vec<CodeVector>, Gf2Error> {
        if !self.is_full_rank() {
            return Err(Gf2Error::NotFullRank { rank: self.rank(), needed: self.k });
        }
        // Back-substitution: process pivot columns from highest to lowest and
        // eliminate that column from every other row.
        let mut rows = self.rows.clone();
        let mut combos = self.combos.clone();
        let pivot_of_col: Vec<usize> = (0..self.k)
            .map(|c| self.pivots[c].expect("full rank implies pivot in every column"))
            .collect();
        for col in (0..self.k).rev() {
            let src = pivot_of_col[col];
            for &dst in &pivot_of_col[..col] {
                if rows[dst].contains(col) {
                    let (src_row, src_combo) = (rows[src].clone(), combos[src].clone());
                    rows[dst].xor_assign(&src_row);
                    combos[dst].xor_assign(&src_combo);
                    self.row_ops += 1;
                }
            }
        }
        // After full reduction, the row whose pivot is column i is exactly e_i.
        let mut recipes = vec![CodeVector::zero(self.capacity); self.k];
        for (col, recipe) in recipes.iter_mut().enumerate() {
            let r = pivot_of_col[col];
            debug_assert_eq!(rows[r].ones(), vec![col], "row must reduce to a unit vector");
            *recipe = combos[r].clone();
        }
        Ok(recipes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cv(k: usize, idx: &[usize]) -> CodeVector {
        CodeVector::from_indices(k, idx)
    }

    #[test]
    fn empty_matrix_has_rank_zero() {
        let m = Gf2Matrix::new(5);
        assert_eq!(m.rank(), 0);
        assert!(!m.is_full_rank());
        assert_eq!(m.code_length(), 5);
    }

    #[test]
    fn inserting_independent_rows_increases_rank() {
        let mut m = Gf2Matrix::new(3);
        assert!(m.insert(cv(3, &[0, 1])).innovative);
        assert!(m.insert(cv(3, &[1, 2])).innovative);
        assert!(m.insert(cv(3, &[2])).innovative);
        assert!(m.is_full_rank());
    }

    #[test]
    fn dependent_row_is_not_innovative() {
        let mut m = Gf2Matrix::new(3);
        m.insert(cv(3, &[0, 1]));
        m.insert(cv(3, &[1, 2]));
        let r = m.insert(cv(3, &[0, 2])); // = row0 + row1
        assert!(!r.innovative);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn zero_row_is_never_innovative() {
        let mut m = Gf2Matrix::new(4);
        assert!(!m.insert(cv(4, &[])).innovative);
        assert!(!m.is_innovative(&cv(4, &[])));
    }

    #[test]
    fn is_innovative_matches_insert() {
        let mut m = Gf2Matrix::new(4);
        m.insert(cv(4, &[0, 1]));
        m.insert(cv(4, &[1, 2]));
        assert!(!m.is_innovative(&cv(4, &[0, 2])));
        assert!(m.is_innovative(&cv(4, &[3])));
        assert!(m.is_innovative(&cv(4, &[0, 3])));
    }

    #[test]
    fn row_ops_are_counted() {
        let mut m = Gf2Matrix::new(4);
        m.insert(cv(4, &[0]));
        let before = m.row_ops();
        m.insert(cv(4, &[0, 1])); // requires one reduction against pivot 0
        assert!(m.row_ops() > before);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn insert_wrong_length_panics() {
        let mut m = Gf2Matrix::new(4);
        m.insert(cv(5, &[0]));
    }

    #[test]
    fn echelon_rows_have_distinct_pivots() {
        let mut m = Gf2Matrix::new(6);
        m.insert(cv(6, &[0, 3, 5]));
        m.insert(cv(6, &[0, 1]));
        m.insert(cv(6, &[1, 2, 3]));
        let rows = m.echelon_rows();
        let pivots: Vec<usize> = rows.iter().map(|r| r.first_one().unwrap()).collect();
        let mut sorted = pivots.clone();
        sorted.dedup();
        assert_eq!(pivots.len(), m.rank());
        assert_eq!(sorted.len(), pivots.len());
    }

    #[test]
    fn solver_recovers_identity_recipes() {
        // Insert unit vectors: recipe for x_i is exactly row i.
        let mut s = Gf2Solver::new(3, 8);
        for i in 0..3 {
            let (id, innovative) = s.insert(cv(3, &[i]));
            assert_eq!(id, i);
            assert!(innovative);
        }
        let recipes = s.solve().unwrap();
        for (i, r) in recipes.iter().enumerate() {
            assert_eq!(r.ones(), vec![i]);
        }
    }

    #[test]
    fn solver_recovers_combined_recipes() {
        // y0 = x0+x1, y1 = x1, y2 = x1+x2
        // => x0 = y0+y1, x1 = y1, x2 = y1+y2
        let mut s = Gf2Solver::new(3, 8);
        s.insert(cv(3, &[0, 1]));
        s.insert(cv(3, &[1]));
        s.insert(cv(3, &[1, 2]));
        let recipes = s.solve().unwrap();
        assert_eq!(recipes[0].ones(), vec![0, 1]);
        assert_eq!(recipes[1].ones(), vec![1]);
        assert_eq!(recipes[2].ones(), vec![1, 2]);
    }

    #[test]
    fn solver_not_full_rank_error() {
        let mut s = Gf2Solver::new(3, 8);
        s.insert(cv(3, &[0, 1]));
        let err = s.solve().unwrap_err();
        assert_eq!(err, Gf2Error::NotFullRank { rank: 1, needed: 3 });
    }

    #[test]
    fn solver_counts_non_innovative_insertions() {
        let mut s = Gf2Solver::new(2, 8);
        let (_, a) = s.insert(cv(2, &[0]));
        let (_, b) = s.insert(cv(2, &[0]));
        assert!(a);
        assert!(!b);
        assert_eq!(s.inserted(), 2);
        assert_eq!(s.rank(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn solver_capacity_is_enforced() {
        let mut s = Gf2Solver::new(2, 1);
        s.insert(cv(2, &[0]));
        s.insert(cv(2, &[1]));
    }

    #[test]
    fn insert_if_innovative_skips_redundant_rows_without_consuming_ids() {
        let mut s = Gf2Solver::new(3, 8);
        assert_eq!(s.insert_if_innovative(&cv(3, &[0, 1])), Some(0));
        assert_eq!(s.insert_if_innovative(&cv(3, &[1, 2])), Some(1));
        // row0 + row1 is dependent: rejected, no id consumed, rank unchanged.
        assert_eq!(s.insert_if_innovative(&cv(3, &[0, 2])), None);
        assert_eq!(s.inserted(), 2);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.insert_if_innovative(&cv(3, &[2])), Some(2));
        assert!(s.is_full_rank());
    }

    #[test]
    fn insert_if_innovative_matches_insert_solutions() {
        // Same rows through both entry points must yield the same recipes.
        let rows: &[&[usize]] = &[&[0, 1], &[1], &[1, 2], &[0, 2], &[2]];
        let mut a = Gf2Solver::new(3, 8);
        let mut b = Gf2Solver::new(3, 8);
        for r in rows {
            let innovative = a.is_innovative(&cv(3, r));
            if innovative {
                a.insert(cv(3, r));
            }
            assert_eq!(b.insert_if_innovative(&cv(3, r)).is_some(), innovative);
        }
        assert_eq!(a.solve().unwrap(), b.solve().unwrap());
    }

    #[test]
    fn insert_if_innovative_counts_row_ops_on_both_paths() {
        let mut s = Gf2Solver::new(3, 8);
        s.insert_if_innovative(&cv(3, &[0]));
        let before = s.row_ops();
        // Redundant row still pays its reduction.
        assert_eq!(s.insert_if_innovative(&cv(3, &[0])), None);
        assert!(s.row_ops() > before);
    }

    #[test]
    fn insert_if_innovative_rejects_zero_row() {
        let mut s = Gf2Solver::new(4, 8);
        assert_eq!(s.insert_if_innovative(&cv(4, &[])), None);
        assert_eq!(s.inserted(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Rank never exceeds min(#rows, k) and innovation implies rank increase.
        #[test]
        fn prop_rank_bounds(rows in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..8), 0..32)) {
            let mut m = Gf2Matrix::new(16);
            let mut innovative_count = 0;
            for r in &rows {
                let before = m.rank();
                let rep = m.insert(cv(16, r));
                if rep.innovative {
                    innovative_count += 1;
                    prop_assert_eq!(m.rank(), before + 1);
                } else {
                    prop_assert_eq!(m.rank(), before);
                }
            }
            prop_assert_eq!(m.rank(), innovative_count);
            prop_assert!(m.rank() <= 16);
        }

        /// When the solver reaches full rank, the recipes actually reconstruct
        /// the unit vectors from the original inserted rows.
        #[test]
        fn prop_solver_recipes_reconstruct_unit_vectors(seed_rows in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 1..6), 24..40)) {
            let k = 8;
            let capacity = seed_rows.len() + k;
            let mut s = Gf2Solver::new(k, capacity);
            let mut originals: Vec<CodeVector> = Vec::new();
            for r in &seed_rows {
                let v = cv(k, r);
                originals.push(v.clone());
                s.insert(v);
            }
            // Top up with unit vectors to guarantee full rank.
            for i in 0..k {
                let v = cv(k, &[i]);
                originals.push(v.clone());
                s.insert(v);
            }
            let recipes = s.solve().unwrap();
            for (i, recipe) in recipes.iter().enumerate() {
                let mut acc = CodeVector::zero(k);
                for row_id in recipe.iter_ones() {
                    acc.xor_assign(&originals[row_id]);
                }
                prop_assert_eq!(acc.ones(), vec![i]);
            }
        }
    }
}
