//! Wire (de)serialization of encoded packets.
//!
//! The paper puts the code vector, "represented by a bitmap", in the header of
//! every packet, followed by the payload. This module implements exactly that
//! framing so packets can be shipped over a real transport (or dumped to disk
//! by the examples):
//!
//! ```text
//! +----------------+----------------+------------------+------------------+
//! | k (u32 LE)     | m (u32 LE)     | bitmap ⌈k/8⌉ B   | payload m bytes  |
//! +----------------+----------------+------------------+------------------+
//! ```
//!
//! The binary feedback channel of the evaluation relies on the receiver seeing
//! the header before the payload: [`decode_header`] only needs the first
//! `8 + ⌈k/8⌉` bytes, so a receiver can run its redundancy / innovation check
//! and abort the transfer without ever reading the payload.

use crate::{CodeVector, EncodedPacket, Gf2Error, Payload};

/// Size in bytes of the fixed part of the header (`k` and `m`).
pub const FIXED_HEADER_BYTES: usize = 8;

/// Total header size (fixed part plus bitmap) for a given code length.
#[must_use]
pub fn header_size(code_length: usize) -> usize {
    FIXED_HEADER_BYTES + code_length.div_ceil(8)
}

/// Incremental ("sans-io") sizing: given any prefix of a frame, returns how
/// many bytes the *complete* frame occupies, or `None` when the prefix is
/// still too short to tell (fewer than [`FIXED_HEADER_BYTES`] bytes) or the
/// advertised sizes overflow `usize`.
///
/// This is what a stream transport uses to reassemble frames: read 8 bytes,
/// call `frame_size`, then read the remainder — and what lets a receiver
/// with a feedback channel budget exactly `header_size(k)` bytes before
/// deciding whether the payload is worth transferring.
///
/// The returned length is whatever the header *claims*: this crate does not
/// know what dimensions are reasonable for your session. A caller buffering
/// untrusted input must cap `k`/`m` before allocating — as
/// `ltnc_net::envelope::required_len` does with its `MAX_CODE_LENGTH` /
/// `MAX_PAYLOAD_SIZE` limits — or a hostile 8-byte header can request a
/// multi-gigabyte read.
#[must_use]
pub fn frame_size(prefix: &[u8]) -> Option<usize> {
    if prefix.len() < FIXED_HEADER_BYTES {
        return None;
    }
    let k = u32::from_le_bytes(prefix[0..4].try_into().expect("4 bytes")) as usize;
    let m = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes")) as usize;
    header_size(k).checked_add(m)
}

/// Serializes only the header (`k`, `m`, bitmap) of a packet whose payload
/// would be `payload_size` bytes. This is what a sender with a feedback
/// channel puts on the wire as its header-first *offer*: the receiver can
/// run [`decode_header`] on it and abort the transfer without a single
/// payload byte having been sent.
#[must_use]
pub fn encode_header(vector: &CodeVector, payload_size: usize) -> Vec<u8> {
    let k = vector.len();
    let mut out = Vec::with_capacity(header_size(k));
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(payload_size as u32).to_le_bytes());
    // The wire bit order (bit i in byte i/8 at position i%8) is exactly the
    // little-endian byte layout of the bitmap words, so they go out whole.
    vector.write_le_bytes(&mut out);
    out
}

/// Serializes a packet into the wire format described in the module docs.
#[must_use]
pub fn encode(packet: &EncodedPacket) -> Vec<u8> {
    let mut out = encode_header(packet.vector(), packet.payload_size());
    out.reserve(packet.payload_size());
    out.extend_from_slice(packet.payload().as_bytes());
    out
}

/// Decodes only the header (code length, payload size, code vector) from the
/// first `header_size(k)` bytes of a frame. This is what a receiver with a
/// feedback channel inspects before accepting the payload.
///
/// # Errors
///
/// Returns [`Gf2Error::LengthMismatch`] when the buffer is too short.
pub fn decode_header(bytes: &[u8]) -> Result<(usize, usize, CodeVector), Gf2Error> {
    if bytes.len() < FIXED_HEADER_BYTES {
        return Err(Gf2Error::LengthMismatch { left: bytes.len(), right: FIXED_HEADER_BYTES });
    }
    let k = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let m = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let needed = header_size(k);
    if bytes.len() < needed {
        return Err(Gf2Error::LengthMismatch { left: bytes.len(), right: needed });
    }
    // Word-at-a-time bitmap decode; padding bits in the final byte are
    // masked off, exactly as the bit-by-bit loop ignored them.
    let vector = CodeVector::from_le_bytes(k, &bytes[FIXED_HEADER_BYTES..needed]);
    Ok((k, m, vector))
}

/// A decoded frame whose payload still borrows the receive buffer.
///
/// The code vector is owned (it is small and every receive path inspects it),
/// but the `m` payload bytes stay in place: a receiver that rejects the
/// packet — redundant vector, completed generation, mismatched session —
/// never copies them. [`PacketView::to_packet`] is the single point where a
/// retained packet pays the copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketView<'buf> {
    vector: CodeVector,
    payload: &'buf [u8],
}

impl<'buf> PacketView<'buf> {
    /// The code vector of the framed packet.
    #[must_use]
    pub fn vector(&self) -> &CodeVector {
        &self.vector
    }

    /// Code length `k`.
    #[must_use]
    pub fn code_length(&self) -> usize {
        self.vector.len()
    }

    /// Payload size `m` in bytes.
    #[must_use]
    pub fn payload_size(&self) -> usize {
        self.payload.len()
    }

    /// The payload bytes, still borrowing the receive buffer.
    #[must_use]
    pub fn payload_bytes(&self) -> &'buf [u8] {
        self.payload
    }

    /// Materializes an owned [`EncodedPacket`], copying the payload out of
    /// the receive buffer. Call this only when the packet is retained.
    #[must_use]
    pub fn to_packet(&self) -> EncodedPacket {
        EncodedPacket::new(self.vector.clone(), Payload::from_slice(self.payload))
    }

    /// Like [`PacketView::to_packet`] but consumes the view, moving the
    /// already-decoded vector instead of cloning it.
    #[must_use]
    pub fn into_packet(self) -> EncodedPacket {
        EncodedPacket::new(self.vector, Payload::from_slice(self.payload))
    }
}

/// Decodes a full frame into a [`PacketView`] borrowing the payload bytes.
///
/// # Errors
///
/// Returns [`Gf2Error::LengthMismatch`] when the buffer is shorter than the
/// header plus the advertised payload size.
pub fn decode_view(bytes: &[u8]) -> Result<PacketView<'_>, Gf2Error> {
    let (k, m, vector) = decode_header(bytes)?;
    let start = header_size(k);
    let end = start + m;
    if bytes.len() < end {
        return Err(Gf2Error::LengthMismatch { left: bytes.len(), right: end });
    }
    Ok(PacketView { vector, payload: &bytes[start..end] })
}

/// Decodes a full frame back into an owned [`EncodedPacket`].
///
/// # Errors
///
/// Returns [`Gf2Error::LengthMismatch`] when the buffer is shorter than the
/// header plus the advertised payload size.
pub fn decode(bytes: &[u8]) -> Result<EncodedPacket, Gf2Error> {
    decode_view(bytes).map(PacketView::into_packet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pk(k: usize, indices: &[usize], payload: &[u8]) -> EncodedPacket {
        EncodedPacket::new(CodeVector::from_indices(k, indices), Payload::from_slice(payload))
    }

    #[test]
    fn header_size_matches_bitmap_rounding() {
        assert_eq!(header_size(8), 8 + 1);
        assert_eq!(header_size(9), 8 + 2);
        assert_eq!(header_size(2048), 8 + 256);
    }

    #[test]
    fn encode_header_is_the_frame_prefix() {
        let p = pk(19, &[0, 7, 8, 18], &[1, 2, 3, 4, 5]);
        let frame = encode(&p);
        let header = encode_header(p.vector(), p.payload_size());
        assert_eq!(header.len(), header_size(19));
        assert_eq!(&frame[..header.len()], &header[..]);
        let (k, m, vector) = decode_header(&header).unwrap();
        assert_eq!((k, m), (19, 5));
        assert_eq!(&vector, p.vector());
    }

    #[test]
    fn frame_size_is_incremental() {
        let p = pk(19, &[0, 7, 18], &[1, 2, 3, 4, 5]);
        let bytes = encode(&p);
        assert_eq!(frame_size(&bytes[..4]), None);
        assert_eq!(frame_size(&bytes[..7]), None);
        for cut in FIXED_HEADER_BYTES..=bytes.len() {
            assert_eq!(frame_size(&bytes[..cut]), Some(bytes.len()));
        }
    }

    #[test]
    fn roundtrip_preserves_packet() {
        let p = pk(19, &[0, 7, 8, 18], &[1, 2, 3, 4, 5]);
        let bytes = encode(&p);
        assert_eq!(bytes.len(), header_size(19) + 5);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn header_alone_is_enough_for_the_vector() {
        let p = pk(40, &[3, 31, 39], &[9; 16]);
        let bytes = encode(&p);
        let header_only = &bytes[..header_size(40)];
        let (k, m, vector) = decode_header(header_only).unwrap();
        assert_eq!(k, 40);
        assert_eq!(m, 16);
        assert_eq!(&vector, p.vector());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let p = pk(16, &[1], &[7; 4]);
        let bytes = encode(&p);
        assert!(decode_header(&bytes[..4]).is_err());
        assert!(decode_header(&bytes[..9]).is_err());
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn zero_degree_and_empty_payload_roundtrip() {
        let p = EncodedPacket::new(CodeVector::zero(5), Payload::zero(0));
        let decoded = decode(&encode(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    /// Golden bytes: the exact frame for a fixed packet. Pins the wire format
    /// so the word-sliced bitmap encode/decode cannot change bytes on the
    /// wire (bit `i` of the bitmap lives in byte `i/8` at position `i%8`).
    #[test]
    fn golden_frame_bytes_are_stable() {
        let p = pk(19, &[0, 7, 8, 18], &[1, 2, 3, 4, 5]);
        let expected: &[u8] = &[
            0x13, 0x00, 0x00, 0x00, // k = 19, u32 LE
            0x05, 0x00, 0x00, 0x00, // m = 5, u32 LE
            0x81, 0x01, 0x04, // bitmap: bits 0,7 | bit 8 | bit 18
            0x01, 0x02, 0x03, 0x04, 0x05, // payload
        ];
        assert_eq!(encode(&p), expected);
        assert_eq!(encode_header(p.vector(), 5), &expected[..header_size(19)]);
        assert_eq!(decode(expected).unwrap(), p);
    }

    #[test]
    fn decode_view_borrows_the_payload_in_place() {
        let p = pk(19, &[0, 7, 8, 18], &[1, 2, 3, 4, 5]);
        let bytes = encode(&p);
        let view = decode_view(&bytes).unwrap();
        assert_eq!(view.vector(), p.vector());
        assert_eq!(view.code_length(), 19);
        assert_eq!(view.payload_size(), 5);
        // The view's payload is the frame's own bytes, not a copy.
        assert!(std::ptr::eq(view.payload_bytes().as_ptr(), bytes[header_size(19)..].as_ptr()));
        assert_eq!(view.to_packet(), p);
        assert_eq!(view.into_packet(), p);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            k in 1usize..200,
            indices in proptest::collection::vec(0usize..200, 0..20),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let indices: Vec<usize> = indices.into_iter().map(|i| i % k).collect();
            let p = pk(k, &indices, &payload);
            let decoded = decode(&encode(&p)).unwrap();
            prop_assert_eq!(decoded, p);
        }

        // The truncation paths are the ones a real socket will hit: a
        // short read must surface as an error from every entry point,
        // never a panic, for every cut of every random frame.
        #[test]
        fn prop_truncations_error_never_panic(
            k in 1usize..200,
            indices in proptest::collection::vec(0usize..200, 0..20),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
            cut_seed in any::<u64>(),
        ) {
            let indices: Vec<usize> = indices.into_iter().map(|i| i % k).collect();
            let p = pk(k, &indices, &payload);
            let bytes = encode(&p);
            let cut = (cut_seed as usize) % bytes.len();
            let prefix = &bytes[..cut];
            prop_assert!(decode(prefix).is_err());
            // decode_header succeeds from header_size(k) onward, errors
            // strictly before, and frame_size is consistent throughout.
            if cut < header_size(k) {
                prop_assert!(decode_header(prefix).is_err());
            } else {
                prop_assert!(decode_header(prefix).is_ok());
            }
            if cut < FIXED_HEADER_BYTES {
                prop_assert_eq!(frame_size(prefix), None);
            } else {
                prop_assert_eq!(frame_size(prefix), Some(bytes.len()));
            }
        }

        // Arbitrary bytes (not produced by encode) must also decode
        // without panicking: either some packet comes back or an error
        // does, and a successful decode must re-encode to a frame prefix.
        #[test]
        fn prop_garbage_never_panics(
            bytes in proptest::collection::vec(any::<u8>(), 0..96),
        ) {
            // Keep the advertised k bounded so a "lucky" garbage header
            // cannot request a huge bitmap allocation in this test.
            let mut bytes = bytes;
            if bytes.len() >= 4 {
                bytes[2] = 0;
                bytes[3] = 0;
            }
            if let Ok(packet) = decode(&bytes) {
                let reencoded = encode(&packet);
                prop_assert_eq!(&bytes[..reencoded.len()], &reencoded[..]);
            }
            let _ = decode_header(&bytes);
            let _ = frame_size(&bytes);
        }
    }
}
