use core::fmt;

/// Errors produced by GF(2) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Gf2Error {
    /// Two operands had incompatible lengths (code length or payload size).
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// An index was outside the code length.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The code length.
        len: usize,
    },
    /// A decode was attempted before the system was solvable.
    NotFullRank {
        /// Current rank of the system.
        rank: usize,
        /// Number of unknowns (code length).
        needed: usize,
    },
}

impl fmt::Display for Gf2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gf2Error::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            Gf2Error::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            Gf2Error::NotFullRank { rank, needed } => {
                write!(f, "system not full rank: rank {rank} of {needed}")
            }
        }
    }
}

impl std::error::Error for Gf2Error {}
