//! Disseminates an object across a multi-hop overlay topology under
//! seeded per-link loss, for each scheme (WC, LTNC, RLNC) — the paper's
//! in-network recoding claim exercised end to end over real UDP: on a
//! line, every byte reaching the far node has crossed every interior
//! relay, and each relay recodes from whatever it holds.
//!
//! ```text
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- \
//!     --topology line --nodes 7 --loss 0.2 --scheme ltnc
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- \
//!     --topology kregular --nodes 10 --degree 3 --loss 0.3
//! # the CI smoke configuration (a lossy 4-hop line, seconds):
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- --smoke
//! ```
//!
//! Without `--scheme`, all three schemes run on the same object and
//! topology so their wire costs are comparable. `--loss` / `--reorder` /
//! `--dup` build a per-directed-link fault template (`--fault-seed`,
//! default from `LTNC_FAULT_SEED`); each link gets its own re-mixed
//! seed, and the per-hop/per-link tables below attribute exactly where
//! the faults landed. For `--topology star`, the source defaults to a
//! leaf so the hub actually relays (override with `--source`).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_telemetry::json::JsonValue;
use ltnc_topo::{
    run_topology, FlightRecorder, SwarmRuntime, Topology, TopologyConfig, TopologyFaults,
    TopologyReport,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    topology: String,
    nodes: usize,
    degree: usize,
    source: Option<usize>,
    size: usize,
    k: usize,
    m: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
    loss: f64,
    reorder: f64,
    dup: f64,
    fault_seed: u64,
    /// Per-node trace ring capacity; `--report` turns tracing on by
    /// default so the report carries first-delivery-by-hop times.
    trace_capacity: Option<usize>,
    report: Option<String>,
    /// Which scheduler runs the nodes (`--runtime
    /// threaded|sharded:<workers>`); sharded runs carry a per-shard
    /// reactor rollup into the report.
    runtime: SwarmRuntime,
    /// Aggregated scrape endpoint for the whole swarm (`--metrics
    /// ADDR`): one `/metrics` + `/metrics.json` no matter the node
    /// count.
    metrics: Option<SocketAddr>,
    /// Arms the sharded runtime's stall watchdog (`--flight-dump
    /// PATH`): a stalled or timed-out run writes its flight-recorder
    /// post-mortem here.
    flight_dump: Option<String>,
    smoke: bool,
}

/// `threaded`, `sharded` (4 workers), or `sharded:<workers>`.
fn parse_runtime(name: &str) -> Result<SwarmRuntime, String> {
    match name {
        "threaded" => Ok(SwarmRuntime::Threaded),
        "sharded" => Ok(SwarmRuntime::Sharded { workers: 4 }),
        other => match other.strip_prefix("sharded:") {
            Some(workers) => Ok(SwarmRuntime::Sharded {
                workers: workers
                    .parse()
                    .map_err(|e| format!("--runtime sharded:<workers>: {e}"))?,
            }),
            None => Err(format!("unknown runtime {name} (threaded|sharded:<workers>)")),
        },
    }
}

fn parse_args() -> Result<Args, String> {
    // Flags the --smoke preset would also set are collected as explicit
    // overrides first, so `--loss 0.3 --smoke` means "the smoke run, but
    // at 30% loss" — never a silently discarded flag.
    let mut topology = None;
    let mut nodes = None;
    let mut size = None;
    let mut k = None;
    let mut m = None;
    let mut loss = None;
    let mut timeout_secs = None;
    let mut args = Args {
        topology: String::new(),
        nodes: 0,
        degree: 3,
        source: None,
        size: 0,
        k: 0,
        m: 0,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 0,
        loss: 0.0,
        reorder: 0.0,
        dup: 0.0,
        fault_seed: std::env::var("LTNC_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xF00D),
        trace_capacity: None,
        report: None,
        runtime: SwarmRuntime::Threaded,
        metrics: None,
        flight_dump: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--topology" => topology = Some(value("--topology")?),
            "--nodes" => {
                nodes = Some(value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?);
            }
            "--degree" => {
                args.degree = value("--degree")?.parse().map_err(|e| format!("--degree: {e}"))?;
            }
            "--source" => {
                args.source =
                    Some(value("--source")?.parse().map_err(|e| format!("--source: {e}"))?);
            }
            "--size" => {
                size = Some(value("--size")?.parse().map_err(|e| format!("--size: {e}"))?);
            }
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--m" => m = Some(value("--m")?.parse().map_err(|e| format!("--m: {e}"))?),
            "--timeout" => {
                timeout_secs =
                    Some(value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?);
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--loss" => {
                loss = Some(value("--loss")?.parse().map_err(|e| format!("--loss: {e}"))?);
            }
            "--reorder" => {
                args.reorder =
                    value("--reorder")?.parse().map_err(|e| format!("--reorder: {e}"))?;
            }
            "--dup" => args.dup = value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?,
            "--fault-seed" => {
                args.fault_seed =
                    value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--trace" => {
                args.trace_capacity =
                    Some(value("--trace")?.parse().map_err(|e| format!("--trace: {e}"))?);
            }
            "--report" => args.report = Some(value("--report")?),
            "--runtime" => args.runtime = parse_runtime(&value("--runtime")?)?,
            "--metrics" => {
                args.metrics =
                    Some(value("--metrics")?.parse().map_err(|e| format!("--metrics: {e}"))?);
            }
            "--flight-dump" => args.flight_dump = Some(value("--flight-dump")?),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: multi_hop_dissemination \
                     [--topology line|ring|star|tree|complete|kregular] [--nodes N] \
                     [--degree D] [--source IDX] [--size BYTES] [--k K] [--m M] \
                     [--scheme wc|rlnc|ltnc] [--timeout SECS] [--loss RATE] \
                     [--reorder RATE] [--dup RATE] [--fault-seed N] \
                     [--trace EVENTS] [--report PATH] \
                     [--runtime threaded|sharded:<workers>] [--metrics ADDR] \
                     [--flight-dump PATH] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // Base defaults, or the CI smoke preset (a 4-hop line with 10%
    // seeded per-link loss, a small object, every scheme — relays in the
    // path of every byte, done in seconds); explicit flags win either
    // way.
    let (d_topology, d_nodes, d_size, d_k, d_m, d_loss, d_timeout) = if args.smoke {
        ("line", 5, 2 * 1024, 8, 32, 0.10, 60)
    } else {
        ("line", 5, 16 * 1024, 16, 64, 0.15, 120)
    };
    args.topology = topology.unwrap_or_else(|| d_topology.to_string());
    args.nodes = nodes.unwrap_or(d_nodes);
    args.size = size.unwrap_or(d_size);
    args.k = k.unwrap_or(d_k);
    args.m = m.unwrap_or(d_m);
    args.loss = loss.unwrap_or(d_loss);
    args.timeout_secs = timeout_secs.unwrap_or(d_timeout);
    // A report without tracing would miss its first-delivery tables.
    if args.report.is_some() && args.trace_capacity.is_none() {
        args.trace_capacity = Some(65_536);
    }
    Ok(args)
}

fn build_topology(args: &Args) -> Result<Topology, String> {
    match args.topology.as_str() {
        "line" => Ok(Topology::line(args.nodes)),
        "ring" => Ok(Topology::ring(args.nodes)),
        "star" => Ok(Topology::star(args.nodes)),
        "tree" => Ok(Topology::binary_tree(args.nodes)),
        "complete" => Ok(Topology::complete(args.nodes)),
        "kregular" => Ok(Topology::random_regular(args.nodes, args.degree, args.fault_seed)),
        other => Err(format!("unknown topology {other} (line|ring|star|tree|complete|kregular)")),
    }
}

fn report_row(report: &TopologyReport, peers: usize) -> String {
    let wire = &report.swarm.total_wire;
    let dropped: u64 = report.link_faults.iter().map(|&(_, _, c)| c.dropped_in).sum();
    format!(
        "{:<5} {:>9} {:>5} {:>9} {:>11} {:>13} {:>13} {:>11} {:>9} {:>8}",
        report.swarm.scheme.label(),
        format!("{}/{}", report.swarm.peers_complete, peers),
        report.max_hops(),
        format!("{:.2}s", report.swarm.elapsed.as_secs_f64()),
        format!("{:.1} KB/s", report.goodput_bytes_per_sec() / 1024.0),
        wire.bytes_sent,
        report.relay_recoding_ops,
        dropped,
        wire.offer_timeouts,
        if report.swarm.bit_exact { "yes" } else { "NO" },
    )
}

/// The shared latency sub-object every `--report` writer in the
/// workspace emits: microsecond origin→delivery percentiles out of the
/// wire-carried trace context.
fn latency_json(snapshot: &ltnc_metrics::LogHistogramSnapshot) -> JsonValue {
    JsonValue::object()
        .field("unit", "us")
        .field("count", snapshot.count())
        .field("mean", snapshot.mean())
        .field("p50", snapshot.p50())
        .field("p90", snapshot.p90())
        .field("p99", snapshot.p99())
        .field("max", snapshot.quantile(1.0))
}

/// The scheduler-side sub-object a sharded run carries: per-shard
/// reactor counters rolled into one total (poll-wait / dispatch /
/// tick-lag percentiles included), plus per-shard turn and node counts
/// so shard skew is readable at a glance.
fn reactor_json(shards: &[ltnc_metrics::ReactorSnapshot]) -> JsonValue {
    let mut total = ltnc_metrics::ReactorSnapshot::new();
    for shard in shards {
        total.merge(shard);
    }
    let histogram = |snapshot: &ltnc_metrics::LogHistogramSnapshot, unit: &str| {
        JsonValue::object()
            .field("unit", unit)
            .field("count", snapshot.count())
            .field("mean", snapshot.mean())
            .field("p50", snapshot.p50())
            .field("p99", snapshot.p99())
            .field("max", snapshot.quantile(1.0))
    };
    let per_shard = shards
        .iter()
        .enumerate()
        .map(|(shard, s)| {
            JsonValue::object()
                .field("shard", shard)
                .field("nodes", s.nodes)
                .field("turns", s.turns)
                .field("timers_fired", s.timers_fired)
        })
        .collect();
    JsonValue::object()
        .field("shards", shards.len())
        .field("nodes", total.nodes)
        .field("turns", total.turns)
        .field("polls", total.polls)
        .field("poll_events", total.poll_events)
        .field("wakeups", total.wakeups)
        .field("wakeup_rounds", total.wakeup_rounds)
        .field("control_messages", total.control_messages)
        .field("control_high_watermark", total.control_high_watermark)
        .field("readable_dispatches", total.readable_dispatches)
        .field("timer_dispatches", total.timer_dispatches)
        .field("control_dispatches", total.control_dispatches)
        .field("timers_fired", total.timers_fired)
        .field("poll_wait", histogram(&total.poll_wait_us, "us"))
        .field("dispatch", histogram(&total.dispatch_ns, "ns"))
        .field("tick_lag", histogram(&total.tick_lag_us, "us"))
        .field("per_shard", JsonValue::array(per_shard))
}

/// Renders the run as a machine-readable document: the exact seeded
/// configuration, then per scheme the swarm outcome, wire totals, the
/// per-hop rollup, where each directed link's faults landed, and (when
/// tracing is on) the first-delivery time at each hop distance.
fn render_report(args: &Args, source: usize, results: &[(SchemeKind, TopologyReport)]) -> String {
    let config = JsonValue::object()
        .field("topology", args.topology.as_str())
        .field("nodes", args.nodes)
        .field("degree", args.degree)
        .field("source", source)
        .field("object_bytes", args.size)
        .field("k", args.k)
        .field("m", args.m)
        .field("timeout_secs", args.timeout_secs)
        .field("loss", args.loss)
        .field("reorder", args.reorder)
        .field("dup", args.dup)
        .field("fault_seed", args.fault_seed)
        .field("trace_capacity", args.trace_capacity.map_or(JsonValue::Null, JsonValue::from))
        .field(
            "runtime",
            match args.runtime {
                SwarmRuntime::Threaded => "threaded".to_string(),
                SwarmRuntime::Sharded { workers } => format!("sharded:{workers}"),
            },
        )
        .field(
            "metrics_bind",
            args.metrics.map_or(JsonValue::Null, |addr| JsonValue::from(addr.to_string())),
        );

    let schemes = results
        .iter()
        .map(|(scheme, report)| {
            let mut wire = JsonValue::object();
            for sample in ltnc_telemetry::wire_samples(&report.swarm.total_wire) {
                wire = wire.field(sample.name, sample.value);
            }
            let per_hop = report
                .hops
                .iter()
                .map(|(distance, stats)| {
                    JsonValue::object()
                        .field("distance", distance)
                        .field("nodes", stats.nodes)
                        .field("completed", stats.completed)
                        .field("recoding_ops", stats.recoding_ops)
                        .field("decoding_ops", stats.decoding_ops)
                        .field("useful_deliveries", stats.useful_deliveries)
                        .field("faults_injected", stats.faults_injected)
                })
                .collect();
            let link_faults = report
                .link_faults
                .iter()
                .map(|&(from, to, c)| {
                    JsonValue::object()
                        .field("from", from)
                        .field("to", to)
                        .field("dropped_in", c.dropped_in)
                        .field("dropped_out", c.dropped_out)
                        .field("duplicated_in", c.duplicated_in)
                        .field("duplicated_out", c.duplicated_out)
                        .field("reordered_in", c.reordered_in)
                        .field("reordered_out", c.reordered_out)
                        .field("delayed_in", c.delayed_in)
                        .field("delayed_out", c.delayed_out)
                })
                .collect();
            let first_delivery = report
                .first_delivery_by_hop
                .iter()
                .map(|at| at.map_or(JsonValue::Null, |d| JsonValue::from(d.as_secs_f64())))
                .collect();
            let mut total_latency = ltnc_metrics::LogHistogramSnapshot::empty();
            let latency_by_hop = report
                .latency_by_hop
                .iter()
                .map(|(hops, snapshot)| {
                    total_latency.merge(snapshot);
                    latency_json(snapshot).field("hops", *hops)
                })
                .collect();
            JsonValue::object()
                .field("scheme", scheme.label())
                .field("converged", report.swarm.converged)
                .field("bit_exact", report.swarm.bit_exact)
                .field("peers_complete", report.swarm.peers_complete)
                .field("peers", args.nodes.saturating_sub(1))
                .field("elapsed_secs", report.swarm.elapsed.as_secs_f64())
                .field("goodput_bytes_per_sec", report.goodput_bytes_per_sec())
                .field("max_hops", report.max_hops())
                .field("relay_recoding_ops", report.relay_recoding_ops)
                .field("latency", latency_json(&total_latency))
                .field("latency_by_hop", JsonValue::array(latency_by_hop))
                .field(
                    "reactor",
                    if report.swarm.reactor.is_empty() {
                        JsonValue::Null
                    } else {
                        reactor_json(&report.swarm.reactor)
                    },
                )
                .field("wire", wire)
                .field("per_hop", JsonValue::array(per_hop))
                .field("link_faults", JsonValue::array(link_faults))
                .field("first_delivery_by_hop_secs", JsonValue::array(first_delivery))
        })
        .collect();

    JsonValue::object()
        .field("schema_version", ltnc_telemetry::json::REPORT_SCHEMA_VERSION)
        .field("example", "multi_hop_dissemination")
        .field("config", config)
        .field("schemes", JsonValue::array(schemes))
        .render()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topology = match build_topology(&args) {
        Ok(topology) => topology,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // On a star the hub is node 0: source at a leaf, or nothing relays.
    let source = args.source.unwrap_or(usize::from(args.topology == "star"));

    let mut rng = SmallRng::seed_from_u64(0x0070_F11E);
    let mut object = vec![0u8; args.size];
    rng.fill(&mut object[..]);

    let link_faults = if args.loss > 0.0 || args.reorder > 0.0 || args.dup > 0.0 {
        TopologyFaults::uniform(
            DatagramFaultPlan::clean(args.fault_seed)
                .drop_rate(args.loss)
                .duplicate_rate(args.dup)
                .reorder(args.reorder, 8),
        )
    } else {
        TopologyFaults::default()
    };

    println!(
        "topology: {} (source at node {source}, {} directed links), object: {} bytes, \
         k = {}, m = {}",
        topology.label(),
        topology.directed_links().len(),
        object.len(),
        args.k,
        args.m,
    );
    println!(
        "per-link faults: loss {:.0}% / reorder {:.0}% / dup {:.0}% (seed {:#x})",
        args.loss * 100.0,
        args.reorder * 100.0,
        args.dup * 100.0,
        args.fault_seed,
    );
    if let SwarmRuntime::Sharded { workers } = args.runtime {
        println!("runtime: sharded reactor, {workers} workers");
    }
    if let Some(addr) = args.metrics {
        println!("aggregated scrape endpoint: http://{addr}/metrics (every node, one page)");
    }
    println!();
    println!(
        "{:<5} {:>9} {:>5} {:>9} {:>11} {:>13} {:>13} {:>11} {:>9} {:>8}",
        "sch",
        "complete",
        "hops",
        "time",
        "goodput",
        "bytes-sent",
        "relay-recode",
        "link-drops",
        "timeouts",
        "exact"
    );

    let peers = topology.nodes() - 1;
    let mut all_ok = true;
    let mut results: Vec<(SchemeKind, TopologyReport)> = Vec::new();
    for scheme in args.schemes.clone() {
        let config = TopologyConfig {
            scheme,
            object: object.clone(),
            code_length: args.k,
            payload_size: args.m,
            topology: topology.clone(),
            source,
            options: NodeOptions {
                seed: 0x70 + u64::from(scheme.wire_id()),
                ..NodeOptions::default()
            },
            timeout: Duration::from_secs(args.timeout_secs),
            session: 0x70F0_0000 + u64::from(scheme.wire_id()),
            link_faults: link_faults.clone(),
            node_faults: None,
            trace_capacity: args.trace_capacity,
            runtime: args.runtime,
            metrics_bind: args.metrics,
            flight_recorder: args.flight_dump.as_ref().map(|path| FlightRecorder {
                dump_path: Some(path.into()),
                ..FlightRecorder::default()
            }),
        };
        match run_topology(&config) {
            Ok(report) => {
                println!("{}", report_row(&report, peers));
                if !(report.swarm.converged && report.swarm.bit_exact) {
                    all_ok = false;
                }
                results.push((scheme, report));
            }
            Err(e) => {
                eprintln!("{}: topology run failed: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    for (scheme, report) in &results {
        println!("\nper-hop rollup ({}):", scheme.label());
        print!("{}", report.hops);
        if !report.swarm.reactor.is_empty() {
            let mut total = ltnc_metrics::ReactorSnapshot::new();
            for shard in &report.swarm.reactor {
                total.merge(shard);
            }
            println!(
                "reactor: {} shards, {} turns, {} timers fired, poll-wait p99 {:.0}us, \
                 dispatch p99 {:.0}ns",
                report.swarm.reactor.len(),
                total.turns,
                total.timers_fired,
                total.poll_wait_us.p99(),
                total.dispatch_ns.p99(),
            );
        }
    }

    if let Some(path) = &args.report {
        let json = render_report(&args, source, &results);
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("error: writing report {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nreport written to {path}");
    }

    if all_ok {
        println!(
            "\nall schemes converged bit-exactly across {} hops",
            topology.eccentricity(source)
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome schemes failed to converge or verify");
        ExitCode::FAILURE
    }
}
