//! Disseminates an object across a multi-hop overlay topology under
//! seeded per-link loss, for each scheme (WC, LTNC, RLNC) — the paper's
//! in-network recoding claim exercised end to end over real UDP: on a
//! line, every byte reaching the far node has crossed every interior
//! relay, and each relay recodes from whatever it holds.
//!
//! ```text
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- \
//!     --topology line --nodes 7 --loss 0.2 --scheme ltnc
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- \
//!     --topology kregular --nodes 10 --degree 3 --loss 0.3
//! # the CI smoke configuration (a lossy 4-hop line, seconds):
//! cargo run --release -p ltnc-topo --example multi_hop_dissemination -- --smoke
//! ```
//!
//! Without `--scheme`, all three schemes run on the same object and
//! topology so their wire costs are comparable. `--loss` / `--reorder` /
//! `--dup` build a per-directed-link fault template (`--fault-seed`,
//! default from `LTNC_FAULT_SEED`); each link gets its own re-mixed
//! seed, and the per-hop/per-link tables below attribute exactly where
//! the faults landed. For `--topology star`, the source defaults to a
//! leaf so the hub actually relays (override with `--source`).

use std::process::ExitCode;
use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, Topology, TopologyConfig, TopologyFaults, TopologyReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    topology: String,
    nodes: usize,
    degree: usize,
    source: Option<usize>,
    size: usize,
    k: usize,
    m: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
    loss: f64,
    reorder: f64,
    dup: f64,
    fault_seed: u64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    // Flags the --smoke preset would also set are collected as explicit
    // overrides first, so `--loss 0.3 --smoke` means "the smoke run, but
    // at 30% loss" — never a silently discarded flag.
    let mut topology = None;
    let mut nodes = None;
    let mut size = None;
    let mut k = None;
    let mut m = None;
    let mut loss = None;
    let mut timeout_secs = None;
    let mut args = Args {
        topology: String::new(),
        nodes: 0,
        degree: 3,
        source: None,
        size: 0,
        k: 0,
        m: 0,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 0,
        loss: 0.0,
        reorder: 0.0,
        dup: 0.0,
        fault_seed: std::env::var("LTNC_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xF00D),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--topology" => topology = Some(value("--topology")?),
            "--nodes" => {
                nodes = Some(value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?);
            }
            "--degree" => {
                args.degree = value("--degree")?.parse().map_err(|e| format!("--degree: {e}"))?;
            }
            "--source" => {
                args.source =
                    Some(value("--source")?.parse().map_err(|e| format!("--source: {e}"))?);
            }
            "--size" => {
                size = Some(value("--size")?.parse().map_err(|e| format!("--size: {e}"))?);
            }
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--m" => m = Some(value("--m")?.parse().map_err(|e| format!("--m: {e}"))?),
            "--timeout" => {
                timeout_secs =
                    Some(value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?);
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--loss" => {
                loss = Some(value("--loss")?.parse().map_err(|e| format!("--loss: {e}"))?);
            }
            "--reorder" => {
                args.reorder =
                    value("--reorder")?.parse().map_err(|e| format!("--reorder: {e}"))?;
            }
            "--dup" => args.dup = value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?,
            "--fault-seed" => {
                args.fault_seed =
                    value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "usage: multi_hop_dissemination \
                     [--topology line|ring|star|tree|complete|kregular] [--nodes N] \
                     [--degree D] [--source IDX] [--size BYTES] [--k K] [--m M] \
                     [--scheme wc|rlnc|ltnc] [--timeout SECS] [--loss RATE] \
                     [--reorder RATE] [--dup RATE] [--fault-seed N] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // Base defaults, or the CI smoke preset (a 4-hop line with 10%
    // seeded per-link loss, a small object, every scheme — relays in the
    // path of every byte, done in seconds); explicit flags win either
    // way.
    let (d_topology, d_nodes, d_size, d_k, d_m, d_loss, d_timeout) = if args.smoke {
        ("line", 5, 2 * 1024, 8, 32, 0.10, 60)
    } else {
        ("line", 5, 16 * 1024, 16, 64, 0.15, 120)
    };
    args.topology = topology.unwrap_or_else(|| d_topology.to_string());
    args.nodes = nodes.unwrap_or(d_nodes);
    args.size = size.unwrap_or(d_size);
    args.k = k.unwrap_or(d_k);
    args.m = m.unwrap_or(d_m);
    args.loss = loss.unwrap_or(d_loss);
    args.timeout_secs = timeout_secs.unwrap_or(d_timeout);
    Ok(args)
}

fn build_topology(args: &Args) -> Result<Topology, String> {
    match args.topology.as_str() {
        "line" => Ok(Topology::line(args.nodes)),
        "ring" => Ok(Topology::ring(args.nodes)),
        "star" => Ok(Topology::star(args.nodes)),
        "tree" => Ok(Topology::binary_tree(args.nodes)),
        "complete" => Ok(Topology::complete(args.nodes)),
        "kregular" => Ok(Topology::random_regular(args.nodes, args.degree, args.fault_seed)),
        other => Err(format!("unknown topology {other} (line|ring|star|tree|complete|kregular)")),
    }
}

fn report_row(report: &TopologyReport, peers: usize) -> String {
    let wire = &report.swarm.total_wire;
    let dropped: u64 = report.link_faults.iter().map(|&(_, _, c)| c.dropped_in).sum();
    format!(
        "{:<5} {:>9} {:>5} {:>9} {:>11} {:>13} {:>13} {:>11} {:>9} {:>8}",
        report.swarm.scheme.label(),
        format!("{}/{}", report.swarm.peers_complete, peers),
        report.max_hops(),
        format!("{:.2}s", report.swarm.elapsed.as_secs_f64()),
        format!("{:.1} KB/s", report.goodput_bytes_per_sec() / 1024.0),
        wire.bytes_sent,
        report.relay_recoding_ops,
        dropped,
        wire.offer_timeouts,
        if report.swarm.bit_exact { "yes" } else { "NO" },
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let topology = match build_topology(&args) {
        Ok(topology) => topology,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // On a star the hub is node 0: source at a leaf, or nothing relays.
    let source = args.source.unwrap_or(usize::from(args.topology == "star"));

    let mut rng = SmallRng::seed_from_u64(0x0070_F11E);
    let mut object = vec![0u8; args.size];
    rng.fill(&mut object[..]);

    let link_faults = if args.loss > 0.0 || args.reorder > 0.0 || args.dup > 0.0 {
        TopologyFaults::uniform(
            DatagramFaultPlan::clean(args.fault_seed)
                .drop_rate(args.loss)
                .duplicate_rate(args.dup)
                .reorder(args.reorder, 8),
        )
    } else {
        TopologyFaults::default()
    };

    println!(
        "topology: {} (source at node {source}, {} directed links), object: {} bytes, \
         k = {}, m = {}",
        topology.label(),
        topology.directed_links().len(),
        object.len(),
        args.k,
        args.m,
    );
    println!(
        "per-link faults: loss {:.0}% / reorder {:.0}% / dup {:.0}% (seed {:#x})",
        args.loss * 100.0,
        args.reorder * 100.0,
        args.dup * 100.0,
        args.fault_seed,
    );
    println!();
    println!(
        "{:<5} {:>9} {:>5} {:>9} {:>11} {:>13} {:>13} {:>11} {:>9} {:>8}",
        "sch",
        "complete",
        "hops",
        "time",
        "goodput",
        "bytes-sent",
        "relay-recode",
        "link-drops",
        "timeouts",
        "exact"
    );

    let peers = topology.nodes() - 1;
    let mut all_ok = true;
    let mut per_hop = Vec::new();
    for scheme in args.schemes.clone() {
        let config = TopologyConfig {
            scheme,
            object: object.clone(),
            code_length: args.k,
            payload_size: args.m,
            topology: topology.clone(),
            source,
            options: NodeOptions {
                seed: 0x70 + u64::from(scheme.wire_id()),
                ..NodeOptions::default()
            },
            timeout: Duration::from_secs(args.timeout_secs),
            session: 0x70F0_0000 + u64::from(scheme.wire_id()),
            link_faults: link_faults.clone(),
            node_faults: None,
        };
        match run_topology(&config) {
            Ok(report) => {
                println!("{}", report_row(&report, peers));
                if !(report.swarm.converged && report.swarm.bit_exact) {
                    all_ok = false;
                }
                per_hop.push((scheme, report.hops));
            }
            Err(e) => {
                eprintln!("{}: topology run failed: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    for (scheme, hops) in per_hop {
        println!("\nper-hop rollup ({}):", scheme.label());
        print!("{hops}");
    }

    if all_ok {
        println!(
            "\nall schemes converged bit-exactly across {} hops",
            topology.eccentricity(source)
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome schemes failed to converge or verify");
        ExitCode::FAILURE
    }
}
