//! Multi-hop overlay topologies with in-network recoding relays.
//!
//! The paper's headline claim is that LTNC lets *intermediate* nodes
//! recode LT symbols without decoding — yet the flat localhost swarm
//! (`ltnc_net::swarm`) and the 1-hop serving path never force a packet
//! through a relay: every receiver is one UDP hop from the source. This
//! crate closes that gap. A [`Topology`] declares which overlay node may
//! talk to which (line, ring, star, binary tree, complete, seeded random
//! k-regular, or an explicit edge list), [`run_topology`] lowers it onto
//! the wiring-generic swarm harness with *neighbour-restricted* push
//! sets — so on a line, every byte reaching the far end has crossed
//! every interior relay, each of which starts empty and recodes from
//! whatever it has decoded so far — and [`TopologyReport`] attributes
//! the outcome per hop ([`ltnc_metrics::HopCounters`]) and per link.
//!
//! Loss is declared per *directed link* ([`TopologyFaults`]): one seeded
//! [`ltnc_net::faults::DatagramFaultPlan`] template re-mixed per link
//! (plus explicit overrides), installed as per-origin plans on each
//! receiving node's [`ltnc_net::faults::FaultySocket`]. One seed
//! describes the whole overlay's loss pattern, and every injected fault
//! stays attributable to the link that ate it — the multi-hop lossy
//! channel of Kabore et al. (arXiv:1509.06019), reproducible byte for
//! byte.
//!
//! The legacy full-mesh swarm is the trivial case: a complete topology
//! with the source at index 0 lowers to exactly the legacy wiring (the
//! equivalence is asserted by this crate's tests).
//!
//! # Example
//!
//! ```
//! use ltnc_scheme::SchemeKind;
//! use ltnc_topo::{run_topology, Topology, TopologyConfig};
//!
//! // A 2-hop line: source → relay → leaf. The relay starts empty and
//! // recodes; the leaf can only ever hear the relay.
//! let object: Vec<u8> = (0..400u32).map(|i| (i * 7 % 256) as u8).collect();
//! let mut config = TopologyConfig::quick(SchemeKind::Rlnc, object, Topology::line(3));
//! config.code_length = 8;
//! config.payload_size = 16;
//! let report = run_topology(&config).unwrap();
//! assert!(report.swarm.converged && report.swarm.bit_exact);
//! assert!(report.relay_recoding_ops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
pub mod topology;

pub use ltnc_net::swarm::{FlightRecorder, SwarmRuntime};
pub use run::{run_topology, TopologyConfig, TopologyFaults, TopologyReport};
pub use topology::Topology;
