//! The topology harness: lowering a [`Topology`] onto the UDP swarm and
//! rolling the per-node reports up per hop and per link.
//!
//! [`run_topology`] relabels the overlay so the chosen source becomes
//! swarm node 0, restricts every node's push set to its overlay
//! neighbours (minus the source, which needs nothing — so all traffic to
//! non-neighbours of the source *must* cross recoding relays), installs
//! one seeded [`DatagramFaultPlan`] per directed link, runs
//! [`ltnc_net::swarm::run_wired_swarm`], and attributes the outcome:
//! hop-distance buckets ([`HopCounters`]), per-link fault tallies, and
//! the relay recoding total.

use std::io;
use std::net::SocketAddr;
use std::time::Duration;

use ltnc_metrics::{HopCounters, HopStats, LogHistogramSnapshot};
use ltnc_net::faults::{DatagramFaultCounters, DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{
    run_wired_swarm, FlightRecorder, SwarmConfig, SwarmReport, SwarmRuntime, SwarmWiring,
};
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_telemetry::TraceEvent;

use crate::topology::Topology;

/// Seeded per-link fault plans: one template re-mixed per directed link,
/// plus explicit per-link overrides.
///
/// Every directed link `(from, to)` of the topology gets the template's
/// rates under a seed mixed from the template seed and both endpoints
/// (splitmix64-style), so one seed describes the whole overlay's loss
/// pattern — and the two directions of an edge fail independently, like
/// real radio links do.
#[derive(Debug, Clone, Default)]
pub struct TopologyFaults {
    /// The plan every directed link starts from (`None` leaves links
    /// without an override clean).
    pub template: Option<DatagramFaultPlan>,
    /// Explicit per-directed-link plans, taking precedence over the
    /// template. Links are named by topology indices `(from, to)`.
    pub overrides: Vec<((usize, usize), DatagramFaultPlan)>,
}

impl TopologyFaults {
    /// The same fault rates on every directed link, decorrelated per
    /// link by seed mixing.
    #[must_use]
    pub fn uniform(template: DatagramFaultPlan) -> TopologyFaults {
        TopologyFaults { template: Some(template), overrides: Vec::new() }
    }

    /// The plan in force on the directed link `from → to`, if any.
    #[must_use]
    pub fn plan_for(&self, from: usize, to: usize) -> Option<DatagramFaultPlan> {
        if let Some(&(_, plan)) = self.overrides.iter().find(|&&(link, _)| link == (from, to)) {
            return Some(plan);
        }
        self.template.map(|template| DatagramFaultPlan {
            seed: mix_link_seed(template.seed, from, to),
            ..template
        })
    }
}

/// Derives a per-link seed from the template seed and the directed
/// endpoints (splitmix64 finalizer, matching
/// [`DatagramFaults::for_node`]'s mixing style).
fn mix_link_seed(seed: u64, from: usize, to: usize) -> u64 {
    let mut z = seed
        .wrapping_add((from as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((to as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parameters of one multi-hop dissemination run.
///
/// The legacy [`SwarmConfig`] is the special case
/// `topology = Topology::complete(peers + 1), source = 0`: same spawn
/// seeds, same push sets, same optional per-node fault template.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Coding scheme all nodes run.
    pub scheme: SchemeKind,
    /// The object to disseminate.
    pub object: Vec<u8>,
    /// Code length `k` (natives per generation).
    pub code_length: usize,
    /// Payload size `m` in bytes.
    pub payload_size: usize,
    /// The overlay graph; all nodes but the source start empty.
    pub topology: Topology,
    /// Topology index of the source node.
    pub source: usize,
    /// Per-node tuning.
    pub options: NodeOptions,
    /// Give up after this long.
    pub timeout: Duration,
    /// Session identifier stamped into every envelope.
    pub session: u64,
    /// Per-directed-link fault plans (the attributable way to make a
    /// topology lossy).
    pub link_faults: TopologyFaults,
    /// Per-*node* fault template, re-seeded per node exactly like
    /// [`SwarmConfig::faults`] — what makes the complete topology
    /// reproduce a legacy faulty swarm byte for byte. Usually `None` in
    /// topology runs: prefer [`TopologyConfig::link_faults`], which
    /// keeps loss attributable per link.
    pub node_faults: Option<DatagramFaults>,
    /// When set, every node records its trace events into a bounded ring
    /// of this capacity (see [`SwarmConfig::trace_capacity`]); the
    /// harness then derives [`TopologyReport::first_delivery_by_hop`]
    /// from the per-node event streams. `None` (the default) installs no
    /// sink.
    pub trace_capacity: Option<usize>,
    /// Which scheduler runs the nodes (see [`SwarmRuntime`]): dedicated
    /// threads per node, or the sharded reactor runtime that makes
    /// 1000-node overlays practical on one machine. The lowering,
    /// harness, fault plans and reports are identical either way.
    pub runtime: SwarmRuntime,
    /// One aggregated scrape endpoint for the whole overlay (see
    /// [`SwarmConfig::metrics_bind`]): rolled-up wire counters, decoder
    /// progress, and per-shard reactor families on the sharded runtime.
    pub metrics_bind: Option<SocketAddr>,
    /// Stall watchdog + flight recorder on the sharded runtime (see
    /// [`SwarmConfig::flight_recorder`]).
    pub flight_recorder: Option<FlightRecorder>,
}

impl TopologyConfig {
    /// A small, fast configuration for tests and demos: source at
    /// topology index 0, clean links.
    #[must_use]
    pub fn quick(scheme: SchemeKind, object: Vec<u8>, topology: Topology) -> Self {
        TopologyConfig {
            scheme,
            object,
            code_length: 16,
            payload_size: 32,
            topology,
            source: 0,
            options: NodeOptions::default(),
            timeout: Duration::from_secs(30),
            session: 0x70_7011,
            link_faults: TopologyFaults::default(),
            node_faults: None,
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        }
    }

    /// Topology node index of swarm node `swarm_index` — the exact
    /// inverse of [`TopologyConfig::swarm_of`].
    fn topo_of(&self, swarm_index: usize) -> usize {
        if swarm_index == 0 {
            self.source
        } else if swarm_index <= self.source {
            swarm_index - 1
        } else {
            swarm_index
        }
    }

    /// Swarm node index of topology node `topo_index` (the source maps
    /// to 0; the remaining nodes keep their relative order).
    fn swarm_of(&self, topo_index: usize) -> usize {
        if topo_index == self.source {
            0
        } else if topo_index < self.source {
            topo_index + 1
        } else {
            topo_index
        }
    }

    /// Lowers the topology onto the swarm harness: neighbour-restricted
    /// push sets under the source-to-front relabelling (no node pushes
    /// at the source — it needs nothing, exactly like the legacy full
    /// mesh), plus one fault plan per directed link.
    ///
    /// Public so equivalence tests can assert the lowering directly;
    /// [`run_topology`] calls it internally.
    ///
    /// # Panics
    ///
    /// Panics when the source index is out of range.
    #[must_use]
    pub fn wiring(&self) -> SwarmWiring {
        let nodes = self.topology.nodes();
        assert!(self.source < nodes, "source {} out of range for {nodes} nodes", self.source);
        let mut push_targets = vec![Vec::new(); nodes];
        for topo in 0..nodes {
            let swarm = self.swarm_of(topo);
            push_targets[swarm] = self
                .topology
                .neighbors(topo)
                .iter()
                .map(|&neighbor| self.swarm_of(neighbor))
                .filter(|&target| target != 0)
                .collect();
            push_targets[swarm].sort_unstable();
        }
        let link_faults = self
            .topology
            .directed_links()
            .into_iter()
            .filter_map(|(from, to)| {
                self.link_faults
                    .plan_for(from, to)
                    .map(|plan| (self.swarm_of(from), self.swarm_of(to), plan))
            })
            .collect();
        SwarmWiring { push_targets, link_faults }
    }
}

/// Outcome of a topology run: the underlying swarm report plus the
/// per-hop and per-link attribution.
#[derive(Debug)]
pub struct TopologyReport {
    /// The transport-level outcome (peer reports are swarm-indexed:
    /// 0 = source; use [`TopologyReport::distances`] through the same
    /// relabelling to interpret them).
    pub swarm: SwarmReport,
    /// Shape label of the topology that ran, e.g. `line(5)`.
    pub topology_label: String,
    /// Hop distance to the source per *topology* node index (the
    /// source's own entry is 0).
    pub distances: Vec<usize>,
    /// Per-hop-distance rollup: completion, recoding/decoding work,
    /// useful deliveries and injected faults bucketed by distance.
    pub hops: HopCounters,
    /// Faults injected per directed link `(from, to)`, topology-indexed
    /// — all zero entries elided.
    pub link_faults: Vec<(usize, usize, DatagramFaultCounters)>,
    /// Recoding operations performed by relay nodes (distance ≥ 1): the
    /// in-network coding work that never happens in a 1-hop fetch.
    pub relay_recoding_ops: u64,
    /// Object length in bytes, for goodput computations.
    pub object_len: u64,
    /// Earliest *useful* payload delivery per hop distance (indexed by
    /// distance; entry 0 — the source — is always `None`), measured on
    /// each node's own trace clock from its spawn. Populated only when
    /// [`TopologyConfig::trace_capacity`] is set; how long the epidemic
    /// front took to first reach each ring of the overlay.
    pub first_delivery_by_hop: Vec<Option<Duration>>,
    /// Origin→delivery latency distributions from the **wire-carried
    /// trace contexts**, merged across every node and keyed by the
    /// number of overlay links the delivered data had crossed (its
    /// recode lineage depth, not the receiving node's ring) — the
    /// per-hop critical-path view of the dissemination. Sorted by depth;
    /// always populated (the trace rides every DATA frame).
    pub latency_by_hop: Vec<(usize, LogHistogramSnapshot)>,
}

impl TopologyReport {
    /// End-to-end goodput in object bytes per second: the whole object,
    /// delivered to every peer, over the convergence time (0 when the
    /// run did not converge).
    #[must_use]
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        if !self.swarm.converged || self.swarm.elapsed.is_zero() {
            return 0.0;
        }
        self.object_len as f64 / self.swarm.elapsed.as_secs_f64()
    }

    /// The farthest hop distance any node sits at.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        self.hops.max_distance().unwrap_or(0)
    }

    /// The merged origin→delivery latency distribution at one lineage
    /// depth ([`TopologyReport::latency_by_hop`]); empty when no payload
    /// of that depth was delivered.
    #[must_use]
    pub fn latency_at(&self, hops: usize) -> LogHistogramSnapshot {
        self.latency_by_hop
            .iter()
            .find(|&&(depth, _)| depth == hops)
            .map(|(_, snapshot)| snapshot.clone())
            .unwrap_or_else(LogHistogramSnapshot::empty)
    }
}

/// Runs a full multi-hop dissemination over real UDP and returns the
/// attributed report.
///
/// # Errors
///
/// Propagates socket setup failures; protocol-level problems surface as
/// `swarm.converged = false` / `swarm.bit_exact = false` instead of
/// errors.
///
/// # Panics
///
/// Panics when the topology has fewer than two nodes, is disconnected,
/// or the source index is out of range.
pub fn run_topology(config: &TopologyConfig) -> io::Result<TopologyReport> {
    let nodes = config.topology.nodes();
    assert!(nodes >= 2, "a topology run needs at least two nodes");
    assert!(config.source < nodes, "source {} out of range for {nodes} nodes", config.source);
    assert!(
        config.topology.is_connected(),
        "topology {} is disconnected: unreachable nodes can never converge",
        config.topology.label()
    );

    let wiring = config.wiring();
    let swarm_config = SwarmConfig {
        scheme: config.scheme,
        object: config.object.clone(),
        code_length: config.code_length,
        payload_size: config.payload_size,
        peers: nodes - 1,
        options: config.options,
        timeout: config.timeout,
        session: config.session,
        faults: config.node_faults,
        trace_capacity: config.trace_capacity,
        runtime: config.runtime,
        metrics_bind: config.metrics_bind,
        flight_recorder: config.flight_recorder.clone(),
    };
    let swarm = run_wired_swarm(&swarm_config, &wiring)?;

    let distances: Vec<usize> = config
        .topology
        .distances_from(config.source)
        .into_iter()
        .map(|d| d.expect("connected topology"))
        .collect();

    let mut hops = HopCounters::new();
    let mut relay_recoding_ops = 0;
    for (swarm_index, report) in swarm.node_reports().enumerate() {
        let distance = distances[config.topo_of(swarm_index)];
        hops.record(
            distance,
            &HopStats {
                nodes: 1,
                completed: u64::from(report.complete),
                recoding_ops: report.recoding.total_ops(),
                decoding_ops: report.decoding.total_ops(),
                useful_deliveries: report.wire.useful_deliveries,
                faults_injected: report.faults.total(),
            },
        );
        if distance >= 1 {
            relay_recoding_ops += report.recoding.total_ops();
        }
    }

    // Per-link attribution: each node's link tallies are keyed by the
    // sender's address; map addresses back through the swarm index.
    let mut link_faults = Vec::new();
    for (swarm_to, report) in swarm.node_reports().enumerate() {
        for &(from_addr, counters) in &report.link_faults {
            let swarm_from = swarm
                .node_addrs
                .iter()
                .position(|&addr| addr == from_addr)
                .expect("link plans are only installed for swarm nodes");
            if counters.total() > 0 {
                link_faults.push((config.topo_of(swarm_from), config.topo_of(swarm_to), counters));
            }
        }
    }
    link_faults.sort_unstable_by_key(|&(from, to, _)| (from, to));

    // Per-hop first-delivery times from the trace streams: the earliest
    // useful PayloadDelivered any node of each distance ring recorded.
    let max_distance = distances.iter().copied().max().unwrap_or(0);
    let mut first_delivery_by_hop: Vec<Option<Duration>> = vec![None; max_distance + 1];
    for (swarm_index, report) in swarm.node_reports().enumerate() {
        let distance = distances[config.topo_of(swarm_index)];
        let first = report
            .events
            .iter()
            .find(|timed| matches!(timed.event, TraceEvent::PayloadDelivered { useful: true, .. }))
            .map(|timed| timed.at);
        if let Some(first) = first {
            first_delivery_by_hop[distance] = Some(match first_delivery_by_hop[distance] {
                Some(best) => best.min(first),
                None => first,
            });
        }
    }

    // Per-hop latency from the wire-carried trace contexts: merge every
    // node's distributions, keyed by the delivered data's lineage depth.
    let mut latency_by_hop: Vec<(usize, LogHistogramSnapshot)> = Vec::new();
    for report in swarm.node_reports() {
        for (depth, snapshot) in &report.latency_by_hop {
            match latency_by_hop.iter_mut().find(|(known, _)| known == depth) {
                Some((_, merged)) => merged.merge(snapshot),
                None => latency_by_hop.push((*depth, snapshot.clone())),
            }
        }
    }
    latency_by_hop.sort_unstable_by_key(|&(depth, _)| depth);

    Ok(TopologyReport {
        swarm,
        topology_label: config.topology.label().to_string(),
        distances,
        hops,
        link_faults,
        relay_recoding_ops,
        object_len: config.object.len() as u64,
        first_delivery_by_hop,
        latency_by_hop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 37 % 251) as u8).collect()
    }

    #[test]
    fn link_plans_are_seeded_per_directed_link() {
        let faults = TopologyFaults::uniform(DatagramFaultPlan::clean(0xFEED).drop_rate(0.25));
        let ab = faults.plan_for(0, 1).expect("template applies");
        let ba = faults.plan_for(1, 0).expect("template applies");
        let ab2 = faults.plan_for(0, 1).expect("template applies");
        assert_eq!(ab.seed, ab2.seed, "same link, same seed");
        assert_ne!(ab.seed, ba.seed, "directions fail independently");
        assert_eq!(ab.drop_rate, 0.25, "rates come from the template");
    }

    #[test]
    fn overrides_take_precedence_over_the_template() {
        let mut faults = TopologyFaults::uniform(DatagramFaultPlan::clean(1).drop_rate(0.1));
        faults.overrides.push(((2, 3), DatagramFaultPlan::clean(9).drop_rate(0.9)));
        assert_eq!(faults.plan_for(2, 3).expect("override").drop_rate, 0.9);
        assert_eq!(faults.plan_for(3, 2).expect("template").drop_rate, 0.1);
        assert!(TopologyFaults::default().plan_for(0, 1).is_none(), "no template, clean links");
    }

    #[test]
    fn relabelling_points_the_source_to_swarm_zero() {
        let mut config = TopologyConfig::quick(SchemeKind::Ltnc, object(64), Topology::line(4));
        config.source = 2;
        assert_eq!(config.swarm_of(2), 0);
        assert_eq!(config.swarm_of(0), 1);
        assert_eq!(config.swarm_of(1), 2);
        assert_eq!(config.swarm_of(3), 3);
        for topo in 0..4 {
            assert_eq!(config.topo_of(config.swarm_of(topo)), topo, "round trip");
        }
    }

    #[test]
    fn wiring_restricts_pushes_to_neighbours_and_skips_the_source() {
        // Line 0-1-2-3, source at 0: node 1 pushes only to node 2 (its
        // other neighbour is the source), node 2 to both its neighbours.
        let config = TopologyConfig::quick(SchemeKind::Rlnc, object(64), Topology::line(4));
        let wiring = config.wiring();
        assert_eq!(wiring.push_targets[0], vec![1], "source reaches only its neighbour");
        assert_eq!(wiring.push_targets[1], vec![2], "relay skips the source");
        assert_eq!(wiring.push_targets[2], vec![1, 3]);
        assert_eq!(wiring.push_targets[3], vec![2]);
        assert!(wiring.link_faults.is_empty(), "clean config installs no link plans");
    }

    #[test]
    fn complete_topology_lowers_to_the_legacy_full_mesh() {
        let config = TopologyConfig::quick(SchemeKind::Wc, object(64), Topology::complete(5));
        let wiring = config.wiring();
        let legacy = SwarmWiring::full_mesh(4);
        assert_eq!(wiring.push_targets, legacy.push_targets);
    }

    #[test]
    fn two_hop_line_converges_through_the_relay() {
        let mut config = TopologyConfig::quick(SchemeKind::Ltnc, object(600), Topology::line(3));
        config.code_length = 8;
        config.payload_size = 16;
        let report = run_topology(&config).expect("run starts");
        assert!(report.swarm.converged, "line(3) did not converge: {report:?}");
        assert!(report.swarm.bit_exact);
        assert_eq!(report.distances, vec![0, 1, 2]);
        assert_eq!(report.max_hops(), 2);
        assert_eq!(report.hops.get(1).nodes, 1);
        assert_eq!(report.hops.get(2).completed, 1);
        assert!(report.relay_recoding_ops > 0, "the relay must recode");
        assert!(report.goodput_bytes_per_sec() > 0.0);
    }

    #[test]
    fn tracing_yields_per_hop_first_delivery_times() {
        let mut config = TopologyConfig::quick(SchemeKind::Rlnc, object(400), Topology::line(3));
        config.code_length = 8;
        config.payload_size = 16;
        config.trace_capacity = Some(4096);
        let report = run_topology(&config).expect("run starts");
        assert!(report.swarm.converged, "line(3) did not converge: {report:?}");
        assert_eq!(report.first_delivery_by_hop.len(), 3);
        assert!(report.first_delivery_by_hop[0].is_none(), "the source receives nothing");
        let hop1 = report.first_delivery_by_hop[1].expect("hop 1 delivered");
        let hop2 = report.first_delivery_by_hop[2].expect("hop 2 delivered");
        assert!(hop1 <= report.swarm.elapsed + Duration::from_secs(1));
        assert!(hop2 > Duration::ZERO);
        // The relay's trace must show recoded pushes.
        assert!(report
            .swarm
            .node_reports()
            .any(|r| r.events.iter().any(|t| matches!(t.event, TraceEvent::RelayRecode { .. }))));
    }
}
