//! Declarative overlay graphs: which node can talk to which.
//!
//! A [`Topology`] is an undirected connectivity graph over `n` overlay
//! nodes, built by one of the shape constructors (line, ring, star,
//! binary tree, complete, seeded random k-regular) or from an explicit
//! edge list. It knows nothing about sockets or schemes — the harness in
//! [`crate::run`] lowers it onto the UDP swarm. Everything here is
//! deterministic: the random-regular constructor derives the whole graph
//! from its seed, so a topology run replays exactly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An undirected overlay graph over `nodes` overlay nodes.
///
/// Neighbour lists are sorted and deduplicated; self-loops are rejected
/// at construction. Connectivity is *not* enforced here (tests build
/// disconnected graphs on purpose) — the harness checks
/// [`Topology::is_connected`] before running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    adjacency: Vec<Vec<usize>>,
    label: String,
}

impl Topology {
    /// Builds a topology from an explicit undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0`, an endpoint is out of range, or an edge
    /// is a self-loop. Duplicate edges are merged.
    #[must_use]
    pub fn from_edges(
        nodes: usize,
        edges: &[(usize, usize)],
        label: impl Into<String>,
    ) -> Topology {
        assert!(nodes > 0, "a topology needs at least one node");
        let mut adjacency = vec![Vec::new(); nodes];
        for &(a, b) in edges {
            assert!(a < nodes && b < nodes, "edge ({a}, {b}) out of range for {nodes} nodes");
            assert_ne!(a, b, "edge ({a}, {b}) is a self-loop");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for neighbors in &mut adjacency {
            neighbors.sort_unstable();
            neighbors.dedup();
        }
        Topology { adjacency, label: label.into() }
    }

    /// A line `0 — 1 — … — n-1`: the deepest relay chain per node count,
    /// and the paper's multi-hop evaluation shape (source at one end,
    /// every interior node a recoding relay).
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2`.
    #[must_use]
    pub fn line(nodes: usize) -> Topology {
        assert!(nodes >= 2, "a line needs at least two nodes");
        let edges: Vec<(usize, usize)> = (0..nodes - 1).map(|i| (i, i + 1)).collect();
        Topology::from_edges(nodes, &edges, format!("line({nodes})"))
    }

    /// A ring `0 — 1 — … — n-1 — 0`: every node has exactly two
    /// neighbours and two disjoint paths to the source.
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 3`.
    #[must_use]
    pub fn ring(nodes: usize) -> Topology {
        assert!(nodes >= 3, "a ring needs at least three nodes");
        let edges: Vec<(usize, usize)> = (0..nodes).map(|i| (i, (i + 1) % nodes)).collect();
        Topology::from_edges(nodes, &edges, format!("ring({nodes})"))
    }

    /// A star with node 0 as the hub. With the source placed at a *leaf*
    /// the hub relays between every pair of leaves (2 hops apart).
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2`.
    #[must_use]
    pub fn star(nodes: usize) -> Topology {
        assert!(nodes >= 2, "a star needs at least two nodes");
        let edges: Vec<(usize, usize)> = (1..nodes).map(|leaf| (0, leaf)).collect();
        Topology::from_edges(nodes, &edges, format!("star({nodes})"))
    }

    /// A complete binary tree in heap order: node `i`'s children are
    /// `2i + 1` and `2i + 2` (when in range), the root is node 0.
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2`.
    #[must_use]
    pub fn binary_tree(nodes: usize) -> Topology {
        assert!(nodes >= 2, "a tree needs at least two nodes");
        let edges: Vec<(usize, usize)> = (1..nodes).map(|child| ((child - 1) / 2, child)).collect();
        Topology::from_edges(nodes, &edges, format!("tree({nodes})"))
    }

    /// The complete graph: every node adjacent to every other — the
    /// trivial topology that reproduces the legacy full-mesh swarm.
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2`.
    #[must_use]
    pub fn complete(nodes: usize) -> Topology {
        assert!(nodes >= 2, "a complete graph needs at least two nodes");
        let mut edges = Vec::with_capacity(nodes * (nodes - 1) / 2);
        for a in 0..nodes {
            for b in a + 1..nodes {
                edges.push((a, b));
            }
        }
        Topology::from_edges(nodes, &edges, format!("complete({nodes})"))
    }

    /// A seeded random `degree`-regular simple graph (pairing model with
    /// rejection): every node gets exactly `degree` distinct neighbours.
    /// The same seed always yields the same graph. Disconnected draws
    /// are rejected and redrawn, so the result is always connected.
    ///
    /// # Panics
    ///
    /// Panics when the parameters admit no such graph
    /// (`degree == 0`, `degree >= nodes`, or `nodes × degree` odd), or
    /// when no connected simple matching is found after many attempts
    /// (practically unreachable for sane parameters).
    #[must_use]
    pub fn random_regular(nodes: usize, degree: usize, seed: u64) -> Topology {
        assert!(degree >= 1, "degree must be at least 1");
        assert!(degree < nodes, "degree {degree} impossible with {nodes} nodes");
        assert!((nodes * degree).is_multiple_of(2), "nodes × degree must be even");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x70_70_70);
        // Pairing model: shuffle `degree` stubs per node, pair them off,
        // reject draws with self-loops, parallel edges, or a
        // disconnected result. Succeeds within a few attempts whp for
        // any sane (nodes, degree).
        for _ in 0..1000 {
            let mut stubs: Vec<usize> =
                (0..nodes).flat_map(|i| std::iter::repeat_n(i, degree)).collect();
            for i in (1..stubs.len()).rev() {
                stubs.swap(i, rng.gen_range(0..=i));
            }
            let edges: Vec<(usize, usize)> =
                stubs.chunks_exact(2).map(|pair| (pair[0], pair[1])).collect();
            let simple = edges.iter().all(|&(a, b)| a != b) && {
                let mut sorted: Vec<(usize, usize)> =
                    edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            };
            if !simple {
                continue;
            }
            let topology =
                Topology::from_edges(nodes, &edges, format!("kregular({nodes},{degree})"));
            if topology.is_connected() {
                return topology;
            }
        }
        panic!("no connected {degree}-regular graph on {nodes} nodes found (seed {seed:#x})");
    }

    /// Number of overlay nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// A short human-readable shape label, e.g. `line(5)`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sorted neighbour list of node `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn neighbors(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }

    /// Every undirected edge once, as `(low, high)` pairs in order.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Every *directed* link `(from, to)`: both directions of every edge
    /// — the unit per-link fault plans attach to.
    #[must_use]
    pub fn directed_links(&self) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        for (from, neighbors) in self.adjacency.iter().enumerate() {
            for &to in neighbors {
                links.push((from, to));
            }
        }
        links
    }

    /// Whether every node can reach every other.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.distances_from(0).iter().all(Option::is_some)
    }

    /// BFS hop distances from `source`: `None` for unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    #[must_use]
    pub fn distances_from(&self, source: usize) -> Vec<Option<usize>> {
        assert!(source < self.nodes(), "source {source} out of range");
        let mut distances = vec![None; self.nodes()];
        distances[source] = Some(0);
        let mut frontier = vec![source];
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &node in &frontier {
                for &neighbor in &self.adjacency[node] {
                    if distances[neighbor].is_none() {
                        distances[neighbor] = Some(depth);
                        next.push(neighbor);
                    }
                }
            }
            frontier = next;
        }
        distances
    }

    /// The largest hop distance from `source` to any reachable node.
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    #[must_use]
    pub fn eccentricity(&self, source: usize) -> usize {
        self.distances_from(source).into_iter().flatten().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape_and_distances() {
        let t = Topology::line(5);
        assert_eq!(t.nodes(), 5);
        assert_eq!(t.label(), "line(5)");
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(2), &[1, 3]);
        assert_eq!(t.neighbors(4), &[3]);
        assert!(t.is_connected());
        let d: Vec<usize> = t.distances_from(0).into_iter().flatten().collect();
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.eccentricity(0), 4);
        assert_eq!(t.eccentricity(2), 2);
    }

    #[test]
    fn ring_star_and_tree_shapes() {
        let ring = Topology::ring(6);
        assert!(ring.adjacency.iter().all(|n| n.len() == 2));
        assert_eq!(ring.eccentricity(0), 3);

        let star = Topology::star(6);
        assert_eq!(star.neighbors(0).len(), 5, "hub touches every leaf");
        assert!((1..6).all(|leaf| star.neighbors(leaf) == [0]));
        assert_eq!(star.eccentricity(1), 2, "leaf to leaf crosses the hub");

        let tree = Topology::binary_tree(7);
        assert_eq!(tree.neighbors(0), &[1, 2]);
        assert_eq!(tree.neighbors(1), &[0, 3, 4]);
        assert_eq!(tree.neighbors(6), &[2]);
        assert_eq!(tree.eccentricity(0), 2);
        assert_eq!(tree.eccentricity(3), 4, "leaf to opposite leaf");
    }

    #[test]
    fn complete_graph_is_one_hop_everywhere() {
        let t = Topology::complete(4);
        assert_eq!(t.edges().len(), 6);
        assert!(t.adjacency.iter().all(|n| n.len() == 3));
        assert_eq!(t.eccentricity(2), 1);
        assert_eq!(t.directed_links().len(), 12);
    }

    #[test]
    fn random_regular_is_seeded_and_valid() {
        let a = Topology::random_regular(10, 3, 42);
        let b = Topology::random_regular(10, 3, 42);
        let c = Topology::random_regular(10, 3, 43);
        assert_eq!(a, b, "same seed, same graph");
        assert_ne!(a, c, "different seed, different graph");
        assert!(a.adjacency.iter().all(|n| n.len() == 3), "exactly degree neighbours");
        assert!(a.is_connected());
    }

    #[test]
    fn disconnected_graph_is_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)], "split");
        assert!(!t.is_connected());
        assert_eq!(t.distances_from(0)[2], None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_are_rejected() {
        let _ = Topology::from_edges(2, &[(1, 1)], "bad");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_regular_parameters_are_rejected() {
        let _ = Topology::random_regular(5, 3, 1);
    }
}
