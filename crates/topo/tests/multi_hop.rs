//! Multi-hop dissemination over real UDP under seeded per-link loss.
//!
//! These are the runs the paper's in-network recoding claim actually
//! needs: relays that start empty, sit in the only path to the source,
//! and recode — while every directed link eats a seeded share of the
//! datagrams crossing it. All fault randomness derives from one fixed
//! seed (override with `LTNC_FAULT_SEED`), so a CI failure replays
//! locally with the same per-link drop pattern.

use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyFaults};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One fixed seed for every fault decision in this file (CI pins it).
fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

fn pseudo_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

fn lossy_config(
    scheme: SchemeKind,
    topology: Topology,
    source: usize,
    loss: f64,
) -> TopologyConfig {
    TopologyConfig {
        scheme,
        object: pseudo_file(600, 0x10AD ^ u64::from(scheme.wire_id())),
        code_length: 8,
        payload_size: 16,
        topology,
        source,
        options: NodeOptions {
            seed: 0x5EED ^ u64::from(scheme.wire_id()),
            ..NodeOptions::default()
        },
        timeout: Duration::from_secs(90),
        session: 0x70FA_0000 + u64::from(scheme.wire_id()),
        link_faults: TopologyFaults::uniform(
            DatagramFaultPlan::clean(fault_seed()).drop_rate(loss),
        ),
        node_faults: None,
        trace_capacity: None,
        runtime: SwarmRuntime::Threaded,
        metrics_bind: None,
        flight_recorder: None,
    }
}

/// The acceptance run: a 4-hop line at 20% seeded per-link loss, every
/// scheme. Relays start empty, are the only route to the source, and
/// must recode; the far node must still reassemble bit for bit.
#[test]
fn four_hop_line_converges_bit_exactly_under_20pct_per_link_loss() {
    for scheme in SchemeKind::ALL {
        let config = lossy_config(scheme, Topology::line(5), 0, 0.20);
        let report = run_topology(&config).expect("topology run starts");
        assert!(
            report.swarm.converged,
            "{scheme:?}: only {}/4 peers completed in {:?} over the line",
            report.swarm.peers_complete, report.swarm.elapsed
        );
        assert!(report.swarm.bit_exact, "{scheme:?}: reconstruction mismatch across relays");
        assert_eq!(report.max_hops(), 4, "{scheme:?}: the line must be 4 hops deep");
        // Every interior relay recoded: packets reaching hop d > 1 can
        // only have been emitted by the node at hop d - 1.
        for hop in 1..=3 {
            let stats = report.hops.get(hop);
            assert_eq!(stats.completed, 1, "{scheme:?}: hop {hop} did not complete");
            assert!(stats.recoding_ops > 0, "{scheme:?}: relay at hop {hop} never recoded");
        }
        assert!(report.relay_recoding_ops > 0);
        // The loss was real and attributable: every forward link dropped
        // something, and every tallied link is an actual topology link.
        for hop in 0..4 {
            assert!(
                report
                    .link_faults
                    .iter()
                    .any(|&(from, to, c)| from == hop && to == hop + 1 && c.dropped_in > 0),
                "{scheme:?}: no drops attributed to link {hop}→{}",
                hop + 1
            );
        }
        for &(from, to, _) in &report.link_faults {
            assert!(
                report.distances[from].abs_diff(report.distances[to]) == 1,
                "{scheme:?}: tally on non-adjacent pair {from}→{to}"
            );
        }
        // Wire-carried trace context: the report carries per-hop
        // origin→delivery latency distributions keyed by recode-lineage
        // depth. The source's neighbour always sees depth-1 data, and
        // every recorded distribution has ordered percentiles.
        assert!(!report.latency_by_hop.is_empty(), "{scheme:?}: no latency recorded");
        let first_hop = report.latency_at(1);
        assert!(first_hop.count() > 0, "{scheme:?}: no depth-1 deliveries recorded");
        for &(depth, ref snapshot) in &report.latency_by_hop {
            assert!(depth >= 1, "{scheme:?}: lineage depth below one link");
            assert!(snapshot.count() > 0, "{scheme:?}: empty distribution kept at depth {depth}");
            assert!(
                snapshot.p50() <= snapshot.p99() && snapshot.p99() <= snapshot.quantile(1.0),
                "{scheme:?}: unordered percentiles at depth {depth}"
            );
        }
        assert!(
            report.latency_at(99).count() == 0,
            "{scheme:?}: latency_at must be empty for an absent depth"
        );
    }
}

/// A star with the source at a leaf: every byte to every other leaf
/// crosses the hub, which never needs the object for itself any less —
/// it completes too, while doing all the relaying.
#[test]
fn star_hub_relays_between_leaves() {
    let config = lossy_config(SchemeKind::Ltnc, Topology::star(5), 1, 0.10);
    let report = run_topology(&config).expect("topology run starts");
    assert!(report.swarm.converged && report.swarm.bit_exact, "star failed: {report:?}");
    assert_eq!(report.distances, vec![1, 0, 2, 2, 2]);
    let hub = report.hops.get(1);
    assert!(hub.recoding_ops > 0, "the hub must relay");
    assert_eq!(report.hops.get(2).completed, 3, "all far leaves complete through the hub");
}

/// A binary tree from the root: interior nodes relay to their subtrees.
#[test]
fn binary_tree_disseminates_to_the_leaves() {
    let config = lossy_config(SchemeKind::Rlnc, Topology::binary_tree(7), 0, 0.10);
    let report = run_topology(&config).expect("topology run starts");
    assert!(report.swarm.converged && report.swarm.bit_exact, "tree failed: {report:?}");
    assert_eq!(report.max_hops(), 2);
    assert!(report.hops.get(1).recoding_ops > 0, "interior nodes must relay");
    assert_eq!(report.hops.get(2).completed, 4);
}

/// A ring gives every node two disjoint lossy paths; a seeded random
/// 3-regular overlay gives several. Both must converge.
#[test]
fn ring_and_random_regular_overlays_converge() {
    let ring = lossy_config(SchemeKind::Wc, Topology::ring(5), 0, 0.10);
    let report = run_topology(&ring).expect("topology run starts");
    assert!(report.swarm.converged && report.swarm.bit_exact, "ring failed: {report:?}");
    assert_eq!(report.max_hops(), 2);

    let regular =
        lossy_config(SchemeKind::Ltnc, Topology::random_regular(8, 3, fault_seed()), 0, 0.10);
    let report = run_topology(&regular).expect("topology run starts");
    assert!(report.swarm.converged && report.swarm.bit_exact, "k-regular failed: {report:?}");
    assert!(report.max_hops() >= 2, "a sparse overlay should not be a clique");
}

/// Heavier stress variant for the CI `--include-ignored` step: a 6-hop
/// line at 30% per-link loss with reordering and delays on top, every
/// scheme, a multi-generation object.
#[test]
#[ignore = "stress: run via cargo test -- --include-ignored (CI fault step)"]
fn stress_six_hop_line_survives_heavy_per_link_loss() {
    for scheme in SchemeKind::ALL {
        let mut config = lossy_config(scheme, Topology::line(7), 0, 0.30);
        config.object = pseudo_file(4096, 0xBEEF ^ u64::from(scheme.wire_id()));
        config.code_length = 16;
        config.payload_size = 32;
        config.timeout = Duration::from_secs(240);
        config.link_faults = TopologyFaults::uniform(
            DatagramFaultPlan::clean(fault_seed() ^ 0x70_57E5)
                .drop_rate(0.30)
                .reorder(0.10, 8)
                .delay(0.05, Duration::from_millis(2)),
        );
        let report = run_topology(&config).expect("topology run starts");
        assert!(
            report.swarm.converged && report.swarm.bit_exact,
            "{scheme:?} on a 6-hop line under heavy faults: {}/6 complete, bit_exact={} in {:?}",
            report.swarm.peers_complete,
            report.swarm.bit_exact,
            report.swarm.elapsed
        );
        assert_eq!(report.max_hops(), 6);
        assert!(report.relay_recoding_ops > 0);
    }
}
