//! Reactor/thread equivalence: the same seeded configuration must
//! behave the same on both [`SwarmRuntime`]s, for every topology shape
//! and every scheme.
//!
//! "The same" is deliberately precise, because the two runtimes differ
//! in *scheduling*, which timing-dependent quantities reflect:
//!
//! * **clean runs**: both runtimes converge, every delivered object is
//!   bit-exact, and the injected-fault totals are identical (zero —
//!   there is nothing to inject);
//! * **faulty runs**: both runtimes converge bit-exactly *through* the
//!   loss, both actually injected faults, and both exercised relay
//!   recoding. Exact fault-count equality across runtimes is not a
//!   meaningful property: how many datagrams cross a lossy link before
//!   convergence depends on traffic volume, which is timing-dependent —
//!   what is invariant is the delivered data and the protocol outcome.
//!
//! The sharded runtime's own determinism (same seed + same worker
//! count, twice) is pinned in `sharded_determinism.rs`.

use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{
    run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyFaults, TopologyReport,
};

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 % 251) as u8).collect()
}

/// Seeded default, overridable for replay like every fault test.
fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

/// Every overlay shape the topology crate can build, smallest useful
/// instance of each.
fn shapes() -> Vec<Topology> {
    vec![
        Topology::line(4),
        Topology::ring(5),
        Topology::star(5),
        Topology::binary_tree(7),
        Topology::complete(5),
        Topology::random_regular(8, 3, 0x7E9),
    ]
}

fn config(scheme: SchemeKind, topology: Topology, runtime: SwarmRuntime) -> TopologyConfig {
    let mut config = TopologyConfig::quick(scheme, object(400), topology);
    config.code_length = 8;
    config.payload_size = 16;
    config.timeout = Duration::from_secs(60);
    config.options = NodeOptions { seed: 0xE0_01CE, ..NodeOptions::default() };
    config.session = 0xE0_0000 + u64::from(scheme.wire_id());
    config.runtime = runtime;
    config
}

fn run(scheme: SchemeKind, topology: &Topology, runtime: SwarmRuntime) -> TopologyReport {
    let config = config(scheme, topology.clone(), runtime);
    let report = run_topology(&config).expect("run starts");
    assert!(
        report.swarm.converged,
        "{scheme:?} on {} under {runtime:?} did not converge: {}/{} peers in {:?}",
        report.topology_label,
        report.swarm.peers_complete,
        topology.nodes() - 1,
        report.swarm.elapsed
    );
    assert!(
        report.swarm.bit_exact,
        "{scheme:?} on {} under {runtime:?} was not bit-exact",
        report.topology_label
    );
    report
}

/// Clean runs: both runtimes converge bit-exactly on every shape and
/// scheme, deliver identical objects, inject nothing, and exercise
/// relay recoding wherever the overlay actually has relays.
#[test]
fn every_shape_and_scheme_is_equivalent_across_runtimes() {
    for topology in shapes() {
        for scheme in SchemeKind::ALL {
            let threaded = run(scheme, &topology, SwarmRuntime::Threaded);
            let sharded = run(scheme, &topology, SwarmRuntime::Sharded { workers: 2 });

            for (t, s) in threaded.swarm.peer_reports.iter().zip(sharded.swarm.peer_reports.iter())
            {
                assert_eq!(
                    t.object, s.object,
                    "{scheme:?} on {}: delivered objects differ across runtimes",
                    threaded.topology_label
                );
            }
            assert_eq!(
                threaded.swarm.total_faults.total(),
                0,
                "clean threaded run must inject nothing"
            );
            assert_eq!(
                sharded.swarm.total_faults.total(),
                0,
                "clean sharded run must inject nothing"
            );
            assert_eq!(threaded.swarm.generations, sharded.swarm.generations);
            if threaded.max_hops() >= 2 {
                assert!(
                    threaded.relay_recoding_ops > 0,
                    "{scheme:?} on {}: threaded relays must recode",
                    threaded.topology_label
                );
                assert!(
                    sharded.relay_recoding_ops > 0,
                    "{scheme:?} on {}: sharded relays must recode",
                    sharded.topology_label
                );
            }
        }
    }
}

/// Faulty runs: seeded per-link loss on a pure relay chain. Both
/// runtimes must converge bit-exactly through the loss, both must have
/// injected faults, and both must have recoded at relays — the protocol
/// outcome is runtime-invariant even when the traffic volume is not.
#[test]
fn lossy_line_converges_bit_exactly_on_both_runtimes() {
    let plan = DatagramFaultPlan::clean(fault_seed()).drop_rate(0.15);
    for scheme in SchemeKind::ALL {
        let mut reports = Vec::new();
        for runtime in [SwarmRuntime::Threaded, SwarmRuntime::Sharded { workers: 2 }] {
            let mut config = config(scheme, Topology::line(4), runtime);
            config.link_faults = TopologyFaults::uniform(plan);
            let report = run_topology(&config).expect("run starts");
            assert!(
                report.swarm.converged && report.swarm.bit_exact,
                "{scheme:?} lossy line under {runtime:?} failed: {}/{} peers in {:?}",
                report.swarm.peers_complete,
                3,
                report.swarm.elapsed
            );
            assert!(
                report.swarm.total_faults.total() > 0,
                "{scheme:?} under {runtime:?}: 15% per-link loss must drop something"
            );
            assert!(
                report.relay_recoding_ops > 0,
                "{scheme:?} under {runtime:?}: relays must recode through loss"
            );
            reports.push(report);
        }
        for (t, s) in reports[0].swarm.peer_reports.iter().zip(reports[1].swarm.peer_reports.iter())
        {
            assert_eq!(t.object, s.object, "{scheme:?}: delivered objects differ across runtimes");
        }
    }
}
