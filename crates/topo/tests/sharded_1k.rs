//! The 1000-node k-regular swarm on the sharded runtime — the scale the
//! reactor exists for, as a real, replayable scenario rather than a
//! thought experiment.
//!
//! Ignored by default (it is a scale test, tens of seconds per scheme);
//! CI runs it via `--include-ignored` with a fixed `LTNC_FAULT_SEED`.
//! Degree 4 keeps the pairing-model `random_regular` construction
//! reliable at this size (acceptance probability collapses for larger
//! degrees at 1000 nodes), and `nodes × degree` stays even as the
//! construction requires.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyFaults};

const NODES: usize = 1000;
const DEGREE: usize = 4;

/// Reserves an ephemeral localhost port: bind, note, release.
fn reserve_port() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    listener.local_addr().expect("local addr")
}

/// One best-effort HTTP/1.0 GET against the aggregated endpoint.
fn scrape(addr: SocketAddr) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    Some(response.split_once("\r\n\r\n")?.1.to_string())
}

fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 29 % 255) as u8).collect()
}

#[test]
#[ignore = "1000-node scale run; CI includes it explicitly"]
fn thousand_node_k_regular_swarm_converges_bit_exactly_under_loss() {
    let seed = fault_seed();
    for scheme in SchemeKind::ALL {
        let topology = Topology::random_regular(NODES, DEGREE, 0x1000 ^ seed);
        let mut config = TopologyConfig::quick(scheme, object(512), topology);
        config.code_length = 8;
        config.payload_size = 32;
        // A gentler tick than the 2ms default: 1000 state machines on a
        // couple of cores saturate on timer pressure alone at 2ms, and
        // the epidemic needs rounds, not frequency.
        config.options = NodeOptions {
            seed: 0x1_000 + u64::from(scheme.wire_id()),
            tick: Duration::from_millis(10),
            ..NodeOptions::default()
        };
        config.session = 0x1000_0000 + u64::from(scheme.wire_id());
        config.timeout = Duration::from_secs(180);
        config.link_faults =
            TopologyFaults::uniform(DatagramFaultPlan::clean(seed).drop_rate(0.05));
        config.runtime = SwarmRuntime::Sharded { workers: 4 };
        // One aggregated endpoint for all 1000 nodes, scraped mid-run by
        // a sidecar thread — the scalable observability story this swarm
        // size forces.
        let metrics_addr = reserve_port();
        config.metrics_bind = Some(metrics_addr);
        let done = Arc::new(AtomicBool::new(false));
        let scraper = {
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut reactor_pages = 0u32;
                while !done.load(Ordering::Acquire) {
                    if let Some(page) = scrape(metrics_addr) {
                        if page.contains("ltnc_reactor_turns") {
                            reactor_pages += 1;
                        }
                    }
                    thread::sleep(Duration::from_millis(200));
                }
                reactor_pages
            })
        };

        let report = run_topology(&config).expect("1000-node run starts");
        done.store(true, Ordering::Release);
        let reactor_pages = scraper.join().expect("scraper thread");
        assert!(reactor_pages > 0, "{scheme:?}: no mid-run scrape carried ltnc_reactor_* samples");
        assert_eq!(report.swarm.reactor.len(), 4, "{scheme:?}: one snapshot per shard");
        assert_eq!(
            report.swarm.reactor.iter().map(|s| s.nodes).sum::<u64>(),
            NODES as u64,
            "{scheme:?}: every node partitioned onto a shard"
        );
        assert!(
            report.swarm.converged,
            "{scheme:?}: only {}/{} peers completed in {:?}",
            report.swarm.peers_complete,
            NODES - 1,
            report.swarm.elapsed
        );
        assert!(report.swarm.bit_exact, "{scheme:?}: reconstruction mismatch at 1000 nodes");
        assert!(
            report.swarm.total_faults.total() > 0,
            "{scheme:?}: 5% per-link loss must inject faults"
        );
        assert!(report.relay_recoding_ops > 0, "{scheme:?}: relays must recode at scale");
        eprintln!(
            "{scheme:?}: 1000 nodes converged in {:?} ({} hops max, {} faults injected)",
            report.swarm.elapsed,
            report.max_hops(),
            report.swarm.total_faults.total()
        );
    }
}
