//! The 1000-node k-regular swarm on the sharded runtime — the scale the
//! reactor exists for, as a real, replayable scenario rather than a
//! thought experiment.
//!
//! Ignored by default (it is a scale test, tens of seconds per scheme);
//! CI runs it via `--include-ignored` with a fixed `LTNC_FAULT_SEED`.
//! Degree 4 keeps the pairing-model `random_regular` construction
//! reliable at this size (acceptance probability collapses for larger
//! degrees at 1000 nodes), and `nodes × degree` stays even as the
//! construction requires.

use std::time::Duration;

use ltnc_net::faults::DatagramFaultPlan;
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyFaults};

const NODES: usize = 1000;
const DEGREE: usize = 4;

fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 29 % 255) as u8).collect()
}

#[test]
#[ignore = "1000-node scale run; CI includes it explicitly"]
fn thousand_node_k_regular_swarm_converges_bit_exactly_under_loss() {
    let seed = fault_seed();
    for scheme in SchemeKind::ALL {
        let topology = Topology::random_regular(NODES, DEGREE, 0x1000 ^ seed);
        let mut config = TopologyConfig::quick(scheme, object(512), topology);
        config.code_length = 8;
        config.payload_size = 32;
        // A gentler tick than the 2ms default: 1000 state machines on a
        // couple of cores saturate on timer pressure alone at 2ms, and
        // the epidemic needs rounds, not frequency.
        config.options = NodeOptions {
            seed: 0x1_000 + u64::from(scheme.wire_id()),
            tick: Duration::from_millis(10),
            ..NodeOptions::default()
        };
        config.session = 0x1000_0000 + u64::from(scheme.wire_id());
        config.timeout = Duration::from_secs(180);
        config.link_faults =
            TopologyFaults::uniform(DatagramFaultPlan::clean(seed).drop_rate(0.05));
        config.runtime = SwarmRuntime::Sharded { workers: 4 };

        let report = run_topology(&config).expect("1000-node run starts");
        assert!(
            report.swarm.converged,
            "{scheme:?}: only {}/{} peers completed in {:?}",
            report.swarm.peers_complete,
            NODES - 1,
            report.swarm.elapsed
        );
        assert!(report.swarm.bit_exact, "{scheme:?}: reconstruction mismatch at 1000 nodes");
        assert!(
            report.swarm.total_faults.total() > 0,
            "{scheme:?}: 5% per-link loss must inject faults"
        );
        assert!(report.relay_recoding_ops > 0, "{scheme:?}: relays must recode at scale");
        eprintln!(
            "{scheme:?}: 1000 nodes converged in {:?} ({} hops max, {} faults injected)",
            report.swarm.elapsed,
            report.max_hops(),
            report.swarm.total_faults.total()
        );
    }
}
