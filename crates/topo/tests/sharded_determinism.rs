//! Determinism of the sharded scheduler.
//!
//! What IS stable for a fixed seed and a fixed worker count — and also
//! across *different* worker counts:
//!
//! * `converged`, `bit_exact`, `peers_complete`, `generations`;
//! * every delivered object, byte for byte (the protocol decodes the
//!   same object however its datagrams interleave — that is what coded
//!   dissemination is for).
//!
//! What is NOT stable, by design, and therefore never asserted:
//!
//! * `elapsed`, and anything derived from it (goodput);
//! * wire-counter magnitudes (offers, aborts, redundant deliveries):
//!   how many datagrams fly before convergence depends on scheduling;
//! * injected-fault totals under loss, for the same reason — the
//!   *plans* are seeded and replayable per link, but how much traffic
//!   crosses each lossy link is timing-dependent.

use std::time::Duration;

use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, SwarmRuntime, Topology, TopologyConfig, TopologyReport};

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 41 % 253) as u8).collect()
}

fn run(workers: usize) -> TopologyReport {
    let mut config =
        TopologyConfig::quick(SchemeKind::Rlnc, object(500), Topology::random_regular(8, 3, 0xDE7));
    config.code_length = 8;
    config.payload_size = 16;
    config.timeout = Duration::from_secs(60);
    config.options = NodeOptions { seed: 0x5EED_D00D, ..NodeOptions::default() };
    config.runtime = SwarmRuntime::Sharded { workers };
    let report = run_topology(&config).expect("run starts");
    assert!(
        report.swarm.converged && report.swarm.bit_exact,
        "sharded run (workers={workers}) failed: {}/7 peers in {:?}",
        report.swarm.peers_complete,
        report.swarm.elapsed
    );
    report
}

/// The goodput-relevant outcome fields that must replay exactly.
fn stable_fields(report: &TopologyReport) -> (bool, bool, usize, u32, Vec<Option<Vec<u8>>>) {
    (
        report.swarm.converged,
        report.swarm.bit_exact,
        report.swarm.peers_complete,
        report.swarm.generations,
        report.swarm.peer_reports.iter().map(|peer| peer.object.clone()).collect(),
    )
}

#[test]
fn same_seed_and_worker_count_replays_the_stable_outcome() {
    let first = run(2);
    let second = run(2);
    assert_eq!(stable_fields(&first), stable_fields(&second));
}

#[test]
fn worker_count_changes_scheduling_but_never_the_delivered_objects() {
    let one = run(1);
    let four = run(4);
    assert_eq!(stable_fields(&one), stable_fields(&four));
}
