//! The refactor's safety net: a complete-graph [`Topology`] must
//! reproduce the legacy `SwarmConfig` full-mesh behaviour.
//!
//! Two layers of equivalence:
//!
//! 1. **Structural** — for every swarm size, lowering a complete
//!    topology (source at index 0) yields byte-for-byte the same wiring
//!    `run_localhost_swarm` itself now runs on
//!    ([`SwarmWiring::full_mesh`]).
//! 2. **Behavioural** — under the same fixed per-node fault template and
//!    seed, the legacy harness and the complete-topology run both
//!    converge bit-exactly for all three schemes, with every node one
//!    hop from the source.

use std::time::Duration;

use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmRuntime, SwarmWiring};
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use ltnc_topo::{run_topology, Topology, TopologyConfig, TopologyFaults};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn fault_seed() -> u64 {
    std::env::var("LTNC_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xF00D_u64)
}

fn pseudo_file(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    data
}

/// The legacy 20%-loss template from the PR 4 UDP fault tests.
fn lossy_links(seed: u64) -> DatagramFaults {
    DatagramFaults::inbound(
        DatagramFaultPlan::clean(seed).drop_rate(0.20).reorder(0.10, 8).duplicate_rate(0.05),
    )
}

#[test]
fn complete_topology_lowering_is_the_legacy_full_mesh_for_every_size() {
    for peers in 1..=12 {
        let config =
            TopologyConfig::quick(SchemeKind::Ltnc, vec![0u8; 16], Topology::complete(peers + 1));
        let wiring = config.wiring();
        let legacy = SwarmWiring::full_mesh(peers);
        assert_eq!(
            wiring.push_targets,
            legacy.push_targets,
            "complete({}) must lower to full_mesh({peers})",
            peers + 1
        );
        assert!(wiring.link_faults.is_empty());
    }
}

#[test]
fn complete_topology_reproduces_legacy_swarm_behaviour_under_seeded_faults() {
    for scheme in SchemeKind::ALL {
        let object = pseudo_file(600, 0x10AD ^ u64::from(scheme.wire_id()));
        let options =
            NodeOptions { seed: 0x5EED ^ u64::from(scheme.wire_id()), ..NodeOptions::default() };
        let faults = lossy_links(fault_seed());

        let legacy_config = SwarmConfig {
            scheme,
            object: object.clone(),
            code_length: 8,
            payload_size: 16,
            peers: 4,
            options,
            timeout: Duration::from_secs(60),
            session: 0xE0_0000 + u64::from(scheme.wire_id()),
            faults: Some(faults),
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        };
        let legacy = run_localhost_swarm(&legacy_config).expect("legacy swarm starts");

        let topo_config = TopologyConfig {
            scheme,
            object: object.clone(),
            code_length: 8,
            payload_size: 16,
            topology: Topology::complete(5),
            source: 0,
            options,
            timeout: Duration::from_secs(60),
            session: legacy_config.session,
            link_faults: TopologyFaults::default(),
            node_faults: Some(faults),
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        };
        let topo = run_topology(&topo_config).expect("topology run starts");

        // Same convergence behaviour: everyone completes, bit-exactly,
        // over the same generation structure, with real injected loss.
        assert!(legacy.converged && legacy.bit_exact, "{scheme:?}: legacy run failed");
        assert!(
            topo.swarm.converged && topo.swarm.bit_exact,
            "{scheme:?}: complete-topology run failed"
        );
        assert_eq!(topo.swarm.peers_complete, legacy.peers_complete);
        assert_eq!(topo.swarm.generations, legacy.generations);
        assert!(legacy.total_faults.dropped_in > 0, "{scheme:?}: legacy run was not lossy");
        assert!(topo.swarm.total_faults.dropped_in > 0, "{scheme:?}: topology run was not lossy");
        // A complete graph is flat: every peer one hop out, no link
        // plans installed, so no per-link tallies.
        assert_eq!(topo.distances, vec![0, 1, 1, 1, 1]);
        assert_eq!(topo.max_hops(), 1);
        assert!(topo.link_faults.is_empty());
    }
}
