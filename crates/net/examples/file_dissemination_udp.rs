//! Disseminates a real file from one source to N localhost peers over UDP
//! under each scheme (WC, LTNC, RLNC), and reports convergence, bytes on
//! the wire and header-level aborts — the first end-to-end scenario that
//! exercises encoder → wire → socket → recoder → decoder outside the
//! simulator.
//!
//! ```text
//! cargo run --release -p ltnc-net --example file_dissemination_udp
//! cargo run --release -p ltnc-net --example file_dissemination_udp -- \
//!     --file path/to/object --peers 12 --k 32 --m 256 --scheme ltnc
//! ```
//!
//! Without `--file`, a deterministic pseudo-random object of `--size`
//! bytes (default 24 KiB) is generated. Without `--scheme`, all three
//! schemes run on the same object so their wire costs are comparable.

use std::process::ExitCode;
use std::time::Duration;

use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmReport};
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    file: Option<String>,
    size: usize,
    peers: usize,
    k: usize,
    m: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        size: 24 * 1024,
        peers: 8,
        k: 16,
        m: 64,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 60,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--file" => args.file = Some(value("--file")?),
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--peers" => {
                args.peers = value("--peers")?.parse().map_err(|e| format!("--peers: {e}"))?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--timeout" => {
                args.timeout_secs =
                    value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--help" | "-h" => {
                println!(
                    "usage: file_dissemination_udp [--file PATH | --size BYTES] \
                     [--peers N] [--k K] [--m M] [--scheme wc|rlnc|ltnc] [--timeout SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_object(args: &Args) -> Result<Vec<u8>, String> {
    match &args.file {
        Some(path) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}")),
        None => {
            let mut rng = SmallRng::seed_from_u64(0xF11E);
            let mut object = vec![0u8; args.size];
            rng.fill(&mut object[..]);
            Ok(object)
        }
    }
}

fn report_row(report: &SwarmReport, peers: usize) -> String {
    let wire = &report.total_wire;
    format!(
        "{:<5} {:>9} {:>6} {:>11} {:>13} {:>13} {:>9} {:>9} {:>8}",
        report.scheme.label(),
        format!("{}/{}", report.peers_complete, peers),
        report.generations,
        format!("{:.2}s", report.elapsed.as_secs_f64()),
        wire.bytes_sent,
        wire.payload_bytes_sent,
        wire.transfers_offered,
        wire.transfers_aborted,
        if report.bit_exact { "yes" } else { "NO" },
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let object = match load_object(&args) {
        Ok(object) => object,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let generation_bytes = args.k * args.m;
    println!(
        "object: {} bytes, k = {}, m = {} ({} bytes/generation, {} generations), {} peers\n",
        object.len(),
        args.k,
        args.m,
        generation_bytes,
        (object.len().max(1)).div_ceil(generation_bytes),
        args.peers,
    );
    println!(
        "{:<5} {:>9} {:>6} {:>11} {:>13} {:>13} {:>9} {:>9} {:>8}",
        "sch", "complete", "gens", "time", "bytes-sent", "payload-B", "offers", "aborts", "exact"
    );

    let mut all_ok = true;
    for scheme in args.schemes.clone() {
        let config = SwarmConfig {
            scheme,
            object: object.clone(),
            code_length: args.k,
            payload_size: args.m,
            peers: args.peers,
            options: NodeOptions { seed: 7 + scheme.wire_id() as u64, ..NodeOptions::default() },
            timeout: Duration::from_secs(args.timeout_secs),
            session: 0xF00D_0000 + scheme.wire_id() as u64,
        };
        match run_localhost_swarm(&config) {
            Ok(report) => {
                println!("{}", report_row(&report, args.peers));
                if !(report.converged && report.bit_exact) {
                    all_ok = false;
                }
            }
            Err(e) => {
                eprintln!("{}: swarm failed: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    if all_ok {
        println!("\nall schemes converged with bit-exact reconstruction");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome schemes failed to converge or verify");
        ExitCode::FAILURE
    }
}
