//! Disseminates a real file from one source to N localhost peers over UDP
//! under each scheme (WC, LTNC, RLNC), and reports convergence, bytes on
//! the wire and header-level aborts — the first end-to-end scenario that
//! exercises encoder → wire → socket → recoder → decoder outside the
//! simulator.
//!
//! ```text
//! cargo run --release -p ltnc-net --example file_dissemination_udp
//! cargo run --release -p ltnc-net --example file_dissemination_udp -- \
//!     --file path/to/object --peers 12 --k 32 --m 256 --scheme ltnc
//! # the same swarm over 20%-lossy, reordering links:
//! cargo run --release -p ltnc-net --example file_dissemination_udp -- \
//!     --loss 0.2 --reorder 0.1 --fault-seed 61453
//! ```
//!
//! Without `--file`, a deterministic pseudo-random object of `--size`
//! bytes (default 24 KiB) is generated. Without `--scheme`, all three
//! schemes run on the same object so their wire costs are comparable.
//! `--loss` / `--reorder` / `--dup` route every node's datagrams through
//! a seeded `FaultySocket` (`--fault-seed`, default from the
//! `LTNC_FAULT_SEED` environment variable), and `--fixed-pacing`
//! disables the loss-adaptive in-flight budget for comparison.

use std::process::ExitCode;
use std::time::Duration;

use ltnc_net::faults::{DatagramFaultPlan, DatagramFaults};
use ltnc_net::swarm::{run_localhost_swarm, SwarmConfig, SwarmReport, SwarmRuntime};
use ltnc_net::NodeOptions;
use ltnc_scheme::SchemeKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    file: Option<String>,
    size: usize,
    peers: usize,
    k: usize,
    m: usize,
    schemes: Vec<SchemeKind>,
    timeout_secs: u64,
    loss: f64,
    reorder: f64,
    dup: f64,
    fault_seed: u64,
    adaptive: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: None,
        size: 24 * 1024,
        peers: 8,
        k: 16,
        m: 64,
        schemes: vec![SchemeKind::Wc, SchemeKind::Ltnc, SchemeKind::Rlnc],
        timeout_secs: 60,
        loss: 0.0,
        reorder: 0.0,
        dup: 0.0,
        fault_seed: std::env::var("LTNC_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xF00D),
        adaptive: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--file" => args.file = Some(value("--file")?),
            "--size" => {
                args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?;
            }
            "--peers" => {
                args.peers = value("--peers")?.parse().map_err(|e| format!("--peers: {e}"))?;
            }
            "--k" => args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--timeout" => {
                args.timeout_secs =
                    value("--timeout")?.parse().map_err(|e| format!("--timeout: {e}"))?;
            }
            "--scheme" => {
                let name = value("--scheme")?;
                let kind = SchemeKind::parse(&name)
                    .ok_or_else(|| format!("unknown scheme {name} (wc|rlnc|ltnc)"))?;
                args.schemes = vec![kind];
            }
            "--loss" => {
                args.loss = value("--loss")?.parse().map_err(|e| format!("--loss: {e}"))?;
            }
            "--reorder" => {
                args.reorder =
                    value("--reorder")?.parse().map_err(|e| format!("--reorder: {e}"))?;
            }
            "--dup" => args.dup = value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?,
            "--fault-seed" => {
                args.fault_seed =
                    value("--fault-seed")?.parse().map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--fixed-pacing" => args.adaptive = false,
            "--help" | "-h" => {
                println!(
                    "usage: file_dissemination_udp [--file PATH | --size BYTES] \
                     [--peers N] [--k K] [--m M] [--scheme wc|rlnc|ltnc] [--timeout SECS] \
                     [--loss RATE] [--reorder RATE] [--dup RATE] [--fault-seed N] \
                     [--fixed-pacing]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_object(args: &Args) -> Result<Vec<u8>, String> {
    match &args.file {
        Some(path) => std::fs::read(path).map_err(|e| format!("reading {path}: {e}")),
        None => {
            let mut rng = SmallRng::seed_from_u64(0xF11E);
            let mut object = vec![0u8; args.size];
            rng.fill(&mut object[..]);
            Ok(object)
        }
    }
}

fn report_row(report: &SwarmReport, peers: usize) -> String {
    let wire = &report.total_wire;
    format!(
        "{:<5} {:>9} {:>6} {:>11} {:>13} {:>13} {:>9} {:>9} {:>9} {:>9} {:>8}",
        report.scheme.label(),
        format!("{}/{}", report.peers_complete, peers),
        report.generations,
        format!("{:.2}s", report.elapsed.as_secs_f64()),
        wire.bytes_sent,
        wire.payload_bytes_sent,
        wire.transfers_offered,
        wire.transfers_aborted,
        wire.offer_timeouts,
        report.total_faults.dropped_in + report.total_faults.dropped_out,
        if report.bit_exact { "yes" } else { "NO" },
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let object = match load_object(&args) {
        Ok(object) => object,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let faults = (args.loss > 0.0 || args.reorder > 0.0 || args.dup > 0.0).then(|| {
        DatagramFaults::inbound(
            DatagramFaultPlan::clean(args.fault_seed)
                .drop_rate(args.loss)
                .duplicate_rate(args.dup)
                .reorder(args.reorder, 8),
        )
    });

    let generation_bytes = args.k * args.m;
    println!(
        "object: {} bytes, k = {}, m = {} ({} bytes/generation, {} generations), {} peers",
        object.len(),
        args.k,
        args.m,
        generation_bytes,
        (object.len().max(1)).div_ceil(generation_bytes),
        args.peers,
    );
    if faults.is_some() {
        println!(
            "faults: loss {:.0}% / reorder {:.0}% / dup {:.0}% (seed {:#x}), pacing: {}",
            args.loss * 100.0,
            args.reorder * 100.0,
            args.dup * 100.0,
            args.fault_seed,
            if args.adaptive { "adaptive" } else { "fixed" },
        );
    }
    println!();
    println!(
        "{:<5} {:>9} {:>6} {:>11} {:>13} {:>13} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "sch",
        "complete",
        "gens",
        "time",
        "bytes-sent",
        "payload-B",
        "offers",
        "aborts",
        "timeouts",
        "drops",
        "exact"
    );

    let mut all_ok = true;
    for scheme in args.schemes.clone() {
        let config = SwarmConfig {
            scheme,
            object: object.clone(),
            code_length: args.k,
            payload_size: args.m,
            peers: args.peers,
            options: NodeOptions {
                seed: 7 + scheme.wire_id() as u64,
                adaptive_pacing: args.adaptive,
                ..NodeOptions::default()
            },
            timeout: Duration::from_secs(args.timeout_secs),
            session: 0xF00D_0000 + scheme.wire_id() as u64,
            faults,
            trace_capacity: None,
            runtime: SwarmRuntime::Threaded,
            metrics_bind: None,
            flight_recorder: None,
        };
        match run_localhost_swarm(&config) {
            Ok(report) => {
                println!("{}", report_row(&report, args.peers));
                if !(report.converged && report.bit_exact) {
                    all_ok = false;
                }
            }
            Err(e) => {
                eprintln!("{}: swarm failed: {e}", scheme.label());
                all_ok = false;
            }
        }
    }

    if all_ok {
        println!("\nall schemes converged with bit-exact reconstruction");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nsome schemes failed to converge or verify");
        ExitCode::FAILURE
    }
}
